"""Simulation layer: calendar, prices, config, world driver, scenario."""

from repro.sim.calendar import (
    BERLIN_FORK_MONTH,
    FLASHBOTS_LAUNCH_MONTH,
    LONDON_FORK_MONTH,
    OBSERVATION_END_MONTH,
    OBSERVATION_START_MONTH,
    SEARCHER_EXODUS_MONTH,
    STUDY_MONTHS,
    TAICHI_SHUTDOWN_MONTH,
    StudyCalendar,
)
from repro.sim.config import ScenarioConfig
from repro.sim.prices import GasDemandModel, PriceUniverse, \
    TokenPriceProcess
from repro.sim.scenario import INITIAL_PRICES, build_paper_scenario
from repro.sim.world import SimulationResult, World

__all__ = [
    "BERLIN_FORK_MONTH", "FLASHBOTS_LAUNCH_MONTH", "GasDemandModel",
    "INITIAL_PRICES", "LONDON_FORK_MONTH", "OBSERVATION_END_MONTH",
    "OBSERVATION_START_MONTH", "PriceUniverse", "SEARCHER_EXODUS_MONTH",
    "STUDY_MONTHS", "ScenarioConfig", "SimulationResult",
    "StudyCalendar", "TAICHI_SHUTDOWN_MONTH", "TokenPriceProcess",
    "World", "build_paper_scenario",
]
