"""Simulation layer: calendar, prices, config, world driver, scenario."""

from repro.sim.calendar import (
    BERLIN_FORK_MONTH,
    FLASHBOTS_LAUNCH_MONTH,
    LONDON_FORK_MONTH,
    OBSERVATION_END_MONTH,
    OBSERVATION_START_MONTH,
    SEARCHER_EXODUS_MONTH,
    STUDY_MONTHS,
    TAICHI_SHUTDOWN_MONTH,
    StudyCalendar,
)
from repro.sim.config import ScenarioConfig
from repro.sim.prices import GasDemandModel, PriceUniverse, \
    TokenPriceProcess
from repro.sim.scenario import INITIAL_PRICES, build_paper_scenario, \
    restore_paper_scenario, scenario_frame
from repro.sim.shard import (
    EpochResult,
    EpochRunner,
    plan_epochs,
    resimulate_epochs,
    simulate_sharded,
    splice_epochs,
)
from repro.sim.world import EpochSeal, SimulationResult, World, \
    epoch_stream_seed

__all__ = [
    "BERLIN_FORK_MONTH", "EpochResult", "EpochRunner", "EpochSeal",
    "FLASHBOTS_LAUNCH_MONTH", "GasDemandModel",
    "INITIAL_PRICES", "LONDON_FORK_MONTH", "OBSERVATION_END_MONTH",
    "OBSERVATION_START_MONTH", "PriceUniverse", "SEARCHER_EXODUS_MONTH",
    "STUDY_MONTHS", "ScenarioConfig", "SimulationResult",
    "StudyCalendar", "TAICHI_SHUTDOWN_MONTH", "TokenPriceProcess",
    "World", "build_paper_scenario", "epoch_stream_seed",
    "plan_epochs", "resimulate_epochs", "restore_paper_scenario",
    "scenario_frame", "simulate_sharded", "splice_epochs",
]
