"""The simulation driver: a per-block market loop over the study window.

Each step reproduces one block's worth of ecosystem activity:

1. organic traffic (swaps, transfers, borrows, oracle updates) is gossiped
   into the public mempool, where the measurement observer samples it;
2. searchers scan the mempool and chain state and submit MEV through
   their current channel (public PGA / Flashbots relay / private pool);
3. a miner is drawn from the hashpower lottery and builds the block with
   MEV-geth semantics (bundles first, private sequences, then the public
   fee-ordered tail);
4. the chain, the Flashbots public API, and all queues are updated.

The result object packages exactly the artifacts the paper's measurement
pipeline consumes — an archive node, a pending-transaction trace, and the
Flashbots blocks dataset — plus ground truth for scoring.
"""

from __future__ import annotations

import hashlib
import math
import pickle
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.agents.fees import FeeModel
from repro.agents.miner import MinerProfile, MinerSet
from repro.agents.searcher import (
    CHANNEL_FLASHBOTS,
    CHANNEL_PRIVATE,
    CHANNEL_PUBLIC,
    GroundTruth,
    MarketView,
    Searcher,
    Submission,
)
from repro.agents.trader import BorrowerPopulation, OracleKeeper, \
    TraderPopulation
from repro.chain.fork import ForkSchedule
from repro.chain.gas import INITIAL_BASE_FEE, next_base_fee
from repro.chain.mempool import Mempool
from repro.chain.node import ArchiveNode, Blockchain
from repro.chain.p2p import GossipNetwork, MempoolObserver
from repro.chain.segments import SegmentStore, SpillingBlockchain
from repro.chain.state import WorldState
from repro.chain.transaction import Transaction, set_tx_counter, \
    tx_counter
from repro.chain.types import Address, ether
from repro.dex.registry import ExchangeRegistry
from repro.flashbots.api import FlashbotsBlocksApi
from repro.flashbots.bundle import MINER_PAYOUT, ROGUE, make_bundle
from repro.flashbots.mev_geth import build_block
from repro.flashbots.relay import Relay
from repro.lending.flashloan import FlashLoanProvider
from repro.lending.oracle import PriceOracle
from repro.lending.pool import LendingPool
from repro.markers import fast_path
from repro.privatepools.pool import PrivatePoolDirectory
from repro.sim.calendar import StudyCalendar
from repro.sim.config import ScenarioConfig
from repro.sim.overlap import BackgroundWriter, FlatGC
from repro.sim.prices import GasDemandModel, PriceUniverse

#: DeFi activity ramp: month ``m``'s traffic multiplier is
#: ``min(1.0, ACTIVITY_RAMP_BASE + ACTIVITY_RAMP_SLOPE * m)`` — volume
#: ramps through 2020–21 and then saturates.  Hoisted to module level
#: so scale-dependent consumers (the bench ``scale_flat`` gate baselines
#: at the first saturated epoch) stay in sync with the model.
ACTIVITY_RAMP_BASE = 0.35
ACTIVITY_RAMP_SLOPE = 0.08


def activity_saturation_month() -> int:
    """First month index whose activity multiplier reaches 1.0.

    Before this month, per-block traffic still grows with the ramp, so
    throughput comparisons across epochs only make sense from here on.
    """
    return math.ceil((1.0 - ACTIVITY_RAMP_BASE) / ACTIVITY_RAMP_SLOPE)


def epoch_stream_seed(seed: int, stream: str, epoch_index: int) -> str:
    """The seed string for one named RNG stream in one epoch.

    Every world RNG stream is reseeded from this at each epoch boundary,
    so a stream's draws within an epoch depend only on
    ``(scenario_seed, epoch_index)`` — never on earlier epochs.  That is
    the property that lets a fresh worker resume any epoch from its seal
    (string seeds hash through SHA-512 inside :mod:`random`, so the
    derivation is stable across processes and ``PYTHONHASHSEED``).
    """
    return f"repro-epoch:{seed}:{stream}:{epoch_index}"


@dataclass(frozen=True)
class SealPart:
    """One append-only chunk of a growing dataset inside a seal.

    The three datasets that grow with total progress — the observer's
    first-seen trace, the ground-truth log, and the Flashbots blocks
    table — are strictly append-only, so each epoch's additions can be
    pickled once at the boundary that completes them and *shared by
    reference* with every later seal.  A seal therefore costs O(epoch)
    pickling instead of O(progress), and a collection of E seals holds
    O(progress) chunk bytes instead of O(E × progress).
    """

    #: which dataset the chunk extends (``observer``/``truths``/``api``).
    kind: str
    #: chunk ordinal within its kind (restoration merges in order).
    index: int
    #: number of entries in this chunk.
    count: int
    payload: bytes
    digest: str


def seal_fingerprint(core_digest: str,
                     parts: Sequence[SealPart]) -> str:
    """Seal identity from its parts' digests.

    Computed over the core digest plus every chunk's ``(kind, index,
    count, digest)``, so it changes iff any byte of the carried state
    changes — while never re-hashing previously sealed chunk bytes.
    """
    hasher = hashlib.sha256()
    hasher.update(f"core:{core_digest}".encode())
    for part in parts:
        hasher.update(
            f"|{part.kind}:{part.index}:{part.count}:"
            f"{part.digest}".encode())
    return hasher.hexdigest()


@dataclass(frozen=True)
class EpochSeal:
    """Picklable snapshot of everything a world carries across an epoch
    boundary: mempool (incl. nonce-gap carryover), agent and searcher
    state, pool ledgers, miner profiles, observer trace, fee state.

    The ``payload`` is a single pickle of the carried-object graph, so
    shared references (keeper → oracle, gossip → observer, intents →
    pools) survive restoration intact.  The three datasets that grow
    with total progress travel outside it as append-only
    :class:`SealPart` chunks reused across seals (the observer is
    pickled inside the core graph with an empty trace to keep its
    gossip wiring, then refilled from chunks on restore).  RNG state is
    deliberately *not* sealed — each epoch's streams derive from
    :func:`epoch_stream_seed` alone.
    """

    #: epoch that begins at ``first_block`` (terminal seals use one past
    #: the last epoch index: they only carry final state for splicing).
    epoch_index: int
    first_block: int
    #: process-wide transaction-uid counter at the boundary, so resumed
    #: workers mint identical transaction hashes.
    tx_counter: int
    #: tip hash at the boundary (``None`` at genesis) — lets the splice
    #: validate linkage before stitching worker output onto the chain.
    parent_hash: Optional[str]
    payload: bytes
    fingerprint: str
    parts: Tuple[SealPart, ...] = ()

    def _parts_of(self, kind: str) -> List[SealPart]:
        chunks = [part for part in self.parts if part.kind == kind]
        chunks.sort(key=lambda part: part.index)
        return chunks

    def carried(self) -> dict:
        """Rebuild the carried-state graph (verifying the fingerprint).

        Verifies the core payload and every chunk against the seal
        fingerprint, unpickles the core graph, then merges the chunked
        datasets back in: the observer trace is refilled in first-seen
        order, the ground-truth log re-concatenated, and the Flashbots
        dataset rebuilt (with its transaction index) from its rows.
        """
        core_digest = hashlib.sha256(self.payload).hexdigest()
        expected = seal_fingerprint(core_digest, self.parts)
        if expected != self.fingerprint or any(
                hashlib.sha256(part.payload).hexdigest() != part.digest
                for part in self.parts):
            raise ValueError(
                f"epoch seal {self.epoch_index} payload corrupt: "
                f"fingerprint mismatch")
        core = pickle.loads(self.payload)
        observer = core["observer"]
        trace: Dict[str, int] = {}
        for part in self._parts_of("observer"):
            trace.update(pickle.loads(part.payload))
        observer.swap_trace(trace)
        truths: List[GroundTruth] = []
        for part in self._parts_of("truths"):
            truths.extend(pickle.loads(part.payload))
        core["ground_truths"] = truths
        records = []
        for part in self._parts_of("api"):
            records.extend(pickle.loads(part.payload))
        core["flashbots_api"] = FlashbotsBlocksApi.from_records(
            records, core.pop("api_gaps"))
        return core


@dataclass
class SimulationResult:
    """Everything the measurement pipeline (and the tests) need."""

    config: ScenarioConfig
    calendar: StudyCalendar
    forks: ForkSchedule
    blockchain: Blockchain
    node: ArchiveNode
    observer: MempoolObserver
    flashbots_api: FlashbotsBlocksApi
    relay: Relay
    miners: MinerSet
    private_pools: PrivatePoolDirectory
    oracle: PriceOracle
    registry: ExchangeRegistry
    lending_pools: List[LendingPool]
    ground_truths: List[GroundTruth]
    flashbots_launch_block: int

    def landed(self, truth: GroundTruth) -> bool:
        """True iff every transaction of the action was mined and
        succeeded (the action actually happened on chain)."""
        for tx_hash in truth.tx_hashes:
            located = self.blockchain.locate_transaction(tx_hash)
            if located is None:
                return False
            block, index = located
            if not block.receipts[index].status:
                return False
        return True

    def landed_truths(self) -> List[GroundTruth]:
        return [t for t in self.ground_truths if self.landed(t)]


class World:
    """Assembled simulation; :meth:`run` drives it block by block."""

    def __init__(self, config: ScenarioConfig, calendar: StudyCalendar,
                 forks: ForkSchedule, state: WorldState,
                 registry: ExchangeRegistry, oracle: PriceOracle,
                 universe: PriceUniverse,
                 lending_pools: List[LendingPool],
                 flash_provider: Optional[FlashLoanProvider],
                 miners: MinerSet, relay: Relay,
                 private_pools: PrivatePoolDirectory,
                 traders: TraderPopulation,
                 borrowers: BorrowerPopulation,
                 keeper: OracleKeeper,
                 searchers: Sequence[Searcher],
                 flashbots_launch_block: int,
                 rng: Optional[random.Random] = None,
                 self_mev_searchers: Optional[Dict[Address,
                                                   Searcher]] = None,
                 fast_paths: bool = True,
                 ) -> None:
        self.config = config
        self.calendar = calendar
        self.forks = forks
        self.state = state
        self.registry = registry
        self.oracle = oracle
        self.universe = universe
        self.lending_pools = lending_pools
        self.flash_provider = flash_provider
        self.miners = miners
        self.relay = relay
        self.private_pools = private_pools
        self.traders = traders
        self.borrowers = borrowers
        self.keeper = keeper
        self.searchers = list(searchers)
        #: miner address → the searcher persona it extracts MEV with when
        #: it builds a block itself (Section 6.3's self-extraction).
        self.self_mev_searchers = dict(self_mev_searchers or {})
        self.flashbots_launch_block = flashbots_launch_block
        self.rng = rng or random.Random(config.seed)
        #: when False, every optimized structure (incremental mempool
        #: index, per-scan memo dicts) is swapped for the original naive
        #: path — the reference the bench ``sim_identical`` gate replays.
        self.fast_paths = fast_paths
        #: sealed-epoch width; boundaries fall every ``epoch_blocks``
        #: blocks (default: month edges).  Crossing one reseeds every
        #: RNG stream from ``(seed, epoch_index)``.
        self.epoch_blocks = config.epoch_blocks or config.blocks_per_month
        self._epoch_entered: Optional[int] = None
        #: height the world believes it is at when its chain is empty —
        #: nonzero only for worlds restored from an :class:`EpochSeal`,
        #: whose chain starts mid-window.
        self._initial_height = 0

        self.blockchain = Blockchain()
        self.node = ArchiveNode(self.blockchain)
        self.mempool = Mempool(ttl_blocks=40, incremental=fast_paths)
        self.gossip = GossipNetwork(
            random.Random(config.seed + 1),
            observation_rate=config.observation_rate)
        obs_start = calendar.first_block_of(
            config.observation_start_month)
        obs_end = (calendar.month_bounds(config.observation_end_month)[1]
                   if config.observation_end_month else None)
        self.observer = MempoolObserver(start_block=obs_start,
                                        end_block=obs_end)
        self.gossip.attach_observer(self.observer)
        self.flashbots_api = FlashbotsBlocksApi()
        self.ground_truths: List[GroundTruth] = []
        self.base_fee = 0
        self._giant_payout_done = False
        self._last_payout: Dict[Address, int] = {}
        self._contracts = self._collect_contracts()
        # Hoisted out of step(): the gas-demand model holds only static
        # parameters plus the rng handle — constructing it draws nothing,
        # so one shared instance is draw-for-draw identical to a fresh
        # one per block.
        self._gas_model = GasDemandModel(
            self.rng, organic_gwei=config.organic_gas_gwei,
            pga_multiplier=config.pga_gas_multiplier)
        self._scale_by_month: Dict[int, float] = {}
        #: chunks already sealed for the growing datasets, reused by
        #: every later seal, plus the per-dataset entry counts they
        #: cover (the version counters of the incremental seal).
        self._seal_parts: List[SealPart] = []
        self._sealed_counts: Dict[str, int] = {
            "observer": 0, "truths": 0, "api": 0}
        #: overlapped spill I/O (attach_segment_store(overlap_io=True)):
        #: the writer owns a background thread; the world flushes it at
        #: every run() exit so callers always observe durable segments.
        self._overlap_writer: Optional[BackgroundWriter] = None
        self._spool_seals = False
        #: long-run GC regime hook (install_flat_gc); stepped at every
        #: epoch boundary.  Draw-neutral: GC timing never touches RNGs.
        self._flat_gc: Optional[FlatGC] = None

    # Setup helpers -----------------------------------------------------------

    def _collect_contracts(self) -> Dict[Address, object]:
        contracts: Dict[Address, object] = dict(self.registry.contracts)
        contracts[self.oracle.address] = self.oracle
        for pool in self.lending_pools:
            contracts[pool.address] = pool
        if self.flash_provider is not None:
            contracts[self.flash_provider.address] = self.flash_provider
        return contracts

    # Public traffic -------------------------------------------------------

    def submit_public(self, tx: Transaction, current_block: int) -> None:
        """Gossip a transaction: observer may see it, miners will."""
        self.gossip.broadcast(tx, current_block)
        self.mempool.add(tx, current_block)

    # Per-block activity --------------------------------------------------------

    def _poisson(self, rate: float) -> int:
        """Small-rate Poisson sample (inversion method)."""
        if rate <= 0:
            return 0
        count, threshold = 0, self.rng.random()
        cumulative = probability = math.exp(-rate)
        while threshold > cumulative and count < 100:
            count += 1
            probability *= rate / count
            cumulative += probability
        return count

    def _activity_scale(self, block_number: int) -> float:
        """Monthly activity multiplier (DeFi volume ramps over 2020–21)."""
        index = self.calendar.month_index(block_number)
        cached = self._scale_by_month.get(index)
        if cached is None:
            cached = min(1.0, ACTIVITY_RAMP_BASE
                         + ACTIVITY_RAMP_SLOPE * index)
            self._scale_by_month[index] = cached
        return cached

    def _generate_traffic(self, current: int, fees: FeeModel) -> None:
        scale = self._activity_scale(current + 1)
        for _ in range(self._poisson(self.config.swaps_per_block
                                     * scale)):
            tx = self.traders.make_swap(self.state, self.registry, fees)
            if tx is not None:
                self.submit_public(tx, current)
        for _ in range(self._poisson(self.config.transfers_per_block
                                     * scale)):
            self.submit_public(self.traders.make_transfer(self.state,
                                                          fees), current)
        for _ in range(self._poisson(self.config.stable_swaps_per_block
                                     * scale)):
            tx = self.traders.make_stable_swap(self.state,
                                               self.registry, fees)
            if tx is not None:
                self.submit_public(tx, current)
        if self.rng.random() < self.config.amateur_arb_rate * scale:
            tx = self.traders.make_naive_arbitrage(self.state,
                                                   self.registry, fees)
            if tx is not None:
                self.submit_public(tx, current)
        open_loans = sum(pool.open_loan_count()
                         for pool in self.lending_pools)
        if (open_loans < self.config.max_open_loans
                and self.rng.random() < self.config.borrow_rate * scale
                and self.lending_pools):
            pool = self.rng.choice(self.lending_pools)
            tx = self.borrowers.make_borrow(self.state, pool,
                                            self.oracle, fees)
            if tx is not None:
                self.submit_public(tx, current)
        for tx in self.keeper.make_updates(self.state, fees,
                                           current + 1):
            self.submit_public(tx, current)

    def _active_searchers(self, target_block: int) -> List[Searcher]:
        """Searchers whose lifecycle covers ``target_block`` (computed
        once per step; activity depends only on the block number)."""
        return [s for s in self.searchers if s.is_active(target_block)]

    def _pga_intensity(self, target_block: int,
                       active: Optional[List[Searcher]] = None) -> float:
        """Share of active MEV searchers bidding in the *public* mempool —
        the driver of Figure 6's gas-price regimes."""
        if active is None:
            active = self._active_searchers(target_block)
        bidding = [s for s in active if s.strategy != "other"]
        if not bidding:
            return 0.0
        public = sum(1 for s in bidding
                     if s.policy.channel_at(target_block)
                     == CHANNEL_PUBLIC)
        return public / len(bidding)

    def _competition(self, target_block: int,
                     active: Optional[List[Searcher]] = None,
                     ) -> Dict[str, int]:
        if active is None:
            active = self._active_searchers(target_block)
        counts: Dict[str, int] = {}
        for searcher in active:
            counts[searcher.strategy] = \
                counts.get(searcher.strategy, 0) + 1
        return counts

    @fast_path(toggle="fast_paths")
    def _run_searchers(self, current: int, fees: FeeModel,
                       active: Optional[List[Searcher]] = None,
                       competition: Optional[Dict[str, int]] = None,
                       ) -> None:
        target = current + 1
        if active is None:
            active = self._active_searchers(target)
        if competition is None:
            competition = self._competition(target, active)
        liquidatable = [(pool, pool.liquidatable_loans())
                        for pool in self.lending_pools]
        view = MarketView(
            state=self.state, registry=self.registry, oracle=self.oracle,
            pending=self.mempool.transactions, block_number=current,
            fees=fees, rng=self.rng, lending_pools=self.lending_pools,
            flash_provider=self.flash_provider,
            competition=competition,
            liquidatable_by_pool=liquidatable,
            bundle_rush=self.rng.random() < 0.25,
            memo={} if self.fast_paths else None)
        flashbots_live = target >= self.flashbots_launch_block
        for searcher in active:
            rate = searcher.attempt_rate
            # Once Flashbots exists, sandwiching through the open mempool
            # is a losing race against bundles (the paper finds only
            # 5.6 % of window sandwiches were public): the remaining
            # public sandwichers try far less often.
            if (flashbots_live and searcher.strategy == "sandwich"
                    and searcher.policy.channel_at(target)
                    == CHANNEL_PUBLIC):
                rate *= 0.35
            if rate < 1.0 and self.rng.random() > rate:
                continue
            for submission in searcher.scan(view):
                self._route_submission(submission, current,
                                       flashbots_live)

    def _route_submission(self, submission: Submission, current: int,
                          flashbots_live: bool) -> None:
        if submission.channel == CHANNEL_FLASHBOTS:
            if not flashbots_live or submission.bundle is None:
                return
            if self.relay.submit(submission.bundle, current):
                self.ground_truths.append(submission.ground_truth)
            return
        if submission.channel == CHANNEL_PRIVATE:
            pool = self.private_pools.get(submission.private_pool or "")
            if pool is None:
                return
            if pool.submit_sequence(submission.private_sequence,
                                    current):
                self.ground_truths.append(submission.ground_truth)
            return
        accepted_any = False
        for tx in submission.txs:
            if self.mempool.add(tx, current):
                self.gossip.broadcast(tx, current)
                accepted_any = True
        if accepted_any:
            self.ground_truths.append(submission.ground_truth)

    # Miner-side extras ------------------------------------------------------

    def _payout_bundle(self, miner: MinerProfile, target: int,
                       fees: FeeModel):
        schedule = miner.payout_schedule
        if schedule is None:
            return None
        if not miner.in_flashbots(target) or \
                target < self.flashbots_launch_block:
            return None
        # Payouts fire on the first block the pool mines once the payout
        # interval has elapsed (pools batch payouts, then wait for their
        # own next block to include them fee-free).
        last = self._last_payout.get(miner.address,
                                     self.flashbots_launch_block)
        if target - last < schedule.interval_blocks:
            return None
        self._last_payout[miner.address] = target
        recipients = schedule.recipients
        # One F2Pool payout in the study is famously 700 transactions
        # (block 12,481,590 in the paper): the first payout due after the
        # giant-payout month fires at full size.
        giant_block = (self.flashbots_launch_block
                       + 4 * self.config.blocks_per_month)
        if (miner.name == "f2pool" and not self._giant_payout_done
                and target >= giant_block):
            recipients = self.config.giant_payout_recipients
            self._giant_payout_done = True
        needed = recipients * (schedule.amount_wei + ether(0.01))
        if self.state.eth_balance(miner.address) < needed:
            self.state.credit_eth(miner.address, needed * 2)
        txs = []
        nonce = self.state.nonce(miner.address)
        for i in range(recipients):
            recipient = f"0x{'11' * 10}{i:020x}"
            txs.append(Transaction(
                sender=miner.address, nonce=nonce + i, to=recipient,
                value=schedule.amount_wei, gas_limit=21_000,
                meta={"role": "payout"}, **fees.bundle_fields()))
        return make_bundle(miner.address, txs, target,
                           bundle_type=MINER_PAYOUT)

    def _rogue_bundle(self, miner: MinerProfile, target: int,
                      fees: FeeModel):
        if not miner.in_flashbots(target) or \
                target < self.flashbots_launch_block:
            return None
        if self.rng.random() >= self.config.rogue_bundle_rate:
            return None
        if self.state.eth_balance(miner.address) < ether(5):
            self.state.credit_eth(miner.address, ether(100))
        tx = Transaction(
            sender=miner.address, nonce=self.state.nonce(miner.address),
            to=miner.mev_account, value=ether(self.rng.uniform(0.1, 2)),
            gas_limit=21_000, meta={"role": "rogue"},
            **fees.bundle_fields())
        return make_bundle(miner.address, [tx], target,
                           bundle_type=ROGUE)

    @fast_path(toggle="fast_paths")
    def _self_mev_sequences(self, miner: MinerProfile, current: int,
                            fees: FeeModel,
                            competition: Optional[Dict[str, int]] = None,
                            ) -> List[tuple]:
        """A self-extracting miner's own sandwiches for the block it is
        building right now: it scans the mempool exactly when it wins the
        lottery and inserts its attack privately (Section 6.3)."""
        searcher = self.self_mev_searchers.get(miner.address)
        if searcher is None or not miner.self_mev:
            return []
        if competition is None:
            competition = self._competition(current + 1)
        # Fresh memo: payout/rogue bundles may have credited ETH between
        # the public searcher scan and this one, so cached quotes from
        # _run_searchers are not guaranteed valid here.
        view = MarketView(
            state=self.state, registry=self.registry, oracle=self.oracle,
            pending=self.mempool.transactions, block_number=current,
            fees=fees, rng=self.rng, lending_pools=self.lending_pools,
            flash_provider=self.flash_provider,
            competition=competition,
            memo={} if self.fast_paths else None)
        sequences: List[tuple] = []
        for submission in searcher.scan(view):
            if submission.channel != CHANNEL_PRIVATE or \
                    not submission.private_sequence:
                continue
            sequences.append(submission.private_sequence)
            self.ground_truths.append(submission.ground_truth)
        return sequences

    @fast_path(toggle="fast_paths")
    def _prune_private_backlog(self) -> int:
        """Drop private sequences that can never be included again.

        Inline pair: with ``fast_paths=False`` nothing is pruned and
        every dead sequence is rescanned (and re-rejected by the exact
        nonce check) on each member-miner block — the naive behaviour
        the fast path must match block for block.  Pruning draws no
        randomness and removes only sequences whose every future
        inclusion attempt fails validation before touching state, so
        the built blocks are identical either way (see
        :meth:`repro.privatepools.pool.PrivatePool.prune_dead`).
        """
        if not self.fast_paths:
            return 0
        return self.private_pools.prune_dead(self.state.nonce)

    # Epoch boundaries & seals ------------------------------------------------

    def _height(self) -> int:
        """Current chain height; mid-window start for restored worlds."""
        height = self.blockchain.height
        return self._initial_height if height is None else height

    def _enter_epoch(self, epoch_index: int) -> None:
        """Reseed every RNG stream for ``epoch_index``.

        Streams are reseeded *in place* so every alias stays wired —
        ``_gas_model`` shares ``self.rng``, the gossip network owns the
        observation stream, and the populations each own theirs.
        """
        if self._flat_gc is not None:
            self._flat_gc.epoch_boundary()
        seed = self.config.seed
        self.rng.seed(epoch_stream_seed(seed, "world", epoch_index))
        self.gossip.rng.seed(
            epoch_stream_seed(seed, "gossip", epoch_index))
        self.traders.rng.seed(
            epoch_stream_seed(seed, "traders", epoch_index))
        self.borrowers.rng.seed(
            epoch_stream_seed(seed, "borrowers", epoch_index))
        self.keeper.rng.seed(
            epoch_stream_seed(seed, "keeper", epoch_index))
        self.universe.reseed_epoch(seed, epoch_index)
        self._epoch_entered = epoch_index

    def seal(self) -> EpochSeal:
        """Snapshot the carried state at the current epoch boundary.

        Only valid when the height *is* a boundary (a multiple of
        ``epoch_blocks``, or the end of the study window).  The returned
        seal plus ``(seed, epoch_index)`` is everything a fresh worker
        needs to reproduce the next epoch draw-for-draw — see
        :func:`repro.sim.scenario.restore_paper_scenario`.
        """
        height = self._height()
        if (height % self.epoch_blocks != 0
                and height != self.calendar.total_blocks):
            raise ValueError(
                f"cannot seal mid-epoch: height {height} is not a "
                f"boundary (epoch_blocks={self.epoch_blocks})")
        carried = {
            "state": self.state, "registry": self.registry,
            "oracle": self.oracle, "universe": self.universe,
            "lending_pools": self.lending_pools,
            "flash_provider": self.flash_provider,
            "miners": self.miners, "relay": self.relay,
            "private_pools": self.private_pools,
            "traders": self.traders, "borrowers": self.borrowers,
            "keeper": self.keeper, "searchers": self.searchers,
            "self_mev_searchers": self.self_mev_searchers,
            "mempool": self.mempool, "gossip": self.gossip,
            "observer": self.observer,
            "api_gaps": tuple(self.flashbots_api.coverage_gaps()),
            "base_fee": self.base_fee,
            "giant_payout_done": self._giant_payout_done,
            "last_payout": self._last_payout,
        }
        # The growing datasets travel as shared append-only chunks, not
        # in the core pickle: the observer stays inside the graph (its
        # gossip wiring must survive) but is pickled with an empty
        # trace; the Flashbots dataset and ground-truth log are only
        # referenced by the world, so they are simply left out.
        trace = self.observer.swap_trace({})
        try:
            payload = pickle.dumps(carried,
                                   protocol=pickle.HIGHEST_PROTOCOL)
        finally:
            self.observer.swap_trace(trace)
        self._extend_seal_parts()
        parts = tuple(self._seal_parts)
        tip = self.blockchain.height
        parent_hash = None
        if tip is not None:
            tip_block = self.blockchain.block_by_number(tip)
            if tip_block is not None:
                parent_hash = tip_block.hash
        return EpochSeal(
            epoch_index=-(-height // self.epoch_blocks),
            first_block=height + 1, tx_counter=tx_counter(),
            parent_hash=parent_hash, payload=payload,
            fingerprint=seal_fingerprint(
                hashlib.sha256(payload).hexdigest(), parts),
            parts=parts)

    def _extend_seal_parts(self) -> None:
        """Chunk the entries added to each growing dataset since the
        last boundary.  Each dataset's entry count is its version
        counter (all three are append-only), so an unchanged dataset
        contributes no new chunk and its existing pickles are reused."""
        sources = (
            ("observer", self.observer.trace_length(),
             self.observer.trace_slice),
            ("truths", len(self.ground_truths),
             lambda start: self.ground_truths[start:]),
            ("api", self.flashbots_api.record_count(),
             self.flashbots_api.records_slice),
        )
        for kind, length, slice_from in sources:
            start = self._sealed_counts[kind]
            if length <= start:
                continue
            entries = slice_from(start)
            blob = pickle.dumps(entries,
                                protocol=pickle.HIGHEST_PROTOCOL)
            index = sum(1 for part in self._seal_parts
                        if part.kind == kind)
            self._seal_parts.append(SealPart(
                kind=kind, index=index, count=len(entries),
                payload=blob,
                digest=hashlib.sha256(blob).hexdigest()))
            self._sealed_counts[kind] = length

    def restore_carry(self, seal: EpochSeal, carried: dict) -> None:
        """Adopt the non-constructor carried state from ``carried``.

        The constructor-visible components (state, registry, pools,
        populations, …) must already have been passed to ``__init__``
        from the *same* unpickled graph — see
        :func:`repro.sim.scenario.restore_paper_scenario` — so that
        ``_collect_contracts`` and the gas model wire against the
        restored objects.  This method overwrites the pieces the
        constructor built fresh and positions the world at the seal.
        """
        if self.blockchain.height is not None:
            raise ValueError("restore_carry requires an empty chain")
        self.mempool = carried["mempool"]
        self.gossip = carried["gossip"]
        self.observer = carried["observer"]
        self.flashbots_api = carried["flashbots_api"]
        self.ground_truths = carried["ground_truths"]
        self.base_fee = carried["base_fee"]
        self._giant_payout_done = carried["giant_payout_done"]
        self._last_payout = carried["last_payout"]
        self._initial_height = seal.first_block - 1
        self._epoch_entered = None
        # Adopt the incoming seal's chunks so seals taken later in this
        # world reuse them byte for byte — a worker's seal of epoch N+1
        # is then identical to the serial run's, prefix chunks included.
        self._seal_parts = list(seal.parts)
        self._sealed_counts = {
            kind: sum(part.count for part in seal.parts
                      if part.kind == kind)
            for kind in ("observer", "truths", "api")}
        set_tx_counter(seal.tx_counter)

    def attach_segment_store(self, store: SegmentStore,
                             max_resident_epochs: int = 2,
                             overlap_io: bool = False,
                             spool_seals: bool = False) -> None:
        """Swap the in-memory chain for a spillable, segment-backed one.

        Completed epochs spill to ``store`` as fingerprinted segment
        files and all but the newest ``max_resident_epochs`` are evicted
        from memory, so peak residency is O(epoch) instead of O(world).
        Must be called before the first block is mined.

        With ``overlap_io`` the spill pickles and fsyncs run on a
        background thread (:class:`~repro.sim.overlap.BackgroundWriter`)
        so ``step`` never blocks on disk; the bounded queue's
        backpressure keeps residency at O(epoch), and every ``run()``
        exit flushes the queue so callers always observe durable files.
        The files written are byte-identical to the synchronous path.
        With ``spool_seals``, every seal taken by
        ``run(collect_seals=...)`` is also written durably to the store
        as a ``seal-NNNNNN.pkl`` sidecar (through the same writer when
        overlapped).
        """
        if self.blockchain.height is not None:
            raise ValueError(
                "attach_segment_store requires an empty chain")
        if overlap_io:
            self._overlap_writer = BackgroundWriter()
            store.attach_writer(self._overlap_writer)
        self._spool_seals = spool_seals
        self.blockchain = SpillingBlockchain(
            store, epoch_blocks=self.epoch_blocks,
            first_block=self._initial_height + 1,
            max_resident_epochs=max_resident_epochs)
        self.node = ArchiveNode(self.blockchain)

    def install_flat_gc(self, flat_gc: Optional[FlatGC] = None) -> FlatGC:
        """Adopt the long-run GC regime (see :mod:`repro.sim.overlap`).

        Collects and freezes the survivor heap now and again at every
        epoch boundary, with a raised gen-0 threshold in between, so
        full collections stop rescanning the ever-growing frozen heap.
        GC timing draws nothing — block outputs are unchanged.  The
        caller owns ``uninstall()`` (or uses the returned object as a
        context manager around ``run``).
        """
        self._flat_gc = flat_gc or FlatGC()
        if not self._flat_gc.installed:
            self._flat_gc.install()
        return self._flat_gc

    # The main loop ---------------------------------------------------------

    def step(self) -> None:
        current = self._height()
        number = current + 1
        epoch = (number - 1) // self.epoch_blocks
        if epoch != self._epoch_entered:
            self._enter_epoch(epoch)
        london = self.forks.is_london(number)
        if london and self.base_fee == 0:
            self.base_fee = INITIAL_BASE_FEE
        active = self._active_searchers(number)
        competition = self._competition(number, active)
        fees = FeeModel(base_fee=self.base_fee, london_active=london,
                        prevailing=self._gas_model.level(
                            self._pga_intensity(number, active)))

        self._generate_traffic(current, fees)
        self._run_searchers(current, fees, active, competition)

        miner = self.miners.pick(self.rng)
        bundles = []
        flashbots_member = (miner.in_flashbots(number)
                            and number >= self.flashbots_launch_block)
        if flashbots_member:
            bundles.extend(self.relay.bundles_for_block(number,
                                                        miner.address))
            payout = self._payout_bundle(miner, number, fees)
            if payout is not None:
                bundles.append(payout)
            rogue = self._rogue_bundle(miner, number, fees)
            if rogue is not None:
                bundles.append(rogue)
        private_sequences = list(self.private_pools.pending_for_miner(
            miner.address, number))
        private_sequences += self._self_mev_sequences(miner, current,
                                                      fees, competition)

        result = build_block(
            self.state, self.mempool, number=number,
            timestamp=13 * number, coinbase=miner.address,
            base_fee=self.base_fee, contracts=self._contracts,
            bundles=bundles, private_sequences=private_sequences,
            burn_base_fee=london)
        self.blockchain.append(result.block)

        if result.included_bundles:
            self.flashbots_api.record_block(number, miner.address,
                                            result.included_bundles)

        included_hashes: Set[str] = set(result.block.tx_hashes)
        self.mempool.remove(included_hashes)
        self.mempool.evict_stale(number)
        self.private_pools.mark_included(included_hashes)
        self.private_pools.expire_stale(number)
        self._prune_private_backlog()
        self.relay.mark_included(number, {
            item.bundle.bundle_id for item in result.included_bundles})
        self.relay.expire_before(number + 1)

        if london:
            self.base_fee = next_base_fee(self.base_fee,
                                          result.block.gas_used,
                                          result.block.gas_limit)

    def run(self, blocks: Optional[int] = None,
            collect_seals: Optional[Dict[int, EpochSeal]] = None,
            ) -> SimulationResult:
        """Advance ``blocks`` steps (default: the whole study window).

        With ``collect_seals`` (a dict to fill), an :class:`EpochSeal`
        is taken at every epoch boundary crossed — including the start
        and, when the run ends on a boundary, the terminal state —
        keyed by the epoch the seal begins.
        """
        total = blocks if blocks is not None \
            else self.calendar.total_blocks
        start = self._height()
        end = min(start + total, self.calendar.total_blocks)
        while self._height() < end:
            if (collect_seals is not None
                    and self._height() % self.epoch_blocks == 0):
                boundary = self.seal()
                collect_seals[boundary.epoch_index] = boundary
                self._spool_seal(boundary)
            self.step()
        if collect_seals is not None:
            final = self._height()
            if (final % self.epoch_blocks == 0
                    or final == self.calendar.total_blocks):
                boundary = self.seal()
                collect_seals[boundary.epoch_index] = boundary
                self._spool_seal(boundary)
        self.flush_io()
        return self.result()

    def _spool_seal(self, seal: EpochSeal) -> None:
        """Durably spool one seal to the segment store (if enabled)."""
        if not self._spool_seals:
            return
        chain = self.blockchain
        if isinstance(chain, SpillingBlockchain):
            chain.store.write_sidecar(
                f"seal-{seal.epoch_index:06d}.pkl", seal)

    def flush_io(self) -> None:
        """Drain any overlapped spill writes to durable storage."""
        chain = self.blockchain
        if isinstance(chain, SpillingBlockchain):
            chain.flush()

    def result(self) -> SimulationResult:
        return SimulationResult(
            config=self.config, calendar=self.calendar, forks=self.forks,
            blockchain=self.blockchain, node=self.node,
            observer=self.observer, flashbots_api=self.flashbots_api,
            relay=self.relay, miners=self.miners,
            private_pools=self.private_pools, oracle=self.oracle,
            registry=self.registry, lending_pools=self.lending_pools,
            ground_truths=self.ground_truths,
            flashbots_launch_block=self.flashbots_launch_block)
