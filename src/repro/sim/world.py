"""The simulation driver: a per-block market loop over the study window.

Each step reproduces one block's worth of ecosystem activity:

1. organic traffic (swaps, transfers, borrows, oracle updates) is gossiped
   into the public mempool, where the measurement observer samples it;
2. searchers scan the mempool and chain state and submit MEV through
   their current channel (public PGA / Flashbots relay / private pool);
3. a miner is drawn from the hashpower lottery and builds the block with
   MEV-geth semantics (bundles first, private sequences, then the public
   fee-ordered tail);
4. the chain, the Flashbots public API, and all queues are updated.

The result object packages exactly the artifacts the paper's measurement
pipeline consumes — an archive node, a pending-transaction trace, and the
Flashbots blocks dataset — plus ground truth for scoring.
"""

from __future__ import annotations

import hashlib
import math
import pickle
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set

from repro.agents.fees import FeeModel
from repro.agents.miner import MinerProfile, MinerSet
from repro.agents.searcher import (
    CHANNEL_FLASHBOTS,
    CHANNEL_PRIVATE,
    CHANNEL_PUBLIC,
    GroundTruth,
    MarketView,
    Searcher,
    Submission,
)
from repro.agents.trader import BorrowerPopulation, OracleKeeper, \
    TraderPopulation
from repro.chain.fork import ForkSchedule
from repro.chain.gas import INITIAL_BASE_FEE, next_base_fee
from repro.chain.mempool import Mempool
from repro.chain.node import ArchiveNode, Blockchain
from repro.chain.p2p import GossipNetwork, MempoolObserver
from repro.chain.segments import SegmentStore, SpillingBlockchain
from repro.chain.state import WorldState
from repro.chain.transaction import Transaction, set_tx_counter, \
    tx_counter
from repro.chain.types import Address, ether
from repro.dex.registry import ExchangeRegistry
from repro.flashbots.api import FlashbotsBlocksApi
from repro.flashbots.bundle import MINER_PAYOUT, ROGUE, make_bundle
from repro.flashbots.mev_geth import build_block
from repro.flashbots.relay import Relay
from repro.lending.flashloan import FlashLoanProvider
from repro.lending.oracle import PriceOracle
from repro.lending.pool import LendingPool
from repro.markers import fast_path
from repro.privatepools.pool import PrivatePoolDirectory
from repro.sim.calendar import StudyCalendar
from repro.sim.config import ScenarioConfig
from repro.sim.prices import GasDemandModel, PriceUniverse


def epoch_stream_seed(seed: int, stream: str, epoch_index: int) -> str:
    """The seed string for one named RNG stream in one epoch.

    Every world RNG stream is reseeded from this at each epoch boundary,
    so a stream's draws within an epoch depend only on
    ``(scenario_seed, epoch_index)`` — never on earlier epochs.  That is
    the property that lets a fresh worker resume any epoch from its seal
    (string seeds hash through SHA-512 inside :mod:`random`, so the
    derivation is stable across processes and ``PYTHONHASHSEED``).
    """
    return f"repro-epoch:{seed}:{stream}:{epoch_index}"


@dataclass(frozen=True)
class EpochSeal:
    """Picklable snapshot of everything a world carries across an epoch
    boundary: mempool (incl. nonce-gap carryover), agent and searcher
    state, pool ledgers, miner profiles, observer trace, fee state.

    The payload is a single pickle of the carried-object graph, so
    shared references (keeper → oracle, gossip → observer, intents →
    pools) survive restoration intact.  RNG state is deliberately *not*
    sealed — each epoch's streams derive from
    :func:`epoch_stream_seed` alone.
    """

    #: epoch that begins at ``first_block`` (terminal seals use one past
    #: the last epoch index: they only carry final state for splicing).
    epoch_index: int
    first_block: int
    #: process-wide transaction-uid counter at the boundary, so resumed
    #: workers mint identical transaction hashes.
    tx_counter: int
    #: tip hash at the boundary (``None`` at genesis) — lets the splice
    #: validate linkage before stitching worker output onto the chain.
    parent_hash: Optional[str]
    payload: bytes
    fingerprint: str

    def carried(self) -> dict:
        """Unpickle the carried-state graph (verifying the fingerprint)."""
        digest = hashlib.sha256(self.payload).hexdigest()
        if digest != self.fingerprint:
            raise ValueError(
                f"epoch seal {self.epoch_index} payload corrupt: "
                f"fingerprint mismatch")
        return pickle.loads(self.payload)


@dataclass
class SimulationResult:
    """Everything the measurement pipeline (and the tests) need."""

    config: ScenarioConfig
    calendar: StudyCalendar
    forks: ForkSchedule
    blockchain: Blockchain
    node: ArchiveNode
    observer: MempoolObserver
    flashbots_api: FlashbotsBlocksApi
    relay: Relay
    miners: MinerSet
    private_pools: PrivatePoolDirectory
    oracle: PriceOracle
    registry: ExchangeRegistry
    lending_pools: List[LendingPool]
    ground_truths: List[GroundTruth]
    flashbots_launch_block: int

    def landed(self, truth: GroundTruth) -> bool:
        """True iff every transaction of the action was mined and
        succeeded (the action actually happened on chain)."""
        for tx_hash in truth.tx_hashes:
            located = self.blockchain.locate_transaction(tx_hash)
            if located is None:
                return False
            block, index = located
            if not block.receipts[index].status:
                return False
        return True

    def landed_truths(self) -> List[GroundTruth]:
        return [t for t in self.ground_truths if self.landed(t)]


class World:
    """Assembled simulation; :meth:`run` drives it block by block."""

    def __init__(self, config: ScenarioConfig, calendar: StudyCalendar,
                 forks: ForkSchedule, state: WorldState,
                 registry: ExchangeRegistry, oracle: PriceOracle,
                 universe: PriceUniverse,
                 lending_pools: List[LendingPool],
                 flash_provider: Optional[FlashLoanProvider],
                 miners: MinerSet, relay: Relay,
                 private_pools: PrivatePoolDirectory,
                 traders: TraderPopulation,
                 borrowers: BorrowerPopulation,
                 keeper: OracleKeeper,
                 searchers: Sequence[Searcher],
                 flashbots_launch_block: int,
                 rng: Optional[random.Random] = None,
                 self_mev_searchers: Optional[Dict[Address,
                                                   Searcher]] = None,
                 fast_paths: bool = True,
                 ) -> None:
        self.config = config
        self.calendar = calendar
        self.forks = forks
        self.state = state
        self.registry = registry
        self.oracle = oracle
        self.universe = universe
        self.lending_pools = lending_pools
        self.flash_provider = flash_provider
        self.miners = miners
        self.relay = relay
        self.private_pools = private_pools
        self.traders = traders
        self.borrowers = borrowers
        self.keeper = keeper
        self.searchers = list(searchers)
        #: miner address → the searcher persona it extracts MEV with when
        #: it builds a block itself (Section 6.3's self-extraction).
        self.self_mev_searchers = dict(self_mev_searchers or {})
        self.flashbots_launch_block = flashbots_launch_block
        self.rng = rng or random.Random(config.seed)
        #: when False, every optimized structure (incremental mempool
        #: index, per-scan memo dicts) is swapped for the original naive
        #: path — the reference the bench ``sim_identical`` gate replays.
        self.fast_paths = fast_paths
        #: sealed-epoch width; boundaries fall every ``epoch_blocks``
        #: blocks (default: month edges).  Crossing one reseeds every
        #: RNG stream from ``(seed, epoch_index)``.
        self.epoch_blocks = config.epoch_blocks or config.blocks_per_month
        self._epoch_entered: Optional[int] = None
        #: height the world believes it is at when its chain is empty —
        #: nonzero only for worlds restored from an :class:`EpochSeal`,
        #: whose chain starts mid-window.
        self._initial_height = 0

        self.blockchain = Blockchain()
        self.node = ArchiveNode(self.blockchain)
        self.mempool = Mempool(ttl_blocks=40, incremental=fast_paths)
        self.gossip = GossipNetwork(
            random.Random(config.seed + 1),
            observation_rate=config.observation_rate)
        obs_start = calendar.first_block_of(
            config.observation_start_month)
        obs_end = (calendar.month_bounds(config.observation_end_month)[1]
                   if config.observation_end_month else None)
        self.observer = MempoolObserver(start_block=obs_start,
                                        end_block=obs_end)
        self.gossip.attach_observer(self.observer)
        self.flashbots_api = FlashbotsBlocksApi()
        self.ground_truths: List[GroundTruth] = []
        self.base_fee = 0
        self._giant_payout_done = False
        self._last_payout: Dict[Address, int] = {}
        self._contracts = self._collect_contracts()
        # Hoisted out of step(): the gas-demand model holds only static
        # parameters plus the rng handle — constructing it draws nothing,
        # so one shared instance is draw-for-draw identical to a fresh
        # one per block.
        self._gas_model = GasDemandModel(
            self.rng, organic_gwei=config.organic_gas_gwei,
            pga_multiplier=config.pga_gas_multiplier)
        self._scale_by_month: Dict[int, float] = {}

    # Setup helpers -----------------------------------------------------------

    def _collect_contracts(self) -> Dict[Address, object]:
        contracts: Dict[Address, object] = dict(self.registry.contracts)
        contracts[self.oracle.address] = self.oracle
        for pool in self.lending_pools:
            contracts[pool.address] = pool
        if self.flash_provider is not None:
            contracts[self.flash_provider.address] = self.flash_provider
        return contracts

    # Public traffic -------------------------------------------------------

    def submit_public(self, tx: Transaction, current_block: int) -> None:
        """Gossip a transaction: observer may see it, miners will."""
        self.gossip.broadcast(tx, current_block)
        self.mempool.add(tx, current_block)

    # Per-block activity --------------------------------------------------------

    def _poisson(self, rate: float) -> int:
        """Small-rate Poisson sample (inversion method)."""
        if rate <= 0:
            return 0
        count, threshold = 0, self.rng.random()
        cumulative = probability = math.exp(-rate)
        while threshold > cumulative and count < 100:
            count += 1
            probability *= rate / count
            cumulative += probability
        return count

    def _activity_scale(self, block_number: int) -> float:
        """Monthly activity multiplier (DeFi volume ramps over 2020–21)."""
        index = self.calendar.month_index(block_number)
        cached = self._scale_by_month.get(index)
        if cached is None:
            cached = min(1.0, 0.35 + 0.08 * index)
            self._scale_by_month[index] = cached
        return cached

    def _generate_traffic(self, current: int, fees: FeeModel) -> None:
        scale = self._activity_scale(current + 1)
        for _ in range(self._poisson(self.config.swaps_per_block
                                     * scale)):
            tx = self.traders.make_swap(self.state, self.registry, fees)
            if tx is not None:
                self.submit_public(tx, current)
        for _ in range(self._poisson(self.config.transfers_per_block
                                     * scale)):
            self.submit_public(self.traders.make_transfer(self.state,
                                                          fees), current)
        for _ in range(self._poisson(self.config.stable_swaps_per_block
                                     * scale)):
            tx = self.traders.make_stable_swap(self.state,
                                               self.registry, fees)
            if tx is not None:
                self.submit_public(tx, current)
        if self.rng.random() < self.config.amateur_arb_rate * scale:
            tx = self.traders.make_naive_arbitrage(self.state,
                                                   self.registry, fees)
            if tx is not None:
                self.submit_public(tx, current)
        open_loans = sum(pool.open_loan_count()
                         for pool in self.lending_pools)
        if (open_loans < self.config.max_open_loans
                and self.rng.random() < self.config.borrow_rate * scale
                and self.lending_pools):
            pool = self.rng.choice(self.lending_pools)
            tx = self.borrowers.make_borrow(self.state, pool,
                                            self.oracle, fees)
            if tx is not None:
                self.submit_public(tx, current)
        for tx in self.keeper.make_updates(self.state, fees,
                                           current + 1):
            self.submit_public(tx, current)

    def _active_searchers(self, target_block: int) -> List[Searcher]:
        """Searchers whose lifecycle covers ``target_block`` (computed
        once per step; activity depends only on the block number)."""
        return [s for s in self.searchers if s.is_active(target_block)]

    def _pga_intensity(self, target_block: int,
                       active: Optional[List[Searcher]] = None) -> float:
        """Share of active MEV searchers bidding in the *public* mempool —
        the driver of Figure 6's gas-price regimes."""
        if active is None:
            active = self._active_searchers(target_block)
        bidding = [s for s in active if s.strategy != "other"]
        if not bidding:
            return 0.0
        public = sum(1 for s in bidding
                     if s.policy.channel_at(target_block)
                     == CHANNEL_PUBLIC)
        return public / len(bidding)

    def _competition(self, target_block: int,
                     active: Optional[List[Searcher]] = None,
                     ) -> Dict[str, int]:
        if active is None:
            active = self._active_searchers(target_block)
        counts: Dict[str, int] = {}
        for searcher in active:
            counts[searcher.strategy] = \
                counts.get(searcher.strategy, 0) + 1
        return counts

    @fast_path(toggle="fast_paths")
    def _run_searchers(self, current: int, fees: FeeModel,
                       active: Optional[List[Searcher]] = None,
                       competition: Optional[Dict[str, int]] = None,
                       ) -> None:
        target = current + 1
        if active is None:
            active = self._active_searchers(target)
        if competition is None:
            competition = self._competition(target, active)
        liquidatable = [(pool, pool.liquidatable_loans())
                        for pool in self.lending_pools]
        view = MarketView(
            state=self.state, registry=self.registry, oracle=self.oracle,
            pending=self.mempool.transactions, block_number=current,
            fees=fees, rng=self.rng, lending_pools=self.lending_pools,
            flash_provider=self.flash_provider,
            competition=competition,
            liquidatable_by_pool=liquidatable,
            bundle_rush=self.rng.random() < 0.25,
            memo={} if self.fast_paths else None)
        flashbots_live = target >= self.flashbots_launch_block
        for searcher in active:
            rate = searcher.attempt_rate
            # Once Flashbots exists, sandwiching through the open mempool
            # is a losing race against bundles (the paper finds only
            # 5.6 % of window sandwiches were public): the remaining
            # public sandwichers try far less often.
            if (flashbots_live and searcher.strategy == "sandwich"
                    and searcher.policy.channel_at(target)
                    == CHANNEL_PUBLIC):
                rate *= 0.35
            if rate < 1.0 and self.rng.random() > rate:
                continue
            for submission in searcher.scan(view):
                self._route_submission(submission, current,
                                       flashbots_live)

    def _route_submission(self, submission: Submission, current: int,
                          flashbots_live: bool) -> None:
        if submission.channel == CHANNEL_FLASHBOTS:
            if not flashbots_live or submission.bundle is None:
                return
            if self.relay.submit(submission.bundle, current):
                self.ground_truths.append(submission.ground_truth)
            return
        if submission.channel == CHANNEL_PRIVATE:
            pool = self.private_pools.get(submission.private_pool or "")
            if pool is None:
                return
            if pool.submit_sequence(submission.private_sequence,
                                    current):
                self.ground_truths.append(submission.ground_truth)
            return
        accepted_any = False
        for tx in submission.txs:
            if self.mempool.add(tx, current):
                self.gossip.broadcast(tx, current)
                accepted_any = True
        if accepted_any:
            self.ground_truths.append(submission.ground_truth)

    # Miner-side extras ------------------------------------------------------

    def _payout_bundle(self, miner: MinerProfile, target: int,
                       fees: FeeModel):
        schedule = miner.payout_schedule
        if schedule is None:
            return None
        if not miner.in_flashbots(target) or \
                target < self.flashbots_launch_block:
            return None
        # Payouts fire on the first block the pool mines once the payout
        # interval has elapsed (pools batch payouts, then wait for their
        # own next block to include them fee-free).
        last = self._last_payout.get(miner.address,
                                     self.flashbots_launch_block)
        if target - last < schedule.interval_blocks:
            return None
        self._last_payout[miner.address] = target
        recipients = schedule.recipients
        # One F2Pool payout in the study is famously 700 transactions
        # (block 12,481,590 in the paper): the first payout due after the
        # giant-payout month fires at full size.
        giant_block = (self.flashbots_launch_block
                       + 4 * self.config.blocks_per_month)
        if (miner.name == "f2pool" and not self._giant_payout_done
                and target >= giant_block):
            recipients = self.config.giant_payout_recipients
            self._giant_payout_done = True
        needed = recipients * (schedule.amount_wei + ether(0.01))
        if self.state.eth_balance(miner.address) < needed:
            self.state.credit_eth(miner.address, needed * 2)
        txs = []
        nonce = self.state.nonce(miner.address)
        for i in range(recipients):
            recipient = f"0x{'11' * 10}{i:020x}"
            txs.append(Transaction(
                sender=miner.address, nonce=nonce + i, to=recipient,
                value=schedule.amount_wei, gas_limit=21_000,
                meta={"role": "payout"}, **fees.bundle_fields()))
        return make_bundle(miner.address, txs, target,
                           bundle_type=MINER_PAYOUT)

    def _rogue_bundle(self, miner: MinerProfile, target: int,
                      fees: FeeModel):
        if not miner.in_flashbots(target) or \
                target < self.flashbots_launch_block:
            return None
        if self.rng.random() >= self.config.rogue_bundle_rate:
            return None
        if self.state.eth_balance(miner.address) < ether(5):
            self.state.credit_eth(miner.address, ether(100))
        tx = Transaction(
            sender=miner.address, nonce=self.state.nonce(miner.address),
            to=miner.mev_account, value=ether(self.rng.uniform(0.1, 2)),
            gas_limit=21_000, meta={"role": "rogue"},
            **fees.bundle_fields())
        return make_bundle(miner.address, [tx], target,
                           bundle_type=ROGUE)

    @fast_path(toggle="fast_paths")
    def _self_mev_sequences(self, miner: MinerProfile, current: int,
                            fees: FeeModel,
                            competition: Optional[Dict[str, int]] = None,
                            ) -> List[tuple]:
        """A self-extracting miner's own sandwiches for the block it is
        building right now: it scans the mempool exactly when it wins the
        lottery and inserts its attack privately (Section 6.3)."""
        searcher = self.self_mev_searchers.get(miner.address)
        if searcher is None or not miner.self_mev:
            return []
        if competition is None:
            competition = self._competition(current + 1)
        # Fresh memo: payout/rogue bundles may have credited ETH between
        # the public searcher scan and this one, so cached quotes from
        # _run_searchers are not guaranteed valid here.
        view = MarketView(
            state=self.state, registry=self.registry, oracle=self.oracle,
            pending=self.mempool.transactions, block_number=current,
            fees=fees, rng=self.rng, lending_pools=self.lending_pools,
            flash_provider=self.flash_provider,
            competition=competition,
            memo={} if self.fast_paths else None)
        sequences: List[tuple] = []
        for submission in searcher.scan(view):
            if submission.channel != CHANNEL_PRIVATE or \
                    not submission.private_sequence:
                continue
            sequences.append(submission.private_sequence)
            self.ground_truths.append(submission.ground_truth)
        return sequences

    # Epoch boundaries & seals ------------------------------------------------

    def _height(self) -> int:
        """Current chain height; mid-window start for restored worlds."""
        height = self.blockchain.height
        return self._initial_height if height is None else height

    def _enter_epoch(self, epoch_index: int) -> None:
        """Reseed every RNG stream for ``epoch_index``.

        Streams are reseeded *in place* so every alias stays wired —
        ``_gas_model`` shares ``self.rng``, the gossip network owns the
        observation stream, and the populations each own theirs.
        """
        seed = self.config.seed
        self.rng.seed(epoch_stream_seed(seed, "world", epoch_index))
        self.gossip.rng.seed(
            epoch_stream_seed(seed, "gossip", epoch_index))
        self.traders.rng.seed(
            epoch_stream_seed(seed, "traders", epoch_index))
        self.borrowers.rng.seed(
            epoch_stream_seed(seed, "borrowers", epoch_index))
        self.keeper.rng.seed(
            epoch_stream_seed(seed, "keeper", epoch_index))
        self.universe.reseed_epoch(seed, epoch_index)
        self._epoch_entered = epoch_index

    def seal(self) -> EpochSeal:
        """Snapshot the carried state at the current epoch boundary.

        Only valid when the height *is* a boundary (a multiple of
        ``epoch_blocks``, or the end of the study window).  The returned
        seal plus ``(seed, epoch_index)`` is everything a fresh worker
        needs to reproduce the next epoch draw-for-draw — see
        :func:`repro.sim.scenario.restore_paper_scenario`.
        """
        height = self._height()
        if (height % self.epoch_blocks != 0
                and height != self.calendar.total_blocks):
            raise ValueError(
                f"cannot seal mid-epoch: height {height} is not a "
                f"boundary (epoch_blocks={self.epoch_blocks})")
        carried = {
            "state": self.state, "registry": self.registry,
            "oracle": self.oracle, "universe": self.universe,
            "lending_pools": self.lending_pools,
            "flash_provider": self.flash_provider,
            "miners": self.miners, "relay": self.relay,
            "private_pools": self.private_pools,
            "traders": self.traders, "borrowers": self.borrowers,
            "keeper": self.keeper, "searchers": self.searchers,
            "self_mev_searchers": self.self_mev_searchers,
            "mempool": self.mempool, "gossip": self.gossip,
            "observer": self.observer,
            "flashbots_api": self.flashbots_api,
            "ground_truths": self.ground_truths,
            "base_fee": self.base_fee,
            "giant_payout_done": self._giant_payout_done,
            "last_payout": self._last_payout,
        }
        payload = pickle.dumps(carried,
                               protocol=pickle.HIGHEST_PROTOCOL)
        tip = self.blockchain.height
        parent_hash = None
        if tip is not None:
            tip_block = self.blockchain.block_by_number(tip)
            if tip_block is not None:
                parent_hash = tip_block.hash
        return EpochSeal(
            epoch_index=-(-height // self.epoch_blocks),
            first_block=height + 1, tx_counter=tx_counter(),
            parent_hash=parent_hash, payload=payload,
            fingerprint=hashlib.sha256(payload).hexdigest())

    def restore_carry(self, seal: EpochSeal, carried: dict) -> None:
        """Adopt the non-constructor carried state from ``carried``.

        The constructor-visible components (state, registry, pools,
        populations, …) must already have been passed to ``__init__``
        from the *same* unpickled graph — see
        :func:`repro.sim.scenario.restore_paper_scenario` — so that
        ``_collect_contracts`` and the gas model wire against the
        restored objects.  This method overwrites the pieces the
        constructor built fresh and positions the world at the seal.
        """
        if self.blockchain.height is not None:
            raise ValueError("restore_carry requires an empty chain")
        self.mempool = carried["mempool"]
        self.gossip = carried["gossip"]
        self.observer = carried["observer"]
        self.flashbots_api = carried["flashbots_api"]
        self.ground_truths = carried["ground_truths"]
        self.base_fee = carried["base_fee"]
        self._giant_payout_done = carried["giant_payout_done"]
        self._last_payout = carried["last_payout"]
        self._initial_height = seal.first_block - 1
        self._epoch_entered = None
        set_tx_counter(seal.tx_counter)

    def attach_segment_store(self, store: SegmentStore,
                             max_resident_epochs: int = 2) -> None:
        """Swap the in-memory chain for a spillable, segment-backed one.

        Completed epochs spill to ``store`` as fingerprinted segment
        files and all but the newest ``max_resident_epochs`` are evicted
        from memory, so peak residency is O(epoch) instead of O(world).
        Must be called before the first block is mined.
        """
        if self.blockchain.height is not None:
            raise ValueError(
                "attach_segment_store requires an empty chain")
        self.blockchain = SpillingBlockchain(
            store, epoch_blocks=self.epoch_blocks,
            first_block=self._initial_height + 1,
            max_resident_epochs=max_resident_epochs)
        self.node = ArchiveNode(self.blockchain)

    # The main loop ---------------------------------------------------------

    def step(self) -> None:
        current = self._height()
        number = current + 1
        epoch = (number - 1) // self.epoch_blocks
        if epoch != self._epoch_entered:
            self._enter_epoch(epoch)
        london = self.forks.is_london(number)
        if london and self.base_fee == 0:
            self.base_fee = INITIAL_BASE_FEE
        active = self._active_searchers(number)
        competition = self._competition(number, active)
        fees = FeeModel(base_fee=self.base_fee, london_active=london,
                        prevailing=self._gas_model.level(
                            self._pga_intensity(number, active)))

        self._generate_traffic(current, fees)
        self._run_searchers(current, fees, active, competition)

        miner = self.miners.pick(self.rng)
        bundles = []
        flashbots_member = (miner.in_flashbots(number)
                            and number >= self.flashbots_launch_block)
        if flashbots_member:
            bundles.extend(self.relay.bundles_for_block(number,
                                                        miner.address))
            payout = self._payout_bundle(miner, number, fees)
            if payout is not None:
                bundles.append(payout)
            rogue = self._rogue_bundle(miner, number, fees)
            if rogue is not None:
                bundles.append(rogue)
        private_sequences = list(self.private_pools.pending_for_miner(
            miner.address, number))
        private_sequences += self._self_mev_sequences(miner, current,
                                                      fees, competition)

        result = build_block(
            self.state, self.mempool, number=number,
            timestamp=13 * number, coinbase=miner.address,
            base_fee=self.base_fee, contracts=self._contracts,
            bundles=bundles, private_sequences=private_sequences,
            burn_base_fee=london)
        self.blockchain.append(result.block)

        if result.included_bundles:
            self.flashbots_api.record_block(number, miner.address,
                                            result.included_bundles)

        included_hashes: Set[str] = set(result.block.tx_hashes)
        self.mempool.remove(included_hashes)
        self.mempool.evict_stale(number)
        self.private_pools.mark_included(included_hashes)
        self.relay.mark_included(number, {
            item.bundle.bundle_id for item in result.included_bundles})
        self.relay.expire_before(number + 1)

        if london:
            self.base_fee = next_base_fee(self.base_fee,
                                          result.block.gas_used,
                                          result.block.gas_limit)

    def run(self, blocks: Optional[int] = None,
            collect_seals: Optional[Dict[int, EpochSeal]] = None,
            ) -> SimulationResult:
        """Advance ``blocks`` steps (default: the whole study window).

        With ``collect_seals`` (a dict to fill), an :class:`EpochSeal`
        is taken at every epoch boundary crossed — including the start
        and, when the run ends on a boundary, the terminal state —
        keyed by the epoch the seal begins.
        """
        total = blocks if blocks is not None \
            else self.calendar.total_blocks
        start = self._height()
        end = min(start + total, self.calendar.total_blocks)
        while self._height() < end:
            if (collect_seals is not None
                    and self._height() % self.epoch_blocks == 0):
                boundary = self.seal()
                collect_seals[boundary.epoch_index] = boundary
            self.step()
        if collect_seals is not None:
            final = self._height()
            if (final % self.epoch_blocks == 0
                    or final == self.calendar.total_blocks):
                boundary = self.seal()
                collect_seals[boundary.epoch_index] = boundary
        return self.result()

    def result(self) -> SimulationResult:
        return SimulationResult(
            config=self.config, calendar=self.calendar, forks=self.forks,
            blockchain=self.blockchain, node=self.node,
            observer=self.observer, flashbots_api=self.flashbots_api,
            relay=self.relay, miners=self.miners,
            private_pools=self.private_pools, oracle=self.oracle,
            registry=self.registry, lending_pools=self.lending_pools,
            ground_truths=self.ground_truths,
            flashbots_launch_block=self.flashbots_launch_block)
