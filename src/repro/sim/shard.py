"""Epoch-sharded world simulation over the chunk-execution engine.

A serial pass with ``World.run(collect_seals=...)`` yields one
:class:`~repro.sim.world.EpochSeal` per epoch boundary.  Given those
seals, every epoch becomes an *independent* unit of work: a fresh
worker rebuilds a mid-window world from ``(config, seal)`` via
:func:`~repro.sim.scenario.restore_paper_scenario`, simulates exactly
its epoch's blocks, and returns them.  :func:`splice_epochs` stitches
worker output back into one chain that must be **bit-identical** —
block hash and transaction hash, element for element — to the serial
reference.  ``repro bench --shard`` enforces that equality as the
``shard_identical`` gate (schema v7), with a sampled-prefix variant for
scenarios too large to reference in full.

Epochs run through the same :class:`~repro.engine.ParallelExecutor`
the detection pipeline uses; like every executor in this codebase,
worker count is an optimization, never a semantic change.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.chain.block import Block
from repro.chain.node import ArchiveNode, Blockchain
from repro.chain.transaction import reset_tx_counter
from repro.engine.executors import (
    BlockRange,
    ParallelExecutor,
    SerialExecutor,
    effective_workers,
)
from repro.sim.calendar import StudyCalendar
from repro.sim.config import ScenarioConfig
from repro.sim.scenario import (
    build_paper_scenario,
    restore_paper_scenario,
    scenario_frame,
)
from repro.sim.world import EpochSeal, SimulationResult


def plan_epochs(config: ScenarioConfig) -> List[BlockRange]:
    """The epoch chunk plan: inclusive ``(first, last)`` block ranges
    covering the study window, one per epoch (the last may be short)."""
    calendar = StudyCalendar(config.blocks_per_month, config.months)
    width = config.epoch_blocks or config.blocks_per_month
    return [calendar.epoch_bounds(index, width)
            for index in range(calendar.epoch_count(width))]


@dataclass
class EpochResult:
    """One epoch re-simulated from its seal on a (possibly remote)
    worker: the blocks it produced and the seal at its far boundary."""

    epoch_index: int
    chunk: BlockRange
    blocks: List[Block]
    end_seal: EpochSeal

    @property
    def failed(self) -> bool:
        """Executor-protocol hook; an epoch that raises propagates as a
        crash rather than degrading, so a returned result never failed."""
        return False


class EpochRunner:
    """The picklable unit of work: re-simulate one epoch from its seal.

    Shipped to worker processes by :class:`ParallelExecutor` exactly
    like the detection ``ChunkRunner``; only ``(lo, hi)`` ranges travel
    per task.  Restoring positions the process-wide transaction-uid
    counter at the seal, so the hashes a worker mints match the serial
    run's no matter which process runs which epoch.
    """

    def __init__(self, config: ScenarioConfig,
                 seals: Dict[int, EpochSeal],
                 fast_paths: bool = True) -> None:
        self.config = config
        self.seals = dict(seals)
        self.fast_paths = fast_paths
        self.epoch_blocks = config.epoch_blocks \
            or config.blocks_per_month

    def run_chunk(self, chunk: BlockRange) -> EpochResult:
        lo, hi = chunk
        epoch_index = (lo - 1) // self.epoch_blocks
        seal = self.seals.get(epoch_index)
        if seal is None:
            raise KeyError(f"no seal for epoch {epoch_index} "
                           f"(blocks {lo}-{hi})")
        if seal.first_block != lo:
            raise ValueError(
                f"seal {epoch_index} starts at block "
                f"{seal.first_block}, chunk starts at {lo}")
        world = restore_paper_scenario(self.config, seal,
                                       fast_paths=self.fast_paths)
        world.run(blocks=hi - lo + 1)
        return EpochResult(
            epoch_index=epoch_index, chunk=chunk,
            blocks=list(world.blockchain.blocks),
            end_seal=world.seal())


def resimulate_epochs(config: ScenarioConfig,
                      seals: Dict[int, EpochSeal],
                      chunks: Optional[Sequence[BlockRange]] = None,
                      workers: int = 1,
                      fast_paths: bool = True) -> List[EpochResult]:
    """Re-simulate epochs from their seals, fanned out over workers.

    Returns results in *epoch* order regardless of completion order —
    the reordering that makes worker count a pure optimization.
    """
    plan = list(chunks) if chunks is not None else plan_epochs(config)
    if not plan:
        return []
    runner = EpochRunner(config, seals, fast_paths=fast_paths)
    effective = effective_workers(workers)
    executor = ParallelExecutor(effective) if effective > 1 \
        else SerialExecutor()
    results = list(executor.execute(runner, plan))
    results.sort(key=lambda result: result.epoch_index)
    return results


def splice_epochs(config: ScenarioConfig,
                  results: Sequence[EpochResult]) -> SimulationResult:
    """Stitch per-epoch worker output into one full-window result.

    Blocks are appended in order onto a fresh chain — each epoch's
    first block arrives with ``parent_hash=None`` (its worker chain
    started empty) and is stamped with the true tip hash here, exactly
    as the serial append would have stamped it.  The carried state of
    the *last* epoch's end seal supplies the result's observer trace,
    Flashbots dataset, relay, ledgers, and ground truths: by the seal
    determinism property those equal the serial run's finals.
    """
    ordered = sorted(results, key=lambda result: result.epoch_index)
    if not ordered:
        raise ValueError("cannot splice zero epochs")
    expected = None
    for result in ordered:
        if expected is not None and result.chunk[0] != expected:
            raise ValueError(
                f"epoch gap at block {expected}: next worker chunk "
                f"starts at {result.chunk[0]}")
        expected = result.chunk[1] + 1

    chain = Blockchain()
    for result in ordered:
        for block in result.blocks:
            chain.append(block)
    final = ordered[-1].end_seal
    carried = final.carried()
    calendar, forks, launch = scenario_frame(config)
    return SimulationResult(
        config=config, calendar=calendar, forks=forks,
        blockchain=chain, node=ArchiveNode(chain),
        observer=carried["observer"],
        flashbots_api=carried["flashbots_api"],
        relay=carried["relay"], miners=carried["miners"],
        private_pools=carried["private_pools"],
        oracle=carried["oracle"], registry=carried["registry"],
        lending_pools=carried["lending_pools"],
        ground_truths=carried["ground_truths"],
        flashbots_launch_block=launch)


def block_sequence(result: SimulationResult,
                   ) -> List[Tuple[str, Tuple[str, ...]]]:
    """The identity the shard gate compares: every block's hash plus
    its full transaction-hash tuple, in chain order."""
    return [(block.hash, tuple(block.tx_hashes))
            for block in result.blockchain.blocks]


def simulate_sharded(config: ScenarioConfig, workers: int = 1,
                     prefix_epochs: Optional[int] = None,
                     fast_paths: bool = True,
                     ) -> Tuple[SimulationResult, SimulationResult,
                                Dict[str, object]]:
    """Serial reference + sharded re-simulation, ready for comparison.

    Runs the serial pass once (collecting seals), then re-simulates
    every epoch — or only the first ``prefix_epochs``, the sampled
    prefix gate for very large scenarios — from seals across
    ``workers`` and splices.  Returns ``(serial, sharded, info)``;
    ``sharded`` covers the full window or the prefix accordingly.
    """
    reset_tx_counter()
    seals: Dict[int, EpochSeal] = {}
    serial = build_paper_scenario(
        config, fast_paths=fast_paths).run(collect_seals=seals)
    plan = plan_epochs(config)
    scope = "full"
    if prefix_epochs is not None:
        if prefix_epochs < 1:
            raise ValueError("prefix_epochs must be >= 1")
        plan = plan[:prefix_epochs]
        scope = f"prefix[{len(plan)}]"
    results = resimulate_epochs(config, seals, chunks=plan,
                                workers=workers,
                                fast_paths=fast_paths)
    sharded = splice_epochs(config, results)
    info: Dict[str, object] = {
        "epochs": len(plan_epochs(config)),
        "epoch_blocks": config.epoch_blocks or config.blocks_per_month,
        "resimulated_epochs": len(plan),
        "scope": scope,
        "workers_requested": workers,
        "workers_effective": effective_workers(workers),
    }
    return serial, sharded, info
