"""Overlapped spill/seal I/O and the scale-flat runtime regime.

Long sharded runs spend their per-epoch budget in two places that have
nothing to do with simulating blocks: durably writing the completed
epoch's artifacts (segment pickle, manifest, seal snapshot) and cyclic
garbage collection over an ever-larger heap.  This module removes both
from the simulation thread:

* :class:`BackgroundWriter` — a single worker thread fed through a
  bounded queue (double buffering: at most ``max_pending`` completed
  epochs may be in flight).  The simulation thread hands over fully
  materialized, immutable payloads and returns immediately;
  backpressure on the queue bounds memory at O(epoch).  The first
  failure in the worker is captured and re-raised on the next
  ``submit``/``flush``/``close`` so errors are never silently dropped.

* :class:`FlatGC` — the measured GC regime for multi-million-block
  runs: freeze the long-lived heap out of every generational scan at
  each epoch boundary and raise the gen-0 threshold so collection work
  tracks the epoch's allocation rate, not total progress.  Reference
  counting still frees the (acyclic) evicted blocks immediately, so
  residency stays O(epoch).  Pure runtime tuning — it performs no
  draws and touches no simulated state, so simulated output is
  byte-identical with the regime on or off.

Crash safety is owned by the callers' write protocols (temp file +
``fsync`` + ``os.replace`` + directory ``fsync``, with the manifest
written only after its segment is durable — see
:mod:`repro.chain.segments`); this module only supplies the ordered,
observable execution lane those protocols run in.
"""

from __future__ import annotations

import gc
import queue
import threading
from typing import Callable, Optional, Tuple

__all__ = ["BackgroundWriter", "FlatGC", "DEFAULT_MAX_PENDING",
           "FLAT_GC_GEN0"]

#: Double buffering: the simulation thread may run at most this many
#: completed epochs ahead of the writer before ``submit`` blocks.
DEFAULT_MAX_PENDING = 2

#: Gen-0 threshold for long runs.  The default (700) makes collection
#: frequency proportional to *total* allocation churn; at millions of
#: blocks that is pure overhead on a heap whose long-lived objects are
#: already frozen.  2M keeps young-generation scans rare while an
#: epoch's worth of garbage still fits comfortably in memory (measured:
#: no RSS difference against the default threshold at 100k blocks).
FLAT_GC_GEN0 = 2_000_000

# Worker-thread lifecycle state lives on instances, not module globals;
# the only shared mutable state is each writer's queue (R103: the
# bounded queue *is* the synchronization).


class BackgroundWriter:
    """Ordered background execution lane for epoch-boundary I/O.

    Jobs are plain callables, executed strictly in submission order by
    one daemon worker thread.  ``submit`` blocks once ``max_pending``
    jobs are queued (backpressure keeps the simulation at most
    ``max_pending`` epochs ahead of the disk).  ``flush`` waits until
    every submitted job has finished; ``close`` flushes and stops the
    worker.  Both are idempotent.

    The first exception raised by a job is captured, the writer refuses
    further work, and the exception is re-raised (with its original
    traceback) from the next ``submit``/``flush``/``close`` call on the
    simulation thread — a failed spill must fail the run, not rot on a
    background thread.
    """

    def __init__(self, max_pending: int = DEFAULT_MAX_PENDING) -> None:
        if max_pending <= 0:
            raise ValueError("max_pending must be positive")
        self.max_pending = max_pending
        self._queue: "queue.Queue[Optional[Tuple[str, Callable[[], None]]]]" \
            = queue.Queue(maxsize=max_pending)
        self._error: Optional[BaseException] = None
        self._error_label: Optional[str] = None
        self._closed = False
        self._worker = threading.Thread(
            target=self._run, name="repro-overlap-writer", daemon=True)
        self._worker.start()

    # Worker side ---------------------------------------------------------

    def _run(self) -> None:
        while True:
            item = self._queue.get()
            try:
                if item is None:
                    return
                label, job = item
                if self._error is None:
                    try:
                        job()
                    except BaseException as exc:  # noqa: BLE001
                        self._error = exc
                        self._error_label = label
            finally:
                self._queue.task_done()

    # Simulation-thread side ----------------------------------------------

    def _raise_pending_error(self) -> None:
        if self._error is not None:
            error, self._error = self._error, None
            label = self._error_label
            raise RuntimeError(
                f"background write {label!r} failed") from error

    def submit(self, label: str, job: Callable[[], None]) -> None:
        """Queue ``job``; blocks when ``max_pending`` jobs are in flight.

        ``label`` names the artifact (e.g. ``"segment epoch 7"``) in
        the error chain when the job fails.
        """
        if self._closed:
            raise RuntimeError("writer is closed")
        self._raise_pending_error()
        self._queue.put((label, job))

    def flush(self) -> None:
        """Block until every submitted job has run; re-raise failures."""
        self._queue.join()
        self._raise_pending_error()

    def close(self) -> None:
        """Flush, stop the worker, and re-raise any captured failure."""
        if self._closed:
            self._raise_pending_error()
            return
        self._closed = True
        self._queue.join()
        self._queue.put(None)
        self._worker.join()
        self._raise_pending_error()

    def __enter__(self) -> "BackgroundWriter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class FlatGC:
    """Scale-flat garbage-collection regime for long simulations.

    ``install`` freezes the currently live heap into the permanent
    generation (scenario graph, code objects, caches) and widens the
    gen-0 threshold; ``epoch_boundary`` collects once and freezes the
    epoch's survivors so the next epoch's scans never re-traverse them;
    ``uninstall`` restores the interpreter's previous configuration.
    Use as a context manager around a run loop::

        with FlatGC():
            world.run(...)

    The regime only changes *when* the collector scans, never what the
    simulation computes — no draws, no state, no output change.
    """

    def __init__(self, gen0_threshold: int = FLAT_GC_GEN0) -> None:
        if gen0_threshold <= 0:
            raise ValueError("gen0_threshold must be positive")
        self.gen0_threshold = gen0_threshold
        self._saved: Optional[Tuple[int, int, int]] = None

    @property
    def installed(self) -> bool:
        return self._saved is not None

    def install(self) -> "FlatGC":
        if self._saved is None:
            self._saved = gc.get_threshold()
            gc.collect()
            gc.freeze()
            gc.set_threshold(self.gen0_threshold, 10, 10)
        return self

    def epoch_boundary(self) -> None:
        """Collect the finished epoch's cycles, freeze its survivors."""
        if self._saved is not None:
            gc.collect()
            gc.freeze()

    def uninstall(self) -> None:
        if self._saved is not None:
            gc.set_threshold(*self._saved)
            self._saved = None
            gc.unfreeze()

    def __enter__(self) -> "FlatGC":
        return self.install()

    def __exit__(self, *exc_info: object) -> None:
        self.uninstall()
