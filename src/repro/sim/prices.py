"""Synthetic price processes: token/ETH paths and gas-demand levels.

Stands in for two external data sources the paper uses:

* CoinGecko token prices — replaced by seeded geometric-Brownian paths
  sampled at oracle-update transactions, and
* the organic gas-price market — replaced by a demand model whose level
  responds to how much priority-gas-auction (PGA) competition is happening
  in the public mempool.  That response is the mechanism behind Figure 6:
  when searchers move their bidding into Flashbots, the public gas price
  collapses even though no fork happened.
"""

from __future__ import annotations

import math
import random
from typing import Dict, Optional

from repro.chain.types import GWEI


class TokenPriceProcess:
    """Seeded geometric Brownian motion for one token's ETH price."""

    def __init__(self, token: str, initial_price_wei: int,
                 drift: float = 0.0, volatility: float = 0.03,
                 seed: int = 0) -> None:
        if initial_price_wei <= 0:
            raise ValueError("initial price must be positive")
        if volatility < 0:
            raise ValueError("volatility cannot be negative")
        self.token = token
        self.initial_price_wei = initial_price_wei
        self.drift = drift
        self.volatility = volatility
        self._rng = random.Random((seed, token).__repr__())
        self._current = initial_price_wei
        self._steps = 0

    @property
    def current(self) -> int:
        return self._current

    def step(self) -> int:
        """Advance one period and return the new price."""
        shock = self._rng.gauss(self.drift - self.volatility**2 / 2,
                                self.volatility)
        self._current = max(1, int(self._current * math.exp(shock)))
        self._steps += 1
        return self._current

    def reseed(self, key: str) -> None:
        """Reset the draw stream from ``key`` (current price is kept).

        String seeding hashes with SHA-512 inside :mod:`random`, so the
        stream is identical across processes regardless of
        ``PYTHONHASHSEED`` — the property epoch seals rely on.
        """
        self._rng.seed(key)


class PriceUniverse:
    """All token price processes for a scenario, stepped together."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._processes: Dict[str, TokenPriceProcess] = {}

    def add_token(self, token: str, initial_price_wei: int,
                  drift: float = 0.0,
                  volatility: float = 0.03) -> TokenPriceProcess:
        if token in self._processes:
            raise ValueError(f"{token} already has a price process")
        process = TokenPriceProcess(token, initial_price_wei, drift,
                                    volatility, seed=self.seed)
        self._processes[token] = process
        return process

    def get(self, token: str) -> Optional[TokenPriceProcess]:
        return self._processes.get(token)

    @property
    def tokens(self) -> list:
        return list(self._processes)

    def step_all(self) -> Dict[str, int]:
        """Advance every token one period; returns new prices."""
        return {token: process.step()
                for token, process in self._processes.items()}

    def reseed_epoch(self, seed: int, epoch_index: int) -> None:
        """Derive every token's stream from ``(seed, epoch_index)``.

        Called at each sealed epoch boundary so a worker resuming from
        the seal draws the exact shocks the serial run would have drawn,
        without shipping any RNG state inside the seal.
        """
        for token, process in self._processes.items():
            process.reseed(f"repro-epoch:{seed}:price:{token}:"
                           f"{epoch_index}")


class GasDemandModel:
    """Prevailing public gas-price level with PGA feedback.

    ``level(block, pga_intensity)`` returns the gwei-denominated price an
    ordinary user bids.  ``pga_intensity`` ∈ [0, 1] measures how much MEV
    bidding is happening *in the public mempool* (1 = all searchers bid
    publicly, 0 = all moved to private channels); it multiplies the organic
    level by up to ``pga_multiplier``.
    """

    def __init__(self, rng: random.Random,
                 organic_gwei: float = 40.0,
                 pga_multiplier: float = 4.0,
                 noise_sigma: float = 0.25) -> None:
        if organic_gwei <= 0:
            raise ValueError("organic level must be positive")
        if pga_multiplier < 1.0:
            raise ValueError("pga multiplier must be >= 1")
        self.rng = rng
        self.organic_gwei = organic_gwei
        self.pga_multiplier = pga_multiplier
        self.noise_sigma = noise_sigma

    def level(self, pga_intensity: float) -> int:
        """Current prevailing gas price in wei."""
        if not 0.0 <= pga_intensity <= 1.0:
            raise ValueError("pga_intensity must be within [0, 1]")
        multiplier = 1.0 + (self.pga_multiplier - 1.0) * pga_intensity
        noise = math.exp(self.rng.gauss(0, self.noise_sigma))
        return max(GWEI, int(self.organic_gwei * multiplier * noise
                             * GWEI))

    def user_gas_price(self, pga_intensity: float) -> int:
        """A single user's sampled bid around the prevailing level."""
        jitter = math.exp(self.rng.gauss(0, 0.15))
        return max(GWEI, int(self.level(pga_intensity) * jitter))
