"""Scenario configuration: every knob of the simulated study window."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.sim.calendar import STUDY_MONTHS


@dataclass
class ScenarioConfig:
    """Full parameterization of the calibrated paper scenario.

    The defaults are the calibration used by the benchmark suite: small
    enough to run in seconds, dense enough that every figure's shape is
    statistically visible.  ``blocks_per_month`` is the main size lever.
    """

    seed: int = 7
    blocks_per_month: int = 300
    months: Tuple[str, ...] = STUDY_MONTHS

    # Miner population (Figure 4/5 shape)
    num_miners: int = 55
    hashpower_exponent: float = 1.15

    # Searcher populations
    num_sandwich_searchers: int = 12
    num_arbitrage_searchers: int = 10
    num_liquidation_searchers: int = 5
    num_other_users: int = 40
    searcher_capital_eth: float = 5_000.0
    flash_user_capital_eth: float = 4.0
    searcher_faulty_rate: float = 0.012
    searcher_attempt_rate: float = 0.4
    flash_loan_user_fraction: float = 0.25
    searcher_min_profit_eth: float = 0.05
    #: sealed-bid mean tip fraction; None → market default (0.80)
    sealed_bid_tip_mean: Optional[float] = None

    # Background traffic
    num_traders: int = 150
    num_borrowers: int = 40
    swaps_per_block: float = 3.0
    transfers_per_block: float = 3.0
    stable_swaps_per_block: float = 0.4
    amateur_arb_rate: float = 0.08
    borrow_rate: float = 0.10
    max_open_loans: int = 80
    oracle_interval_blocks: int = 15

    # Market structure
    observation_rate: float = 0.995
    organic_gas_gwei: float = 40.0
    pga_gas_multiplier: float = 4.0
    token_volatility: float = 0.05

    # Flashbots / private-pool timeline knobs (months)
    flashbots_launch_month: str = "2021-02"
    berlin_month: str = "2021-04"
    london_month: str = "2021-08"
    exodus_month: str = "2021-09"
    taichi_shutdown_month: str = "2021-10"
    observation_start_month: str = "2021-11"
    observation_end_month: Optional[str] = None  # None = study end

    # Miner payout bundles (Section 4.1's F2Pool example)
    payout_interval_blocks: int = 60
    payout_recipients: int = 20
    giant_payout_recipients: int = 700

    # Rogue bundles (7.6 % of the FB dataset)
    rogue_bundle_rate: float = 0.08

    # Self-extracting miners (Section 6.3)
    num_self_mev_miners: int = 2

    #: sealed-epoch width in blocks; ``None`` means month edges
    #: (``blocks_per_month``).  Every epoch boundary reseeds the world's
    #: RNG streams from ``(seed, epoch_index)`` so any epoch can be
    #: resumed from its seal on a fresh worker (see repro.sim.shard).
    epoch_blocks: Optional[int] = None

    extra: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.blocks_per_month <= 0:
            raise ValueError("blocks_per_month must be positive")
        if self.num_miners <= 0:
            raise ValueError("need at least one miner")
        if not 0.0 <= self.observation_rate <= 1.0:
            raise ValueError("observation_rate must be within [0, 1]")
        if self.flashbots_launch_month not in self.months:
            raise ValueError("flashbots launch month outside window")
        if self.epoch_blocks is not None and self.epoch_blocks <= 0:
            raise ValueError("epoch_blocks must be positive when set")

    @property
    def total_blocks(self) -> int:
        return self.blocks_per_month * len(self.months)
