"""The calibrated "paper scenario": the real timeline, in miniature.

Assembles a :class:`~repro.sim.world.World` whose populations and event
schedule mirror the study window:

* Flashbots launches in February 2021; miners enroll biggest-first until
  ~99.9 % of hashpower is inside (Figure 4), while the miner *count*
  stays ≤55 (Figure 5);
* searchers adopt Flashbots through 2021, then partially leave after
  September 2021 for private pools or the public mempool (Figures 3, 7);
* the Berlin and London forks land mid-window (Figure 6's markers);
* the Taichi pool shuts down in October 2021, Eden keeps running, and two
  mining pools (modelled on Flexpool and F2Pool) extract sandwich MEV
  privately for their own accounts (Section 6.3);
* the measurement node's pending-transaction observation window covers
  the final months (Section 3.2), enabling the private-MEV inference.
"""

from __future__ import annotations

import random
from typing import List

from repro.agents.miner import MinerProfile, MinerSet, PayoutSchedule, \
    zipf_hashpowers
from repro.agents.searcher import (
    ArbitrageSearcher,
    ChannelPolicy,
    LiquidationSearcher,
    OtherBundleUser,
    SandwichSearcher,
    Searcher,
)
from repro.agents.trader import BorrowerPopulation, OracleKeeper, \
    TraderPopulation
from repro.chain.fork import ForkSchedule
from repro.chain.state import WorldState
from repro.chain.types import ether
from repro.dex.registry import (
    BALANCER,
    UNISWAP_V1,
    BANCOR,
    CURVE,
    SUSHISWAP,
    UNISWAP_V2,
    UNISWAP_V3,
    ExchangeRegistry,
)
from repro.dex.token import WETH
from repro.flashbots.relay import Relay
from repro.lending.flashloan import FlashLoanProvider
from repro.lending.oracle import PRICE_SCALE, PriceOracle
from repro.lending.pool import LendingPool
from repro.markers import fast_path
from repro.privatepools.pool import PrivatePool, PrivatePoolDirectory
from repro.sim.calendar import StudyCalendar
from repro.sim.config import ScenarioConfig
from repro.sim.prices import PriceUniverse
from repro.sim.world import EpochSeal, World

#: Initial token prices in wei of ETH per 10^18 raw units.
INITIAL_PRICES = {
    "DAI": PRICE_SCALE // 3_000,
    "USDC": PRICE_SCALE // 3_000,
    "LINK": PRICE_SCALE // 150,
    "UNI": PRICE_SCALE // 180,
    "WBTC": PRICE_SCALE * 14,
}

#: (venue, tokenA, tokenB, WETH-side depth in ETH) for every pool.
#: The Curve DAI/USDC pool is added separately (stableswap math).
POOL_PLAN = [
    (UNISWAP_V2, WETH, "DAI", 3_000),
    (UNISWAP_V2, WETH, "USDC", 2_500),
    (UNISWAP_V2, WETH, "LINK", 1_200),
    (UNISWAP_V2, WETH, "UNI", 900),
    (UNISWAP_V2, WETH, "WBTC", 1_500),
    (SUSHISWAP, WETH, "DAI", 2_000),
    (SUSHISWAP, WETH, "USDC", 1_500),
    (SUSHISWAP, WETH, "LINK", 700),
    (SUSHISWAP, WETH, "UNI", 500),
    (UNISWAP_V3, WETH, "DAI", 4_000),
    (UNISWAP_V3, WETH, "USDC", 3_500),
    (UNISWAP_V1, WETH, "DAI", 250),
    (UNISWAP_V1, WETH, "LINK", 120),
    (BANCOR, WETH, "LINK", 500),
    (BANCOR, WETH, "DAI", 600),
    (BALANCER, WETH, "WBTC", 800),
]


def _build_markets(config: ScenarioConfig, state: WorldState,
                   rng: random.Random):
    """Deploy pools with slightly de-synchronized initial prices."""
    registry = ExchangeRegistry()
    for venue, token_a, token_b, depth_eth in POOL_PLAN:
        pool = registry.create_pool(venue, token_a, token_b)
        token = token_b if token_a == WETH else token_a
        weth_reserve = ether(depth_eth)
        price = INITIAL_PRICES[token]
        # ±0.7 % venue-to-venue skew seeds the cross-venue gaps that real
        # retail flow keeps replenishing.
        skew = 1.0 + rng.uniform(-0.007, 0.007)
        token_reserve = int(weth_reserve * PRICE_SCALE // price * skew)
        if hasattr(pool, "weight_of"):
            # Weighted pools price at (B/w) ratios: rebalance the token
            # side so the initial spot price still matches the oracle.
            token_reserve = (token_reserve * pool.weight_of(token)
                             // pool.weight_of(WETH))
        pool.add_liquidity(state, **{WETH: weth_reserve,
                                     token: token_reserve})
    curve = registry.create_pool(CURVE, "DAI", "USDC")
    curve.add_liquidity(state, DAI=ether(5_000_000),
                        USDC=ether(5_000_000))
    return registry


def _build_miners(config: ScenarioConfig,
                  calendar: StudyCalendar) -> MinerSet:
    """Long-tailed hashpower with biggest-first Flashbots enrollment."""
    launch = calendar.first_block_of(config.flashbots_launch_month)
    bpm = calendar.blocks_per_month
    weights = zipf_hashpowers(config.num_miners,
                              config.hashpower_exponent)
    named = ["ethermine", "f2pool", "flexpool", "hiveon", "nanopool"]
    miners: List[MinerProfile] = []
    for rank, hashpower in enumerate(weights):
        name = named[rank] if rank < len(named) else f"miner-{rank}"
        # Enrollment schedule (months after launch), biggest first: the
        # top pools join within a month, the tail trickles in for a year.
        if rank < 2:
            delay = 0.2
        elif rank < 5:
            delay = 0.8
        elif rank < 15:
            delay = 2.0
        elif rank < 35:
            delay = 4.0
        elif rank < config.num_miners - 2:
            delay = 8.0
        else:
            delay = None  # the last two tiny miners never join
        join = None if delay is None else launch + int(delay * bpm)
        payout = None
        if name in ("ethermine", "f2pool"):
            payout = PayoutSchedule(
                interval_blocks=config.payout_interval_blocks,
                recipients=config.payout_recipients,
                amount_wei=ether(0.1))
        self_mev = name in ("f2pool", "flexpool")[
            :config.num_self_mev_miners]
        miners.append(MinerProfile(
            name=name, hashpower=hashpower,
            flashbots_join_block=join,
            private_pools=("eden",) if rank < 6 else (),
            self_mev=self_mev, payout_schedule=payout))
    return MinerSet(miners)


def _fund_searcher(state: WorldState, searcher: Searcher,
                   capital_eth: float) -> None:
    state.credit_eth(searcher.address, ether(capital_eth))
    state.mint_token(WETH, searcher.address, ether(capital_eth))
    for token, price in INITIAL_PRICES.items():
        amount = ether(capital_eth) * PRICE_SCALE // price
        state.mint_token(token, searcher.address, amount)


def _build_searchers(config: ScenarioConfig, calendar: StudyCalendar,
                     state: WorldState,
                     rng: random.Random) -> List[Searcher]:
    launch = calendar.first_block_of(config.flashbots_launch_month)
    exodus = calendar.first_block_of(config.exodus_month)
    bpm = calendar.blocks_per_month
    min_profit = ether(config.searcher_min_profit_eth)
    searchers: List[Searcher] = []

    def policy_for(index: int, population: int) -> ChannelPolicy:
        """The paper's lifecycle mix: stay-public, FB-forever, FB-then-
        private, FB-then-public, late-FB."""
        roll = index % 6
        stagger = launch + int((index % 4) * 0.75 * bpm)
        if roll == 0:
            return ChannelPolicy()  # never leaves the public mempool
        if roll == 1:
            return ChannelPolicy(flashbots_from=stagger)  # FB forever
        if roll == 2:  # tried FB, drifted to Eden after the exodus
            return ChannelPolicy(flashbots_from=stagger,
                                 flashbots_until=exodus,
                                 private_pool="eden",
                                 private_from=exodus + bpm)
        if roll == 3:  # loyal: joined early, stays on Flashbots
            return ChannelPolicy(flashbots_from=launch)
        if roll == 4:  # FB → Taichi; back to public when it shuts down
            return ChannelPolicy(
                flashbots_from=stagger, flashbots_until=exodus,
                private_pool="taichi", private_from=exodus,
                private_until=calendar.first_block_of(
                    config.taichi_shutdown_month))
        return ChannelPolicy(  # late adopter
            flashbots_from=launch + int(3.5 * bpm))

    attempt = config.searcher_attempt_rate
    for i in range(config.num_sandwich_searchers):
        # A slice of the searcher population quits MEV entirely after the
        # exodus (Figure 7a's decline in active searchers).
        until = exodus + int((i % 3) * bpm) if i % 4 == 1 else None
        searchers.append(SandwichSearcher(
            f"sand-{i}", policy_for(i, config.num_sandwich_searchers),
            active_from=1 + (i % 5) * 2 * bpm, active_until=until,
            faulty_rate=config.searcher_faulty_rate,
            min_profit_wei=min_profit, attempt_rate=attempt,
            tip_mean=config.sealed_bid_tip_mean))
    for i in range(config.num_arbitrage_searchers):
        until = exodus + int((i % 3) * bpm) if i % 4 == 2 else None
        searchers.append(ArbitrageSearcher(
            f"arb-{i}", policy_for(i + 1, config.num_arbitrage_searchers),
            active_from=1 + (i % 5) * 2 * bpm, active_until=until,
            faulty_rate=config.searcher_faulty_rate,
            uses_flash_loans=(i / max(1, config.num_arbitrage_searchers)
                              < config.flash_loan_user_fraction),
            min_profit_wei=2 * min_profit, attempt_rate=attempt,
            tip_mean=config.sealed_bid_tip_mean))
    for i in range(config.num_liquidation_searchers):
        searchers.append(LiquidationSearcher(
            f"liq-{i}", policy_for(i + 2,
                                   config.num_liquidation_searchers),
            active_from=1 + (i % 3) * 2 * bpm,
            faulty_rate=config.searcher_faulty_rate,
            uses_flash_loans=(i / max(1,
                                      config.num_liquidation_searchers)
                              < 2 * config.flash_loan_user_fraction),
            min_profit_wei=min_profit, attempt_rate=attempt,
            tip_mean=config.sealed_bid_tip_mean))
    for i in range(config.num_other_users):
        start = launch + int((i % 8) * 0.6 * bpm)
        # A third of the "other" users churn out after the exodus, which
        # is what pulls Figure 3 back under 50 % in 2022.
        until = None
        if i % 2 == 0:
            until = exodus + int((i % 5) * 0.8 * bpm)
        searchers.append(OtherBundleUser(
            f"other-{i}", ChannelPolicy(flashbots_from=start),
            active_from=1, active_until=until,
            activity=0.016))

    for searcher in searchers:
        # Flash-loan users are thinly capitalized by design: the loan is
        # their capital (the democratization story flash loans enable).
        capital = (config.flash_user_capital_eth
                   if searcher.uses_flash_loans
                   else config.searcher_capital_eth)
        _fund_searcher(state, searcher, capital)
    return searchers


def _build_self_mev_searchers(config: ScenarioConfig,
                              state: WorldState, miners: MinerSet,
                              ) -> dict:
    """Miners extracting sandwich MEV privately for their own account
    (Section 6.3): each gets a dedicated extraction persona that scans
    the mempool whenever its miner builds a block, so every one of its
    sandwiches is mined by exactly that miner."""
    personas = {}
    for miner in miners.miners:
        if not miner.self_mev:
            continue
        searcher = SandwichSearcher(
            f"self-{miner.name}",
            ChannelPolicy(private_pool=f"self:{miner.name}",
                          private_from=1),
            active_from=1, visibility=0.8, max_targets_per_block=2,
            pick_random_targets=True,
            min_profit_wei=ether(config.searcher_min_profit_eth))
        _fund_searcher(state, searcher, config.searcher_capital_eth)
        personas[miner.address] = searcher
    return personas


def scenario_frame(config: ScenarioConfig):
    """The deterministic scaffolding every world for ``config`` shares:
    ``(calendar, forks, flashbots_launch_block)``.  Derived from the
    config alone — no RNG draws — so restored epoch workers and the
    splice step agree with the serial run by construction."""
    calendar = StudyCalendar(config.blocks_per_month, config.months)
    forks = ForkSchedule(
        berlin_block=calendar.first_block_of(config.berlin_month),
        london_block=calendar.first_block_of(config.london_month))
    launch = calendar.first_block_of(config.flashbots_launch_month)
    return calendar, forks, launch


def restore_paper_scenario(config: ScenarioConfig, seal: EpochSeal,
                           fast_paths: bool = True) -> World:
    """Rebuild a mid-window :class:`World` from an :class:`EpochSeal`.

    The carried-object graph is unpickled once and its components are
    passed through the :class:`World` constructor — so contract wiring
    (``_collect_contracts``) and the gas model attach to the *restored*
    state — then :meth:`World.restore_carry` adopts the remaining
    carried pieces (mempool, gossip/observer trace, fee state, ground
    truths) and positions the world at the seal's first block.  Running
    it reproduces the serial run's blocks from that boundary on,
    draw for draw.
    """
    carried = seal.carried()
    calendar, forks, launch = scenario_frame(config)
    world = World(
        config=config, calendar=calendar, forks=forks,
        state=carried["state"], registry=carried["registry"],
        oracle=carried["oracle"], universe=carried["universe"],
        lending_pools=carried["lending_pools"],
        flash_provider=carried["flash_provider"],
        miners=carried["miners"], relay=carried["relay"],
        private_pools=carried["private_pools"],
        traders=carried["traders"], borrowers=carried["borrowers"],
        keeper=carried["keeper"], searchers=carried["searchers"],
        flashbots_launch_block=launch,
        rng=random.Random(config.seed + 5),
        self_mev_searchers=carried["self_mev_searchers"],
        fast_paths=fast_paths)
    world.restore_carry(seal, carried)
    return world


@fast_path(toggle="fast_paths")
def build_paper_scenario(config: ScenarioConfig,
                         fast_paths: bool = True) -> World:
    """Assemble the full calibrated world for the study window.

    ``fast_paths=False`` builds the world on the naive reference paths
    (full mempool re-sorts, no scan memoization); its block-hash sequence
    is asserted identical to the optimized default by the bench gate.
    """
    rng = random.Random(config.seed)
    calendar, forks, launch = scenario_frame(config)
    state = WorldState()
    registry = _build_markets(config, state, rng)

    oracle = PriceOracle()
    universe = PriceUniverse(seed=config.seed)
    for token, price in INITIAL_PRICES.items():
        oracle.set_price(token, price)
        universe.add_token(token, price,
                           volatility=config.token_volatility)

    aave = LendingPool("AaveV2", oracle)
    compound = LendingPool("Compound", oracle)
    for pool in (aave, compound):
        pool.provision(state, "DAI", ether(50_000_000))
        pool.provision(state, "USDC", ether(50_000_000))
    flash = FlashLoanProvider("Aave")
    for token in (WETH, "DAI", "USDC"):
        flash.provision(state, token, ether(1_000_000))

    miners = _build_miners(config, calendar)

    directory = PrivatePoolDirectory()
    eden_members = [m.address for m in miners.miners[:6]]
    directory.add(PrivatePool("eden", eden_members))
    taichi_members = [m.address for m in miners.miners[2:8]]
    directory.add(PrivatePool(
        "taichi", taichi_members,
        shutdown_block=calendar.first_block_of(
            config.taichi_shutdown_month)))

    searchers = _build_searchers(config, calendar, state, rng)
    self_mev = _build_self_mev_searchers(config, state, miners)

    relay = Relay(max_bundles_per_searcher_per_block=5)
    for searcher in searchers:
        relay.register_searcher(searcher.address)
    for miner in miners.miners:
        if miner.flashbots_join_block is not None:
            relay.register_miner(miner.address)

    traders = TraderPopulation(random.Random(config.seed + 2),
                               accounts=config.num_traders)
    borrowers = BorrowerPopulation(random.Random(config.seed + 3),
                                   accounts=config.num_borrowers)
    keeper = OracleKeeper(
        random.Random(config.seed + 4), oracle, universe,
        update_interval_blocks=config.oracle_interval_blocks)

    return World(config=config, calendar=calendar, forks=forks,
                 state=state, registry=registry, oracle=oracle,
                 universe=universe, lending_pools=[aave, compound],
                 flash_provider=flash, miners=miners, relay=relay,
                 private_pools=directory, traders=traders,
                 borrowers=borrowers, keeper=keeper,
                 searchers=searchers,
                 flashbots_launch_block=launch,
                 rng=random.Random(config.seed + 5),
                 self_mev_searchers=self_mev,
                 fast_paths=fast_paths)
