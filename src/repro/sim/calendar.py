"""Maps simulated block heights onto the paper's calendar months.

The study window runs from May 2020 (block 10,000,000) to March 2022
(block 14,444,725).  The simulation compresses each calendar month into a
fixed number of blocks; all monthly aggregations (Figures 3–7) and the
timeline of real-world events (Flashbots launch, forks, observation
window) are expressed against this calendar.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

#: The paper's study months, in order.
STUDY_MONTHS: Tuple[str, ...] = tuple(
    f"{year}-{month:02d}"
    for year, months in (
        (2020, range(5, 13)),
        (2021, range(1, 13)),
        (2022, range(1, 4)),
    )
    for month in months
)

# Real-world event months used by the calibrated scenario.
FLASHBOTS_LAUNCH_MONTH = "2021-02"   # first FB block: Feb 11 2021
BERLIN_FORK_MONTH = "2021-04"        # Apr 15 2021
LONDON_FORK_MONTH = "2021-08"        # Aug 5 2021
SEARCHER_EXODUS_MONTH = "2021-09"    # usage dip (paper Section 4.5)
TAICHI_SHUTDOWN_MONTH = "2021-10"    # Oct 15 2021
OBSERVATION_START_MONTH = "2021-11"  # pending-tx collection start (§3.2)
OBSERVATION_END_MONTH = "2022-03"    # study end


@dataclass(frozen=True)
class StudyCalendar:
    """Block ↔ month arithmetic for a compressed study window.

    Blocks are numbered 1..N; month ``i`` covers blocks
    ``[i*bpm + 1, (i+1)*bpm]``.
    """

    blocks_per_month: int
    months: Tuple[str, ...] = STUDY_MONTHS

    def __post_init__(self) -> None:
        if self.blocks_per_month <= 0:
            raise ValueError("blocks_per_month must be positive")
        if not self.months:
            raise ValueError("calendar needs at least one month")

    @property
    def total_blocks(self) -> int:
        return self.blocks_per_month * len(self.months)

    def month_index(self, block_number: int) -> int:
        """0-based month index of a block; raises outside the window."""
        if not 1 <= block_number <= self.total_blocks:
            raise ValueError(f"block {block_number} outside study window")
        return (block_number - 1) // self.blocks_per_month

    def month_of(self, block_number: int) -> str:
        return self.months[self.month_index(block_number)]

    def month_bounds(self, month: str) -> Tuple[int, int]:
        """(first_block, last_block) of a month, inclusive."""
        index = self.index_of(month)
        first = index * self.blocks_per_month + 1
        return first, first + self.blocks_per_month - 1

    def index_of(self, month: str) -> int:
        try:
            return self.months.index(month)
        except ValueError:
            raise ValueError(f"{month!r} is not in the study window")

    def first_block_of(self, month: str) -> int:
        return self.month_bounds(month)[0]

    def blocks_in(self, month: str) -> range:
        first, last = self.month_bounds(month)
        return range(first, last + 1)

    def day_of(self, block_number: int, days_per_month: int = 30) -> int:
        """Synthetic day index for daily series (Figure 6)."""
        month = self.month_index(block_number)
        offset = (block_number - 1) % self.blocks_per_month
        day_in_month = offset * days_per_month // self.blocks_per_month
        return month * days_per_month + day_in_month

    def months_up_to(self, block_number: int) -> List[str]:
        return list(self.months[:self.month_index(block_number) + 1])

    # Epoch arithmetic --------------------------------------------------------
    #
    # Epochs are fixed-width windows of ``epoch_blocks`` blocks, anchored
    # at block 1 like months are.  With ``epoch_blocks == blocks_per_month``
    # every epoch boundary is a month edge; smaller widths subdivide
    # months for finer-grained sharding.

    def epoch_of(self, block_number: int, epoch_blocks: int) -> int:
        """0-based epoch index of a block; raises outside the window."""
        if epoch_blocks <= 0:
            raise ValueError("epoch_blocks must be positive")
        if not 1 <= block_number <= self.total_blocks:
            raise ValueError(f"block {block_number} outside study window")
        return (block_number - 1) // epoch_blocks

    def epoch_count(self, epoch_blocks: int) -> int:
        """Number of epochs covering the window (last may be short)."""
        if epoch_blocks <= 0:
            raise ValueError("epoch_blocks must be positive")
        return -(-self.total_blocks // epoch_blocks)

    def epoch_bounds(self, epoch_index: int,
                     epoch_blocks: int) -> Tuple[int, int]:
        """(first_block, last_block) of an epoch, clipped to the window."""
        count = self.epoch_count(epoch_blocks)
        if not 0 <= epoch_index < count:
            raise ValueError(
                f"epoch {epoch_index} outside window (0..{count - 1})")
        first = epoch_index * epoch_blocks + 1
        last = min(first + epoch_blocks - 1, self.total_blocks)
        return first, last
