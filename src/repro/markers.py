"""Declarative markers the static analyzers cross-check.

:func:`fast_path` registers an optimized code path together with the
retained naive implementation it must stay bit-identical to.  The
decorator is deliberately inert at runtime — it only stamps metadata on
the function — because the *enforcement* lives in ``repro.lint.flow``
(rule R102), which reads the marker straight off the AST and verifies,
without importing anything:

* the named ``reference`` implementation still exists in the same
  module (the reference is load-bearing: equivalence tests and the
  bench identity gates replay it);
* the decorated function actually consults its ``toggle``, so building
  the world with ``fast_paths=False`` (or ``incremental=False`` /
  ``indexed=False``) really does route through the reference;
* some test exercises the pair against each other;
* no production call site invokes the reference directly, bypassing
  the toggle dispatch.

This module sits at the very bottom of the layer diagram (it imports
nothing from ``repro``) so every layer may use the marker without
violating R003.
"""

from __future__ import annotations

from typing import Callable, Optional, TypeVar

F = TypeVar("F", bound=Callable)

#: Attribute the decorator stamps; tooling and tests may introspect it.
FAST_PATH_ATTR = "__fast_path__"


def fast_path(reference: Optional[str] = None, *,
              toggle: str,
              tested_by: Optional[str] = None) -> Callable[[F], F]:
    """Mark a function as an optimized path with a retained reference.

    ``reference`` names the naive implementation in the *same module*
    (``None`` for inline pairs where the toggle selects the reference
    behaviour inside the function body, e.g. ``memo={} if fast_paths
    else None``).  ``toggle`` names the attribute or parameter the
    dispatch consults (``fast_paths``, ``incremental``, ``indexed``,
    ``memo`` …).  ``tested_by`` optionally pins the equivalence test
    file; when omitted, R102 searches the test tree for one.
    """

    def mark(func: F) -> F:
        setattr(func, FAST_PATH_ATTR, {
            "reference": reference,
            "toggle": toggle,
            "tested_by": tested_by,
        })
        return func

    return mark
