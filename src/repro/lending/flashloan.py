"""Flash-loan provider (Aave/dYdX-style).

A flash loan lends any amount with zero collateral because repayment is
enforced *within the same transaction*: the wrapper intent lends, runs the
inner intent, then collects principal plus fee — and if anything fails,
the transaction's revert semantics undo the lending itself.  The
``FlashLoanEvent`` is only emitted on successful repayment, which is the
exact anchor Wang et al.'s detection (and ours) keys on.

Structurally, a flash loan spans one transaction, which is why the paper's
Table 1 shows zero flash-loan sandwiches: a sandwich needs two separate
transactions around a victim, so neither leg can hold a flash loan across
the victim's execution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.chain.events import FlashLoanEvent
from repro.chain.execution import ExecutionContext, ExecutionOutcome, Revert
from repro.chain.gas import GAS_FLASH_LOAN_OVERHEAD
from repro.chain.state import InsufficientBalance, WorldState
from repro.chain.transaction import TxIntent
from repro.chain.types import Address, address_from_label

#: Aave V1's flash-loan fee: 9 bps.
DEFAULT_FLASH_FEE_BPS = 9
BPS = 10_000


class FlashLoanProvider:
    """A pool of flash-lendable liquidity."""

    def __init__(self, platform: str,
                 fee_bps: int = DEFAULT_FLASH_FEE_BPS) -> None:
        if not 0 <= fee_bps < BPS:
            raise ValueError("fee out of range")
        self.platform = platform
        self.fee_bps = fee_bps
        self.address: Address = address_from_label(f"flash:{platform}")

    def provision(self, state: WorldState, token: str, amount: int) -> None:
        """Seed lendable liquidity."""
        state.mint_token(token, self.address, amount)

    def available(self, state: WorldState, token: str) -> int:
        return state.token_balance(token, self.address)

    def fee_for(self, amount: int) -> int:
        return amount * self.fee_bps // BPS


@dataclass
class FlashLoanIntent(TxIntent):
    """Borrow, run an inner intent, repay with fee — atomically.

    The borrower ends the transaction having paid only the fee (plus gas),
    no matter how large the principal: exactly the capital amplifier MEV
    extractors use for arbitrage and liquidations (paper Section 2.3).
    """

    provider_address: Address
    token: str
    amount: int
    inner: Optional[TxIntent] = None

    def gas_estimate(self) -> int:
        inner_gas = self.inner.gas_estimate() if self.inner else 0
        return GAS_FLASH_LOAN_OVERHEAD + inner_gas

    def execute(self, ctx: ExecutionContext) -> ExecutionOutcome:
        if self.amount <= 0:
            raise Revert("flash loan amount must be positive")
        provider = ctx.contract(self.provider_address)
        borrower = ctx.tx.sender
        try:
            ctx.state.transfer_token(self.token, provider.address,
                                     borrower, self.amount)
        except InsufficientBalance:
            raise Revert("flash loan liquidity exhausted")
        inner_result = None
        if self.inner is not None:
            inner_result = self.inner.execute(ctx)
        fee = provider.fee_for(self.amount)
        try:
            ctx.state.transfer_token(self.token, borrower,
                                     provider.address, self.amount + fee)
        except InsufficientBalance:
            raise Revert("flash loan not repaid")
        ctx.emit(FlashLoanEvent(address=provider.address,
                                platform=provider.platform,
                                initiator=borrower, token=self.token,
                                amount=self.amount, fee=fee))
        return ExecutionOutcome(success=True,
                                gas_used=self.gas_estimate(),
                                return_data=inner_result)
