"""Auction-based liquidations (the paper's *other* mechanism, §2.2.2).

Fixed-spread liquidations settle in one transaction and are therefore a
first-come-first-served MEV race.  Auction-based liquidations
(MakerDAO-style) are the contrast case the paper draws: an interested
liquidator *opens* an auction on an unhealthy loan, rival bids arrive
over several blocks, and whoever holds the highest bid when the auction
expires settles it and takes the collateral.

Because the process spans multiple transactions and blocks, there is no
single transaction to frontrun a profit out of — which is exactly why
the paper notes that "due to their atomicity, fixed spread-based
liquidations are a prime target for MEV extraction" and auctions are
not.  The test suite verifies that settlements never surface in the MEV
dataset.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.chain.events import (
    AuctionBidEvent,
    AuctionSettledEvent,
    AuctionStartedEvent,
)
from repro.chain.execution import ExecutionContext, ExecutionOutcome, \
    Revert
from repro.chain.transaction import TxIntent
from repro.chain.types import Address, address_from_label
from repro.lending.pool import LendingPool, Loan


@dataclass
class Auction:
    """One open collateral auction."""

    auction_id: int
    loan: Loan
    debt_amount: int            # reserve price: the debt to cover
    ends_at_block: int
    highest_bid: int = 0
    highest_bidder: Optional[Address] = None
    settled: bool = False

    def is_open(self, block_number: int) -> bool:
        return not self.settled and block_number < self.ends_at_block


class AuctionHouse:
    """Auction-based liquidation venue bound to a lending pool."""

    _ids = itertools.count(1)

    def __init__(self, pool: LendingPool,
                 duration_blocks: int = 20,
                 min_increment_bps: int = 300) -> None:
        if duration_blocks <= 0:
            raise ValueError("duration must be positive")
        self.pool = pool
        self.platform = f"{pool.platform}-auctions"
        self.address: Address = address_from_label(
            f"auction-house:{pool.platform}")
        self.duration_blocks = duration_blocks
        self.min_increment_bps = min_increment_bps
        self.auctions: Dict[int, Auction] = {}

    def open_auctions(self, block_number: int) -> List[Auction]:
        return [a for a in self.auctions.values()
                if a.is_open(block_number)]

    # State transitions (called from intents) ------------------------------

    def start(self, ctx: ExecutionContext, loan_id: int) -> Auction:
        loan = self.pool.loans.get(loan_id)
        if loan is None or loan.is_closed:
            raise Revert("unknown or closed loan")
        if not self.pool.is_liquidatable(loan):
            raise Revert("loan is healthy")
        if any(a.loan.loan_id == loan_id and not a.settled
               for a in self.auctions.values()):
            raise Revert("auction already running for this loan")
        auction = Auction(auction_id=next(self._ids), loan=loan,
                          debt_amount=loan.debt_amount,
                          ends_at_block=ctx.block_number
                          + self.duration_blocks)
        self.auctions[auction.auction_id] = auction
        ctx.state.record_undo(
            lambda: self.auctions.pop(auction.auction_id, None))
        ctx.emit(AuctionStartedEvent(
            address=self.address, platform=self.platform,
            auction_id=auction.auction_id, borrower=loan.borrower,
            collateral_token=loan.collateral_token,
            collateral_amount=loan.collateral_amount,
            debt_token=loan.debt_token, debt_amount=loan.debt_amount,
            ends_at_block=auction.ends_at_block))
        return auction

    def bid(self, ctx: ExecutionContext, auction_id: int,
            amount: int) -> None:
        """Escrow a bid in the loan's debt token; refunds the previous
        leader."""
        auction = self.auctions.get(auction_id)
        if auction is None or not auction.is_open(ctx.block_number):
            raise Revert("auction is not open")
        floor = max(auction.debt_amount,
                    auction.highest_bid
                    * (10_000 + self.min_increment_bps) // 10_000)
        if amount < floor:
            raise Revert("bid below the minimum increment")
        bidder = ctx.tx.sender
        ctx.state.transfer_token(auction.loan.debt_token, bidder,
                                 self.address, amount)
        previous_bid = auction.highest_bid
        previous_bidder = auction.highest_bidder
        if previous_bidder is not None:
            ctx.state.transfer_token(auction.loan.debt_token,
                                     self.address, previous_bidder,
                                     previous_bid)
        auction.highest_bid = amount
        auction.highest_bidder = bidder

        def undo() -> None:
            auction.highest_bid = previous_bid
            auction.highest_bidder = previous_bidder

        ctx.state.record_undo(undo)
        ctx.emit(AuctionBidEvent(address=self.address,
                                 platform=self.platform,
                                 auction_id=auction_id, bidder=bidder,
                                 amount=amount))

    def settle(self, ctx: ExecutionContext, auction_id: int) -> int:
        """Close an expired auction: repay the pool, hand over
        collateral; returns the collateral amount."""
        auction = self.auctions.get(auction_id)
        if auction is None or auction.settled:
            raise Revert("unknown or settled auction")
        if ctx.block_number < auction.ends_at_block:
            raise Revert("auction still running")
        if auction.highest_bidder is None:
            raise Revert("no bids to settle")
        loan = auction.loan
        collateral = loan.collateral_amount
        # The escrowed winning bid repays the pool's debt position.
        ctx.state.transfer_token(loan.debt_token, self.address,
                                 self.pool.address,
                                 auction.highest_bid)
        ctx.state.transfer_token(loan.collateral_token,
                                 self.pool.address,
                                 auction.highest_bidder, collateral)
        prior_debt = loan.debt_amount
        prior_collateral = loan.collateral_amount
        loan.debt_amount = 0
        loan.collateral_amount = 0
        auction.settled = True

        def undo() -> None:
            loan.debt_amount = prior_debt
            loan.collateral_amount = prior_collateral
            auction.settled = False

        ctx.state.record_undo(undo)
        ctx.emit(AuctionSettledEvent(
            address=self.address, platform=self.platform,
            auction_id=auction_id, winner=auction.highest_bidder,
            paid=auction.highest_bid,
            collateral_token=loan.collateral_token,
            collateral_amount=collateral))
        return collateral


@dataclass
class StartAuctionIntent(TxIntent):
    """Open an auction on an unhealthy loan."""

    house_address: Address
    loan_id: int
    base_gas: int = 180_000

    def execute(self, ctx: ExecutionContext) -> ExecutionOutcome:
        house = ctx.contract(self.house_address)
        auction = house.start(ctx, self.loan_id)
        return ExecutionOutcome(success=True, gas_used=self.base_gas,
                                return_data=auction.auction_id)


@dataclass
class BidIntent(TxIntent):
    """Place (and escrow) a bid in an open auction."""

    house_address: Address
    auction_id: int
    amount: int
    base_gas: int = 120_000

    def execute(self, ctx: ExecutionContext) -> ExecutionOutcome:
        house = ctx.contract(self.house_address)
        house.bid(ctx, self.auction_id, self.amount)
        return ExecutionOutcome(success=True, gas_used=self.base_gas)


@dataclass
class SettleAuctionIntent(TxIntent):
    """Settle an expired auction."""

    house_address: Address
    auction_id: int
    base_gas: int = 200_000

    def execute(self, ctx: ExecutionContext) -> ExecutionOutcome:
        house = ctx.contract(self.house_address)
        seized = house.settle(ctx, self.auction_id)
        return ExecutionOutcome(success=True, gas_used=self.base_gas,
                                return_data=seized)
