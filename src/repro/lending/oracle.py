"""On-chain price oracle with update history.

Prices are expressed in wei of (W)ETH per 10^18 smallest units of the
token, so ``value_in_eth`` stays in pure integer arithmetic.  The oracle
plays two roles from the paper:

* lending pools read it to decide loan health (Definition 3), and
* an oracle *update* is itself a transaction — the event that can flip a
  loan to unhealthy, which proactive liquidation searchers backrun.

The update history doubles as the reproduction's stand-in for the paper's
CoinGecko price lookups: analysis values token amounts in ETH at the price
prevailing in the block being analyzed.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.chain.events import OracleUpdateEvent
from repro.chain.execution import ExecutionContext, ExecutionOutcome, Revert
from repro.chain.gas import GAS_ORACLE_UPDATE
from repro.chain.transaction import TxIntent
from repro.chain.types import ETHER, Address, address_from_label

PRICE_SCALE = ETHER  # prices are per 10^18 raw token units


class PriceOracle:
    """Token → ETH price feed with full update history."""

    def __init__(self, name: str = "oracle") -> None:
        self.name = name
        self.address: Address = address_from_label(f"oracle:{name}")
        self._prices: Dict[str, int] = {"WETH": PRICE_SCALE}
        self._history: Dict[str, List[Tuple[int, int]]] = {
            "WETH": [(0, PRICE_SCALE)]}
        #: Monotonic change counter: bumped on every price write,
        #: including journal-undo rewrites.  Derived caches keyed on it
        #: can never serve stale data — a rolled-back price still moves
        #: the version forward, forcing a recompute.
        self.version = 0

    def set_price(self, token: str, price_wei: int,
                  block_number: int = 0) -> None:
        """Install a price (scenario setup or oracle-update intents)."""
        if price_wei <= 0:
            raise ValueError("price must be positive")
        self.version += 1
        self._prices[token] = price_wei
        self._history.setdefault(token, []).append((block_number,
                                                    price_wei))

    def price(self, token: str) -> int:
        """Current price in wei per 10^18 raw units; raises if unknown."""
        try:
            return self._prices[token]
        except KeyError:
            raise KeyError(f"oracle has no price for {token}")

    def has_price(self, token: str) -> bool:
        return token in self._prices

    def price_at(self, token: str, block_number: int) -> Optional[int]:
        """Price in force at ``block_number`` (last update ≤ block)."""
        history = self._history.get(token)
        if not history:
            return None
        blocks = [entry[0] for entry in history]
        index = bisect.bisect_right(blocks, block_number) - 1
        if index < 0:
            return None
        return history[index][1]

    def value_in_eth(self, token: str, amount: int) -> int:
        """Wei value of ``amount`` raw units of ``token`` at current price."""
        return amount * self.price(token) // PRICE_SCALE

    def value_in_eth_at(self, token: str, amount: int,
                        block_number: int) -> Optional[int]:
        price = self.price_at(token, block_number)
        if price is None:
            return None
        return amount * price // PRICE_SCALE


@dataclass
class OracleUpdateIntent(TxIntent):
    """A price-feed update transaction (the backrunnable trigger)."""

    oracle_address: Address
    token: str
    price_wei: int
    base_gas: int = GAS_ORACLE_UPDATE

    def execute(self, ctx: ExecutionContext) -> ExecutionOutcome:
        oracle = ctx.contract(self.oracle_address)
        if self.price_wei <= 0:
            raise Revert("invalid oracle price")
        prior = oracle._prices.get(self.token)
        oracle.set_price(self.token, self.price_wei, ctx.block_number)

        def undo() -> None:
            history = oracle._history.get(self.token)
            if history and history[-1] == (ctx.block_number,
                                           self.price_wei):
                history.pop()
            oracle.version += 1
            if prior is None:
                oracle._prices.pop(self.token, None)
            else:
                oracle._prices[self.token] = prior

        ctx.state.record_undo(undo)
        ctx.emit(OracleUpdateEvent(address=oracle.address,
                                   token=self.token,
                                   price_wei=self.price_wei))
        return ExecutionOutcome(success=True, gas_used=self.base_gas)
