"""Collateralized lending pools with fixed-spread liquidations.

Models the Aave/Compound mechanics the paper's liquidation heuristics
depend on: over-collateralized loans whose health follows an oracle price,
a close factor limiting how much debt one liquidation may repay, and a
fixed liquidation spread (bonus) that makes liquidations profitable and
therefore a first-come-first-served MEV race (Definition 3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.chain.events import BorrowEvent, LiquidationEvent
from repro.chain.execution import ExecutionContext, ExecutionOutcome, Revert
from repro.chain.gas import GAS_LIQUIDATION, GAS_TOKEN_TRANSFER
from repro.chain.state import WorldState
from repro.chain.transaction import TxIntent
from repro.chain.types import Address, address_from_label
from repro.lending.oracle import PRICE_SCALE, PriceOracle

#: Fraction of the debt a single liquidation may repay (Aave-style 50 %).
DEFAULT_CLOSE_FACTOR_BPS = 5_000
#: Liquidation bonus: collateral seized is worth repay × (1 + 8 %).
DEFAULT_BONUS_BPS = 800
#: A loan is liquidatable when collateral×threshold < debt (82.5 %).
DEFAULT_LIQUIDATION_THRESHOLD_BPS = 8_250
BPS = 10_000


@dataclass
class Loan:
    """One open collateralized debt position."""

    loan_id: int
    borrower: Address
    collateral_token: str
    collateral_amount: int
    debt_token: str
    debt_amount: int

    @property
    def is_closed(self) -> bool:
        return self.debt_amount <= 0 or self.collateral_amount <= 0


class LendingPool:
    """An Aave/Compound-style lending platform."""

    def __init__(self, platform: str, oracle: PriceOracle,
                 close_factor_bps: int = DEFAULT_CLOSE_FACTOR_BPS,
                 bonus_bps: int = DEFAULT_BONUS_BPS,
                 liquidation_threshold_bps: int =
                 DEFAULT_LIQUIDATION_THRESHOLD_BPS) -> None:
        if not 0 < close_factor_bps <= BPS:
            raise ValueError("close factor out of range")
        if not 0 <= bonus_bps < BPS:
            raise ValueError("bonus out of range")
        if not 0 < liquidation_threshold_bps <= BPS:
            raise ValueError("liquidation threshold out of range")
        self.platform = platform
        self.oracle = oracle
        self.address: Address = address_from_label(f"lending:{platform}")
        self.close_factor_bps = close_factor_bps
        self.bonus_bps = bonus_bps
        self.liquidation_threshold_bps = liquidation_threshold_bps
        self.loans: Dict[int, Loan] = {}
        #: Per-pool loan-id counter.  A plain instance int (not a class
        #: itertools.count) so ids are a function of this pool's history
        #: alone: independent of other pools, of earlier runs in the
        #: same process, and carried inside epoch seals so a resumed
        #: run numbers its next loan exactly as the original would.
        self._next_loan_id = 1
        #: Monotonic loan-book change counter (bumped on every loan
        #: mutation, including journal undos — see PriceOracle.version).
        self.book_version = 0
        self._liquidatable_cache: Dict[tuple, List[Loan]] = {}
        self._open_count_cache: Optional[Tuple[int, int]] = None

    # Setup ------------------------------------------------------------------

    def provision(self, state: WorldState, token: str, amount: int) -> None:
        """Seed the pool with lendable liquidity (depositor capital)."""
        state.mint_token(token, self.address, amount)

    # Loan health ---------------------------------------------------------

    def health_factor(self, loan: Loan) -> float:
        """>1 healthy, <1 liquidatable (Aave's definition)."""
        debt_value = self.oracle.value_in_eth(loan.debt_token,
                                              loan.debt_amount)
        if debt_value == 0:
            return float("inf")
        collateral_value = self.oracle.value_in_eth(
            loan.collateral_token, loan.collateral_amount)
        return (collateral_value * self.liquidation_threshold_bps
                / BPS / debt_value)

    def is_liquidatable(self, loan: Loan) -> bool:
        return not loan.is_closed and self.health_factor(loan) < 1.0

    def liquidatable_loans(self) -> List[Loan]:
        """Open, unhealthy loans — what passive searchers scan for.

        Loan health changes only when a price or a loan mutates, and
        both bump a monotonic version, so the scan result is cached per
        (oracle version, book version) — exact, never stale.  A fresh
        list is returned so callers can't alias the cache entry.
        """
        key = (self.oracle.version, self.book_version)
        cached = self._liquidatable_cache.get(key)
        if cached is None:
            cached = [loan for loan in self.loans.values()
                      if self.is_liquidatable(loan)]
            self._liquidatable_cache.clear()
            self._liquidatable_cache[key] = cached
        return list(cached)

    def open_loans(self) -> List[Loan]:
        return [loan for loan in self.loans.values() if not loan.is_closed]

    def open_loan_count(self) -> int:
        """Number of open loans, cached per book version (loan closure
        only ever happens through version-bumping mutations)."""
        cached = self._open_count_cache
        if cached is None or cached[0] != self.book_version:
            cached = (self.book_version,
                      sum(1 for loan in self.loans.values()
                          if not loan.is_closed))
            self._open_count_cache = cached
        return cached[1]

    def max_repay(self, loan: Loan) -> int:
        """Largest debt repayment one liquidation may make (close factor)."""
        return loan.debt_amount * self.close_factor_bps // BPS

    def seizable_collateral(self, loan: Loan, repay_amount: int) -> int:
        """Collateral received for repaying ``repay_amount`` of debt."""
        repay_value = self.oracle.value_in_eth(loan.debt_token,
                                               repay_amount)
        bonus_value = repay_value * (BPS + self.bonus_bps) // BPS
        collateral_price = self.oracle.price(loan.collateral_token)
        seized = bonus_value * PRICE_SCALE // collateral_price
        return min(seized, loan.collateral_amount)

    # State transitions ----------------------------------------------------

    def open_loan(self, ctx: ExecutionContext, collateral_token: str,
                  collateral_amount: int, debt_token: str,
                  debt_amount: int) -> Loan:
        """Deposit collateral and draw debt inside a transaction."""
        if collateral_amount <= 0 or debt_amount <= 0:
            raise Revert("loan amounts must be positive")
        borrower = ctx.tx.sender
        ctx.state.transfer_token(collateral_token, borrower, self.address,
                                 collateral_amount)
        ctx.state.transfer_token(debt_token, self.address, borrower,
                                 debt_amount)
        loan_id = self._next_loan_id
        self._next_loan_id += 1
        loan = Loan(loan_id=loan_id, borrower=borrower,
                    collateral_token=collateral_token,
                    collateral_amount=collateral_amount,
                    debt_token=debt_token, debt_amount=debt_amount)
        if self.health_factor(loan) < 1.0:
            raise Revert("loan would be undercollateralized at inception")
        self.loans[loan.loan_id] = loan
        self.book_version += 1

        def undo_open() -> None:
            self.book_version += 1
            self.loans.pop(loan.loan_id, None)

        ctx.state.record_undo(undo_open)
        ctx.emit(BorrowEvent(address=self.address, platform=self.platform,
                             borrower=borrower, debt_token=debt_token,
                             amount=debt_amount,
                             collateral_token=collateral_token,
                             collateral_amount=collateral_amount))
        return loan

    def liquidate(self, ctx: ExecutionContext, loan_id: int,
                  repay_amount: int) -> int:
        """Fixed-spread liquidation; returns collateral seized.

        Reverts when the loan is healthy (the fate of a liquidator who got
        frontrun: the winner's repayment restores health first).
        """
        loan = self.loans.get(loan_id)
        if loan is None or loan.is_closed:
            raise Revert("unknown or closed loan")
        if not self.is_liquidatable(loan):
            raise Revert("loan is healthy")
        if repay_amount <= 0:
            raise Revert("repay amount must be positive")
        repay_amount = min(repay_amount, self.max_repay(loan))
        seized = self.seizable_collateral(loan, repay_amount)
        if seized <= 0:
            raise Revert("nothing to seize")
        liquidator = ctx.tx.sender
        ctx.state.transfer_token(loan.debt_token, liquidator, self.address,
                                 repay_amount)
        ctx.state.transfer_token(loan.collateral_token, self.address,
                                 liquidator, seized)
        prior_debt = loan.debt_amount
        prior_collateral = loan.collateral_amount
        loan.debt_amount -= repay_amount
        loan.collateral_amount -= seized
        self.book_version += 1

        def undo() -> None:
            self.book_version += 1
            loan.debt_amount = prior_debt
            loan.collateral_amount = prior_collateral

        ctx.state.record_undo(undo)
        ctx.emit(LiquidationEvent(address=self.address,
                                  platform=self.platform,
                                  liquidator=liquidator,
                                  borrower=loan.borrower,
                                  debt_token=loan.debt_token,
                                  debt_repaid=repay_amount,
                                  collateral_token=loan.collateral_token,
                                  collateral_seized=seized))
        return seized


@dataclass
class BorrowIntent(TxIntent):
    """Open a collateralized loan on a lending pool."""

    pool_address: Address
    collateral_token: str
    collateral_amount: int
    debt_token: str
    debt_amount: int
    base_gas: int = 2 * GAS_TOKEN_TRANSFER

    def execute(self, ctx: ExecutionContext) -> ExecutionOutcome:
        pool = ctx.contract(self.pool_address)
        loan = pool.open_loan(ctx, self.collateral_token,
                              self.collateral_amount, self.debt_token,
                              self.debt_amount)
        return ExecutionOutcome(success=True, gas_used=self.base_gas,
                                return_data=loan.loan_id)


@dataclass
class LiquidationIntent(TxIntent):
    """Liquidate an unhealthy loan (the MEV transaction itself)."""

    pool_address: Address
    loan_id: int
    repay_amount: int
    coinbase_tip: int = 0
    base_gas: int = GAS_LIQUIDATION

    def execute(self, ctx: ExecutionContext) -> ExecutionOutcome:
        pool = ctx.contract(self.pool_address)
        seized = pool.liquidate(ctx, self.loan_id, self.repay_amount)
        if self.coinbase_tip:
            ctx.pay_coinbase(self.coinbase_tip)
        return ExecutionOutcome(success=True, gas_used=self.base_gas,
                                return_data=seized)
