"""Lending substrate: oracle, collateralized loans, flash loans,
auction-based liquidations."""

from repro.lending.auction import (
    Auction,
    AuctionHouse,
    BidIntent,
    SettleAuctionIntent,
    StartAuctionIntent,
)
from repro.lending.flashloan import (
    DEFAULT_FLASH_FEE_BPS,
    FlashLoanIntent,
    FlashLoanProvider,
)
from repro.lending.oracle import (
    PRICE_SCALE,
    OracleUpdateIntent,
    PriceOracle,
)
from repro.lending.pool import (
    BorrowIntent,
    DEFAULT_BONUS_BPS,
    DEFAULT_CLOSE_FACTOR_BPS,
    DEFAULT_LIQUIDATION_THRESHOLD_BPS,
    LendingPool,
    LiquidationIntent,
    Loan,
)

__all__ = [
    "Auction", "AuctionHouse", "BidIntent", "SettleAuctionIntent",
    "StartAuctionIntent",
    "BorrowIntent", "DEFAULT_BONUS_BPS", "DEFAULT_CLOSE_FACTOR_BPS",
    "DEFAULT_FLASH_FEE_BPS", "DEFAULT_LIQUIDATION_THRESHOLD_BPS",
    "FlashLoanIntent", "FlashLoanProvider", "LendingPool",
    "LiquidationIntent", "Loan", "OracleUpdateIntent", "PRICE_SCALE",
    "PriceOracle",
]
