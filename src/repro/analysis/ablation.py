"""Ablations for the paper's discussion section.

Section 8.3 argues against randomized transaction ordering as an MEV
defense: even after a uniform shuffle, a sandwich's three transactions
land in attack order with meaningful probability, single-transaction
front/backruns survive with ~50 %, and an attacker can raise its odds
simply by submitting more copies ("throwing darts").  These functions
measure that survival probability by Monte-Carlo shuffling real
(simulated) blocks and detected sandwiches.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.chain.node import ArchiveNode
from repro.core.datasets import MevDataset


@dataclass
class RandomOrderingReport:
    """Monte-Carlo survival rates under uniform in-block shuffling."""

    sandwiches_tested: int
    shuffles_per_block: int
    #: empirical P(front < victim < back) after a shuffle
    sandwich_survival: float
    #: the paper's independence back-of-envelope (½ × ½)
    paper_estimate: float
    #: exact combinatorial value for three marked transactions (1/3!)
    exact_three_tx: float
    #: empirical P(backrun after victim) — single-tx MEV survival
    backrun_survival: float
    #: survival when the attacker submits ``dart_copies`` copies of each
    #: leg (the paper's "throwing darts" escalation)
    dart_copies: int
    dart_survival: float


def _shuffle_survival(order: Sequence[int], front: int, victim: int,
                      back: int, rng: random.Random,
                      shuffles: int) -> tuple:
    """(sandwich survivals, backrun survivals) over ``shuffles``."""
    indexes = list(order)
    sandwich_hits = 0
    backrun_hits = 0
    for _ in range(shuffles):
        rng.shuffle(indexes)
        position = {tx: i for i, tx in enumerate(indexes)}
        if position[front] < position[victim] < position[back]:
            sandwich_hits += 1
        if position[victim] < position[back]:
            backrun_hits += 1
    return sandwich_hits, backrun_hits


def _dart_survival(block_size: int, copies: int, rng: random.Random,
                   shuffles: int) -> float:
    """Survival when ``copies`` of each sandwich leg ride the block:
    success iff any front copy precedes the victim and any back copy
    follows it."""
    population = list(range(block_size + 2 * copies - 2))
    victim = -1
    fronts = [f"f{i}" for i in range(copies)]
    backs = [f"b{i}" for i in range(copies)]
    items = population + [victim] + fronts + backs
    hits = 0
    for _ in range(shuffles):
        rng.shuffle(items)
        position = {item: i for i, item in enumerate(items)}
        victim_at = position[victim]
        if any(position[f] < victim_at for f in fronts) and \
                any(position[b] > victim_at for b in backs):
            hits += 1
    return hits / shuffles


def random_ordering_ablation(node: ArchiveNode, dataset: MevDataset,
                             seed: int = 1, shuffles: int = 200,
                             max_sandwiches: int = 100,
                             dart_copies: int = 4,
                             ) -> Optional[RandomOrderingReport]:
    """Shuffle the blocks of detected sandwiches and measure survival.

    Returns None when the dataset contains no sandwiches whose block can
    be resolved.
    """
    rng = random.Random(seed)
    sandwich_hits = 0
    backrun_hits = 0
    tested = 0
    block_sizes: List[int] = []
    for record in dataset.sandwiches[:max_sandwiches]:
        block = node.get_block(record.block_number)
        if block is None:
            continue
        hashes = [tx.hash for tx in block.transactions]
        try:
            front = hashes.index(record.front_tx)
            victim = hashes.index(record.victim_tx)
            back = hashes.index(record.back_tx)
        except ValueError:
            continue
        s_hits, b_hits = _shuffle_survival(range(len(hashes)), front,
                                           victim, back, rng, shuffles)
        sandwich_hits += s_hits
        backrun_hits += b_hits
        tested += 1
        block_sizes.append(len(hashes))
    if tested == 0:
        return None
    total = tested * shuffles
    typical_block = max(3, sorted(block_sizes)[len(block_sizes) // 2])
    dart = _dart_survival(typical_block, dart_copies, rng,
                          shuffles * 10)
    return RandomOrderingReport(
        sandwiches_tested=tested, shuffles_per_block=shuffles,
        sandwich_survival=sandwich_hits / total,
        paper_estimate=0.25, exact_three_tx=1.0 / 6.0,
        backrun_survival=backrun_hits / total,
        dart_copies=dart_copies, dart_survival=dart)
