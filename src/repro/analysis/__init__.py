"""Analysis layer: tables, figure series, goal audits, rendering."""

from repro.analysis.ablation import (
    RandomOrderingReport,
    random_ordering_ablation,
)
from repro.analysis.figures import (
    BundleStats,
    Fig6Point,
    Fig7Series,
    Fig8Stats,
    Fig9Distribution,
    ProfitStats,
    bundle_stats,
    fig3_flashbots_block_ratio,
    fig4_hashrate_share,
    fig5_miner_distribution,
    fig6_gas_and_sandwiches,
    fig7_mev_types,
    fig8_profit_distribution,
    fig9_private_distribution,
    monthly_average_gas_gwei,
)
from repro.analysis.goals import (
    DemocratizationReport,
    NegativeProfitReport,
    ProfitDistributionReport,
    democratization,
    negative_profits,
    profit_distribution,
)
from repro.analysis.report import percent, render_kv, render_quality, \
    render_series, render_table
from repro.analysis.sensitivity import (
    ObservationSweepPoint,
    TipSweepPoint,
    observation_rate_sweep,
    tip_fraction_sweep,
)
from repro.analysis.stats import (
    estimate_hashrate_share,
    infer_miner_accounts,
    mean_median_std,
    monthly_block_miners,
    monthly_flashbots_miners,
    pearson_correlation,
    profits_eth,
)
from repro.analysis.tables import Table1Row, build_table1

__all__ = [
    "BundleStats", "DemocratizationReport", "Fig6Point", "Fig7Series",
    "ObservationSweepPoint", "RandomOrderingReport", "TipSweepPoint",
    "observation_rate_sweep", "random_ordering_ablation",
    "tip_fraction_sweep",
    "Fig8Stats", "Fig9Distribution", "NegativeProfitReport",
    "ProfitDistributionReport", "ProfitStats", "Table1Row",
    "build_table1", "bundle_stats", "democratization",
    "estimate_hashrate_share", "fig3_flashbots_block_ratio",
    "fig4_hashrate_share", "fig5_miner_distribution",
    "fig6_gas_and_sandwiches", "fig7_mev_types",
    "fig8_profit_distribution", "fig9_private_distribution",
    "infer_miner_accounts", "mean_median_std", "monthly_average_gas_gwei",
    "monthly_block_miners", "monthly_flashbots_miners",
    "negative_profits", "pearson_correlation", "percent",
    "profit_distribution", "profits_eth",
    "render_kv", "render_quality", "render_series", "render_table",
]
