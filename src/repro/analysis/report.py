"""ASCII rendering for benchmark output: tables and bar series."""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Tuple

from repro.reliability.quality import DataQualityReport


def render_table(headers: Sequence[str],
                 rows: Iterable[Sequence[object]]) -> str:
    """A fixed-width ASCII table with right-aligned numeric columns."""
    materialized = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def fmt(cells: Sequence[str]) -> str:
        return " | ".join(cell.rjust(widths[i]) if i else
                          cell.ljust(widths[i])
                          for i, cell in enumerate(cells))

    lines = [fmt(list(headers)),
             "-+-".join("-" * width for width in widths)]
    lines.extend(fmt(row) for row in materialized)
    return "\n".join(lines)


def render_series(title: str, series: Sequence[Tuple[str, float]],
                  width: int = 40, unit: str = "") -> str:
    """A horizontal bar chart over labelled points (monthly series)."""
    lines = [title]
    if not series:
        return title + "\n  (empty)"
    peak = max(value for _, value in series) or 1.0
    for label, value in series:
        bar = "#" * max(0, int(round(width * value / peak)))
        lines.append(f"  {label:>9} |{bar:<{width}}| "
                     f"{value:,.3f}{unit}")
    return "\n".join(lines)


def percent(value: float) -> str:
    return f"{100.0 * value:.1f}%"


def render_kv(title: str, pairs: Sequence[Tuple[str, object]]) -> str:
    """A labelled key/value block."""
    width = max((len(k) for k, _ in pairs), default=0)
    lines = [title]
    lines.extend(f"  {key.ljust(width)} : {value}" for key, value in
                 pairs)
    return "\n".join(lines)


def render_quality(report: Optional[DataQualityReport],
                   title: str = "Data quality — source coverage & "
                                "resilience") -> str:
    """The run's :class:`DataQualityReport` as an indented text block."""
    if report is None:
        return title + "\n  (no quality report attached)"
    lines = [title]
    lines.extend(f"  {line}" for line in report.summary_lines())
    return "\n".join(lines)
