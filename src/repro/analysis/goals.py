"""The three-goal audit (paper Section 5): profit split, losses, reach."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from repro.analysis.figures import Fig8Stats, fig8_profit_distribution
from repro.chain.types import Address, to_eth
from repro.core.datasets import MevDataset
from repro.flashbots.api import FlashbotsBlocksApi
from repro.sim.calendar import StudyCalendar


@dataclass
class ProfitDistributionReport:
    """Goal 3 audit: who captures MEV profit, with vs without Flashbots."""

    stats: Fig8Stats
    miner_uplift: float      # miner FB mean / miner non-FB mean
    searcher_drop: float     # 1 − searcher FB mean / searcher non-FB mean

    @property
    def miners_gain_with_flashbots(self) -> bool:
        return self.miner_uplift > 1.0

    @property
    def searchers_lose_with_flashbots(self) -> bool:
        return self.searcher_drop > 0.0


def profit_distribution(dataset: MevDataset,
                        ) -> ProfitDistributionReport:
    """Compute the Figure-8 statistics and the headline ratios."""
    stats = fig8_profit_distribution(dataset)
    miner_uplift = (stats.miners_flashbots.mean
                    / stats.miners_non_flashbots.mean
                    if stats.miners_non_flashbots.mean > 0 else 0.0)
    searcher_drop = (1.0 - stats.searchers_flashbots.mean
                     / stats.searchers_non_flashbots.mean
                     if stats.searchers_non_flashbots.mean > 0 else 0.0)
    return ProfitDistributionReport(stats=stats,
                                    miner_uplift=miner_uplift,
                                    searcher_drop=searcher_drop)


@dataclass
class NegativeProfitReport:
    """Section 5.2: unprofitable Flashbots extractions."""

    flashbots_sandwiches: int
    unprofitable: int
    loss_total_eth: float

    @property
    def unprofitable_share(self) -> float:
        if self.flashbots_sandwiches == 0:
            return 0.0
        return self.unprofitable / self.flashbots_sandwiches


def negative_profits(dataset: MevDataset) -> NegativeProfitReport:
    """Count Flashbots sandwiches that lost money (faulty contracts)."""
    flashbots = [r for r in dataset.sandwiches if r.via_flashbots]
    losers = [r for r in flashbots if r.profit_wei < 0]
    loss_total = -sum(r.profit_wei for r in losers)
    return NegativeProfitReport(
        flashbots_sandwiches=len(flashbots), unprofitable=len(losers),
        loss_total_eth=to_eth(loss_total))


@dataclass
class DemocratizationReport:
    """Goal 2 audit: how concentrated is Flashbots participation."""

    max_miners_in_a_month: int
    monthly_miner_counts: List[Tuple[str, int]] = field(
        default_factory=list)
    top2_block_share: float = 0.0
    distinct_fb_searcher_accounts: int = 0


def democratization(api: FlashbotsBlocksApi, calendar: StudyCalendar,
                    node=None) -> DemocratizationReport:
    """Miner concentration within the Flashbots block dataset."""
    per_month: Dict[str, Set[Address]] = {}
    miner_blocks: Counter = Counter()
    searcher_accounts: Set[Address] = set()
    for api_block in api.all_blocks():
        month = calendar.month_of(api_block.block_number)
        per_month.setdefault(month, set()).add(api_block.miner)
        miner_blocks[api_block.miner] += 1
        if node is not None:
            for row in api_block.transactions:
                tx = node.get_transaction(row.tx_hash)
                if tx is not None:
                    searcher_accounts.add(tx.sender)
    monthly = [(month, len(per_month.get(month, ())))
               for month in calendar.months]
    total_blocks = sum(miner_blocks.values())
    top2 = sum(count for _, count in miner_blocks.most_common(2))
    return DemocratizationReport(
        max_miners_in_a_month=max((n for _, n in monthly), default=0),
        monthly_miner_counts=monthly,
        top2_block_share=top2 / total_blocks if total_blocks else 0.0,
        distinct_fb_searcher_accounts=len(searcher_accounts))
