"""Parameter-sensitivity sweeps for the reproduction's design choices.

DESIGN.md calls out two load-bearing modelling decisions:

* the **sealed-bid overbidding** level (how much of its gross profit a
  Flashbots searcher tips the miner) drives Figure 8's profit
  inversion, and
* the **observation coverage** of the measurement node underpins the
  private-transaction inference of Section 6 — the paper assumes its
  node "saw the vast majority" of gossip.

Each sweep re-runs a small calibrated scenario per parameter value and
reports the headline metric, so the causal link the design claims can
be checked rather than asserted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.analysis.goals import profit_distribution
from repro.core import MevInspector, PriceService
from repro.core.datasets import PRIVACY_PRIVATE
# Sensitivity sweeps *re-run the simulator* on purpose — they vary its
# parameters and measure afresh; no ground-truth labels flow into any
# heuristic.  Deliberate exception to the measurement/substrate wall.
from repro.sim import ScenarioConfig, build_paper_scenario  # repro-lint: disable=R003


def _measure(config: ScenarioConfig):
    result = build_paper_scenario(config).run()
    inspector = MevInspector(result.node, PriceService(result.oracle),
                             result.flashbots_api, result.observer)
    return result, inspector.run()


@dataclass
class TipSweepPoint:
    """Miner/searcher outcomes at one sealed-bid tip level."""

    tip_mean: float
    miner_uplift: float
    searcher_drop: float
    searcher_fb_mean_eth: float


def tip_fraction_sweep(tip_means: Sequence[float],
                       blocks_per_month: int = 25,
                       seed: int = 7) -> List[TipSweepPoint]:
    """Re-run the scenario at several sealed-bid tip levels.

    The paper's mechanism predicts: the more searchers overbid, the
    larger the miner uplift and the searcher loss — i.e. Figure 8 is a
    consequence of the auction design, not of our calibration.
    """
    points: List[TipSweepPoint] = []
    for tip_mean in tip_means:
        config = ScenarioConfig(blocks_per_month=blocks_per_month,
                                seed=seed,
                                sealed_bid_tip_mean=tip_mean)
        _, dataset = _measure(config)
        report = profit_distribution(dataset)
        points.append(TipSweepPoint(
            tip_mean=tip_mean, miner_uplift=report.miner_uplift,
            searcher_drop=report.searcher_drop,
            searcher_fb_mean_eth=report.stats.searchers_flashbots.mean))
    return points


@dataclass
class ObservationSweepPoint:
    """Inference quality at one observation-coverage level."""

    observation_rate: float
    observed_pending: int
    labelled_sandwiches: int
    inferred_private: int
    #: of the sandwiches the ground truth knows went through a private
    #: channel, the fraction the inference labelled private
    private_recall: float
    #: of the sandwiches labelled private, the fraction that truly were
    private_precision: float


def observation_rate_sweep(rates: Sequence[float],
                           blocks_per_month: int = 25,
                           seed: int = 7,
                           ) -> List[ObservationSweepPoint]:
    """Degrade the measurement node's gossip coverage and re-measure.

    Checks the paper's methodological assumption: the set-intersection
    inference is only as good as the pending-transaction trace.  Missed
    observations turn public attacks "private" (precision loss) and
    hide victims (recall loss).
    """
    points: List[ObservationSweepPoint] = []
    for rate in rates:
        config = ScenarioConfig(blocks_per_month=blocks_per_month,
                                seed=seed, observation_rate=rate)
        result, dataset = _measure(config)
        truth_by_pair = {
            (t.tx_hashes[0], t.tx_hashes[1]): t.channel
            for t in result.landed_truths()
            if t.strategy == "sandwich"}
        # Skip the window's opening block: a sandwich mined there had
        # its victim gossiped *before* collection started, so even a
        # perfect observer legitimately missed it (the real study has
        # the same boundary effect on its first day of data).
        window_start = result.observer.start_block
        labelled = [r for r in dataset.sandwiches
                    if r.privacy is not None
                    and r.block_number > window_start
                    and (r.front_tx, r.back_tx) in truth_by_pair]
        truly_private = [r for r in labelled
                         if truth_by_pair[(r.front_tx, r.back_tx)]
                         == "private"]
        inferred = [r for r in labelled
                    if r.privacy == PRIVACY_PRIVATE]
        hits = [r for r in inferred
                if truth_by_pair[(r.front_tx, r.back_tx)] == "private"]
        recall = (len(hits) / len(truly_private)
                  if truly_private else 1.0)
        precision = len(hits) / len(inferred) if inferred else 1.0
        points.append(ObservationSweepPoint(
            observation_rate=rate,
            observed_pending=len(result.observer),
            labelled_sandwiches=len(labelled),
            inferred_private=len(inferred),
            private_recall=recall, private_precision=precision))
    return points
