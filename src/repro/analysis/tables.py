"""Table 1: the MEV dataset overview."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.core.datasets import MevDataset


@dataclass(frozen=True)
class Table1Row:
    """One strategy row of Table 1 (counts + channel/funding shares)."""

    strategy: str
    extractions: int
    via_flashbots: int
    via_flash_loans: int
    via_both: int

    def share_flashbots(self) -> float:
        return self.via_flashbots / self.extractions \
            if self.extractions else 0.0

    def share_flash_loans(self) -> float:
        return self.via_flash_loans / self.extractions \
            if self.extractions else 0.0

    def share_both(self) -> float:
        return self.via_both / self.extractions \
            if self.extractions else 0.0


def build_table1(dataset: MevDataset) -> List[Table1Row]:
    """The paper's Table 1, computed from the detected dataset.

    Rows: sandwiching, arbitrage, liquidation, and the total — each with
    the count extracted via Flashbots, via flash loans, and via both.
    """
    rows: List[Table1Row] = []
    for strategy, records in (("Sandwiching", dataset.sandwiches),
                              ("Arbitrage", dataset.arbitrages),
                              ("Liquidation", dataset.liquidations)):
        total = len(records)
        via_fb = sum(1 for r in records if r.via_flashbots)
        via_fl = sum(1 for r in records if r.via_flashloan)
        via_both = sum(1 for r in records
                       if r.via_flashbots and r.via_flashloan)
        rows.append(Table1Row(strategy=strategy, extractions=total,
                              via_flashbots=via_fb,
                              via_flash_loans=via_fl,
                              via_both=via_both))
    rows.append(Table1Row(
        strategy="Total",
        extractions=sum(r.extractions for r in rows),
        via_flashbots=sum(r.via_flashbots for r in rows),
        via_flash_loans=sum(r.via_flash_loans for r in rows),
        via_both=sum(r.via_both for r in rows)))
    return rows
