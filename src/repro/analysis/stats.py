"""Statistical building blocks shared by the figure/table builders."""

from __future__ import annotations

import statistics
from collections import Counter, defaultdict
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.chain.node import ArchiveNode
from repro.chain.types import Address
from repro.core.datasets import MevDataset
from repro.flashbots.api import FlashbotsBlocksApi
from repro.sim.calendar import StudyCalendar


def monthly_block_miners(node: ArchiveNode, calendar: StudyCalendar,
                         ) -> Dict[str, Counter]:
    """month → Counter(miner → blocks mined that month)."""
    per_month: Dict[str, Counter] = defaultdict(Counter)
    for block in node.iter_blocks():
        per_month[calendar.month_of(block.number)][block.miner] += 1
    return dict(per_month)


def monthly_flashbots_miners(api: FlashbotsBlocksApi,
                             calendar: StudyCalendar,
                             ) -> Dict[str, Counter]:
    """month → Counter(miner → Flashbots blocks mined that month)."""
    per_month: Dict[str, Counter] = defaultdict(Counter)
    for api_block in api.all_blocks():
        month = calendar.month_of(api_block.block_number)
        per_month[month][api_block.miner] += 1
    return dict(per_month)


def estimate_hashrate_share(node: ArchiveNode, api: FlashbotsBlocksApi,
                            calendar: StudyCalendar,
                            ) -> List[Tuple[str, float]]:
    """The paper's Figure-4 estimator, month by month.

    A miner counts as a Flashbots miner in a month iff it mined at least
    one Flashbots block that month; its hashpower is estimated as its
    share of *all* blocks mined that month.  The Flashbots hashrate share
    is the summed share of Flashbots miners.
    """
    all_miners = monthly_block_miners(node, calendar)
    fb_miners = monthly_flashbots_miners(api, calendar)
    series: List[Tuple[str, float]] = []
    for month in calendar.months:
        blocks = all_miners.get(month)
        if not blocks:
            series.append((month, 0.0))
            continue
        members = set(fb_miners.get(month, ()))
        total = sum(blocks.values())
        enrolled = sum(count for miner, count in blocks.items()
                       if miner in members)
        series.append((month, enrolled / total))
    return series


def miners_with_at_least(counter: Counter, threshold: int) -> int:
    return sum(1 for count in counter.values() if count >= threshold)


def mean_median_std(values: Sequence[float],
                    ) -> Tuple[float, float, float]:
    """(mean, median, population-std); zeros for empty input."""
    if not values:
        return 0.0, 0.0, 0.0
    mean = statistics.fmean(values)
    median = statistics.median(values)
    std = statistics.pstdev(values) if len(values) > 1 else 0.0
    return mean, median, std


def infer_miner_accounts(dataset: MevDataset, min_count: int = 5,
                         dominance: float = 0.8) -> Set[Address]:
    """Extractor accounts that are miner-affiliated, inferred from chain
    data alone: an account whose sandwiches land overwhelmingly in one
    miner's blocks is extracting through (or as) that miner.

    This is the reproduction's analogue of the paper's Etherscan labels
    (which tie accounts to Flexpool/F2Pool): no ground truth involved.
    """
    per_account: Dict[Address, Counter] = defaultdict(Counter)
    for record in dataset.sandwiches:
        per_account[record.extractor][record.miner] += 1
    miners: Set[Address] = set()
    for account, counter in per_account.items():
        total = sum(counter.values())
        if total < min_count:
            continue
        top_share = counter.most_common(1)[0][1] / total
        if top_share >= dominance:
            miners.add(account)
    return miners


def pearson_correlation(xs: Sequence[float],
                        ys: Sequence[float]) -> float:
    """Pearson correlation coefficient (0.0 for degenerate inputs).

    Figure 6's claim is a *correlation*: the gas-price collapse lines up
    with sandwich activity moving into Flashbots, not with the forks.
    """
    if len(xs) != len(ys):
        raise ValueError("series must have equal length")
    n = len(xs)
    if n < 2:
        return 0.0
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    cov = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    var_x = sum((x - mean_x) ** 2 for x in xs)
    var_y = sum((y - mean_y) ** 2 for y in ys)
    if var_x == 0 or var_y == 0:
        return 0.0
    return cov / (var_x * var_y) ** 0.5


def profits_eth(records: Iterable, via_flashbots: Optional[bool] = None,
                ) -> List[float]:
    """Profit series in ETH with an optional Flashbots filter."""
    out: List[float] = []
    for record in records:
        if via_flashbots is not None and \
                record.via_flashbots != via_flashbots:
            continue
        out.append(record.profit_wei / 10**18)
    return out
