"""Data-series builders for every figure in the paper's evaluation.

Each ``figN_*`` function returns plain Python data (lists of tuples or
dataclasses) that the benchmark harness renders; nothing here reads
simulator ground truth — only the archive node, the Flashbots API, the
pending-transaction observer and the detected-MEV dataset.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.chain.node import ArchiveNode
from repro.chain.types import Address, to_gwei
from repro.core.datasets import (
    MevDataset,
    PRIVACY_FLASHBOTS,
    PRIVACY_PRIVATE,
    PRIVACY_PUBLIC,
)
from repro.analysis.stats import (
    estimate_hashrate_share,
    mean_median_std,
    monthly_flashbots_miners,
    profits_eth,
)
from repro.flashbots.api import FlashbotsBlocksApi
from repro.sim.calendar import StudyCalendar

MEV_TYPES = ("sandwich", "arbitrage", "liquidation", "other")


# Figure 3 ---------------------------------------------------------------


def fig3_flashbots_block_ratio(node: ArchiveNode,
                               api: FlashbotsBlocksApi,
                               calendar: StudyCalendar,
                               ) -> List[Tuple[str, float]]:
    """Monthly fraction of all blocks that are Flashbots blocks."""
    totals: Counter = Counter()
    flashbots: Counter = Counter()
    for block in node.iter_blocks():
        month = calendar.month_of(block.number)
        totals[month] += 1
        if api.is_flashbots_block(block.number):
            flashbots[month] += 1
    return [(month, (flashbots[month] / totals[month])
             if totals[month] else 0.0)
            for month in calendar.months]


# Figure 4 ---------------------------------------------------------------


def fig4_hashrate_share(node: ArchiveNode, api: FlashbotsBlocksApi,
                        calendar: StudyCalendar,
                        ) -> List[Tuple[str, float]]:
    """Estimated Flashbots hashrate share per month (paper estimator)."""
    return estimate_hashrate_share(node, api, calendar)


# Figure 5 ---------------------------------------------------------------


def fig5_miner_distribution(api: FlashbotsBlocksApi,
                            calendar: StudyCalendar,
                            thresholds: Optional[Sequence[int]] = None,
                            ) -> Dict[int, List[Tuple[str, int]]]:
    """#miners with ≥n Flashbots blocks per month, for log-spaced n.

    Thresholds default to a log ladder scaled to the compressed month
    length (the paper uses 10^0..10^4 against ~190k blocks/month).
    """
    if thresholds is None:
        bpm = calendar.blocks_per_month
        thresholds = sorted({1, max(2, bpm // 100), max(3, bpm // 30),
                             max(4, bpm // 10), max(5, bpm // 3)})
    per_month = monthly_flashbots_miners(api, calendar)
    series: Dict[int, List[Tuple[str, int]]] = {}
    for threshold in thresholds:
        series[threshold] = [
            (month,
             sum(1 for count in per_month.get(month, Counter()).values()
                 if count >= threshold))
            for month in calendar.months]
    return series


# Figure 6 ---------------------------------------------------------------


@dataclass
class Fig6Point:
    """One synthetic day of Figure 6's two panels."""

    day: int
    month: str
    avg_gas_price_gwei: float
    flashbots_sandwiches: int
    non_flashbots_sandwiches: int


def fig6_gas_and_sandwiches(node: ArchiveNode, dataset: MevDataset,
                            calendar: StudyCalendar,
                            days_per_month: int = 30,
                            ) -> List[Fig6Point]:
    """Daily average gas price vs sandwich counts (both panels)."""
    gas_sum: Dict[int, int] = defaultdict(int)
    gas_n: Dict[int, int] = defaultdict(int)
    day_month: Dict[int, str] = {}
    for block in node.iter_blocks():
        day = calendar.day_of(block.number, days_per_month)
        day_month[day] = calendar.month_of(block.number)
        for receipt in block.receipts:
            gas_sum[day] += receipt.effective_gas_price
            gas_n[day] += 1
    fb_counts: Dict[int, int] = defaultdict(int)
    non_fb_counts: Dict[int, int] = defaultdict(int)
    for record in dataset.sandwiches:
        day = calendar.day_of(record.block_number, days_per_month)
        if record.via_flashbots:
            fb_counts[day] += 1
        else:
            non_fb_counts[day] += 1
    points: List[Fig6Point] = []
    for day in sorted(day_month):
        average = (gas_sum[day] / gas_n[day]) if gas_n[day] else 0.0
        points.append(Fig6Point(
            day=day, month=day_month[day],
            avg_gas_price_gwei=to_gwei(int(average)),
            flashbots_sandwiches=fb_counts.get(day, 0),
            non_flashbots_sandwiches=non_fb_counts.get(day, 0)))
    return points


def monthly_average_gas_gwei(points: Sequence[Fig6Point],
                             ) -> List[Tuple[str, float]]:
    """Collapse Fig6 daily points to monthly averages (shape checks)."""
    sums: Dict[str, float] = defaultdict(float)
    counts: Dict[str, int] = defaultdict(int)
    order: List[str] = []
    for point in points:
        if point.month not in sums:
            order.append(point.month)
        sums[point.month] += point.avg_gas_price_gwei
        counts[point.month] += 1
    return [(month, sums[month] / counts[month]) for month in order]


# Figure 7 ---------------------------------------------------------------


@dataclass
class Fig7Series:
    """Monthly Flashbots usage split by MEV type (both subfigures)."""

    searchers: Dict[str, List[Tuple[str, int]]] = field(
        default_factory=dict)
    transactions: Dict[str, List[Tuple[str, int]]] = field(
        default_factory=dict)


def fig7_mev_types(dataset: MevDataset, api: FlashbotsBlocksApi,
                   node: ArchiveNode, calendar: StudyCalendar,
                   ) -> Fig7Series:
    """Searcher and transaction counts per MEV type per month, Flashbots
    only.  ``other`` = Flashbots transactions that are no detected MEV."""
    mev_tx_hashes: Set[str] = set()
    month_type_accounts: Dict[Tuple[str, str], Set[Address]] = \
        defaultdict(set)
    month_type_txs: Counter = Counter()

    def note(kind: str, block_number: int, account: Address,
             tx_hashes: Sequence[str]) -> None:
        month = calendar.month_of(block_number)
        month_type_accounts[(month, kind)].add(account)
        month_type_txs[(month, kind)] += len(tx_hashes)
        mev_tx_hashes.update(tx_hashes)

    for record in dataset.sandwiches:
        if record.via_flashbots:
            note("sandwich", record.block_number, record.extractor,
                 [record.front_tx, record.back_tx])
    for record in dataset.arbitrages:
        if record.via_flashbots:
            note("arbitrage", record.block_number, record.extractor,
                 [record.tx_hash])
    for record in dataset.liquidations:
        if record.via_flashbots:
            note("liquidation", record.block_number, record.liquidator,
                 [record.tx_hash])

    # "other": Flashbots-labelled transactions not tied to detected MEV.
    for api_block in api.all_blocks():
        month = calendar.month_of(api_block.block_number)
        for row in api_block.transactions:
            if row.tx_hash in mev_tx_hashes:
                continue
            tx = node.get_transaction(row.tx_hash)
            sender = tx.sender if tx is not None else "unknown"
            month_type_accounts[(month, "other")].add(sender)
            month_type_txs[(month, "other")] += 1

    series = Fig7Series()
    for kind in MEV_TYPES:
        series.searchers[kind] = [
            (month, len(month_type_accounts.get((month, kind), ())))
            for month in calendar.months]
        series.transactions[kind] = [
            (month, month_type_txs.get((month, kind), 0))
            for month in calendar.months]
    return series


# Figure 8 ---------------------------------------------------------------


@dataclass
class ProfitStats:
    """Summary of one subpopulation's sandwich profits (ETH)."""

    count: int
    mean: float
    median: float
    std: float


@dataclass
class Fig8Stats:
    """Per-sandwich income for each subpopulation × channel.

    Figure 8a measures the *miner's* take from each sandwich — the gas
    fees and coinbase tips the attacker's two transactions paid into the
    block — with vs without Flashbots.  Figure 8b measures the
    *extractor's* (searcher's) net profit.  The paper's headline follows:
    sealed-bid tipping hands miners ≈2.6× their PGA-era income while
    searchers keep far less than they did pre-Flashbots.
    """

    miners_flashbots: ProfitStats
    miners_non_flashbots: ProfitStats
    searchers_flashbots: ProfitStats
    searchers_non_flashbots: ProfitStats


def _profit_stats(values: List[float]) -> ProfitStats:
    mean, median, std = mean_median_std(values)
    return ProfitStats(count=len(values), mean=mean, median=median,
                       std=std)


def fig8_profit_distribution(dataset: MevDataset) -> Fig8Stats:
    """Miner-side and searcher-side sandwich income, by channel."""
    flashbots = [r for r in dataset.sandwiches if r.via_flashbots]
    non_flashbots = [r for r in dataset.sandwiches
                     if not r.via_flashbots]

    def miner_take(records: List) -> List[float]:
        return [r.miner_revenue_wei / 10**18 for r in records]

    return Fig8Stats(
        miners_flashbots=_profit_stats(miner_take(flashbots)),
        miners_non_flashbots=_profit_stats(miner_take(non_flashbots)),
        searchers_flashbots=_profit_stats(
            profits_eth(dataset.sandwiches, via_flashbots=True)),
        searchers_non_flashbots=_profit_stats(
            profits_eth(dataset.sandwiches, via_flashbots=False)))


# Figure 9 ---------------------------------------------------------------


@dataclass
class Fig9Distribution:
    """Three-way split of in-window sandwiches (counts and shares)."""

    flashbots: int
    private: int
    public: int

    @property
    def total(self) -> int:
        return self.flashbots + self.private + self.public

    def share(self, label: str) -> float:
        if self.total == 0:
            return 0.0
        return getattr(self, label) / self.total


def fig9_private_distribution(dataset: MevDataset) -> Fig9Distribution:
    """Distribution of sandwich privacy inside the observation window."""
    counter = Counter(record.privacy for record in dataset.sandwiches
                      if record.privacy is not None)
    return Fig9Distribution(
        flashbots=counter.get(PRIVACY_FLASHBOTS, 0),
        private=counter.get(PRIVACY_PRIVATE, 0),
        public=counter.get(PRIVACY_PUBLIC, 0))


# Section 4.1 bundle statistics ------------------------------------------


@dataclass
class BundleStats:
    """The §4.1 numbers: bundle and transaction shape of the FB dataset."""

    total_blocks: int
    total_bundles: int
    bundles_per_block_mean: float
    bundles_per_block_median: float
    bundles_per_block_max: int
    txs_per_bundle_mean: float
    txs_per_bundle_median: float
    largest_bundle_txs: int
    single_tx_bundle_share: float
    type_shares: Dict[str, float] = field(default_factory=dict)


def bundle_stats(api: FlashbotsBlocksApi) -> BundleStats:
    """Compute §4.1's dataset-shape statistics from the public API."""
    per_block: List[int] = []
    bundle_sizes: Counter = Counter()  # bundle_id → tx count
    bundle_types: Dict[str, str] = {}
    for api_block in api.all_blocks():
        per_block.append(api_block.bundle_count)
        for row in api_block.transactions:
            bundle_sizes[row.bundle_id] += 1
            bundle_types[row.bundle_id] = row.bundle_type
    sizes = list(bundle_sizes.values())
    type_counter = Counter(bundle_types.values())
    total_bundles = len(sizes)
    mean_b, median_b, _ = mean_median_std(per_block)
    mean_t, median_t, _ = mean_median_std(sizes)
    return BundleStats(
        total_blocks=len(per_block), total_bundles=total_bundles,
        bundles_per_block_mean=mean_b,
        bundles_per_block_median=median_b,
        bundles_per_block_max=max(per_block) if per_block else 0,
        txs_per_bundle_mean=mean_t, txs_per_bundle_median=median_t,
        largest_bundle_txs=max(sizes) if sizes else 0,
        single_tx_bundle_share=(sizes.count(1) / total_bundles
                                if total_bundles else 0.0),
        type_shares={kind: count / total_bundles
                     for kind, count in type_counter.items()}
        if total_bundles else {})
