"""The Flashbots relay: gatekeeper between searchers and miners.

The real system runs a single relay (operated by the Flashbots project)
whose roles are DoS protection for miners, access control (searchers and
miners apply to join), and enforcement of the no-tampering rule: a miner
caught modifying a bundle is permanently banned (paper Section 2.5).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.chain.types import Address, Hash32
from repro.flashbots.bundle import Bundle


class Relay:
    """A single-relay Flashbots network model."""

    def __init__(self, name: str = "flashbots-relay",
                 max_bundles_per_searcher_per_block: int = 5) -> None:
        self.name = name
        self.max_bundles_per_searcher_per_block = \
            max_bundles_per_searcher_per_block
        self._searchers: Set[Address] = set()
        self._miners: Set[Address] = set()
        self._banned: Set[Address] = set()
        self._pending: Dict[int, List[Bundle]] = {}
        self.rejected_count = 0

    # Registration (the Flashbots web-portal application step) -------------

    def register_searcher(self, searcher: Address) -> None:
        if searcher in self._banned:
            raise PermissionError(f"{searcher} is banned from Flashbots")
        self._searchers.add(searcher)

    def register_miner(self, miner: Address) -> None:
        if miner in self._banned:
            raise PermissionError(f"{miner} is banned from Flashbots")
        self._miners.add(miner)

    def is_searcher(self, addr: Address) -> bool:
        return addr in self._searchers and addr not in self._banned

    def is_miner(self, addr: Address) -> bool:
        return addr in self._miners and addr not in self._banned

    @property
    def miners(self) -> Set[Address]:
        return {m for m in self._miners if m not in self._banned}

    # Banning ---------------------------------------------------------------

    def ban(self, addr: Address, reason: str = "equivocation") -> None:
        """Permanent ban (miners that tamper with bundles, abusive
        searchers).  The address stays registered but loses access."""
        self._banned.add(addr)

    def is_banned(self, addr: Address) -> bool:
        return addr in self._banned

    def report_equivocation(self, miner: Address) -> None:
        """A bundle was included in modified form → permanent miner ban."""
        self.ban(miner, reason="bundle equivocation")

    # Bundle flow -------------------------------------------------------------

    def submit(self, bundle: Bundle, current_block: int) -> bool:
        """Accept a bundle for a future block; False if rejected.

        Rejection reasons mirror the real relay: unregistered or banned
        searcher, stale target block, or per-searcher rate limiting (the
        DoS-protection role).
        """
        if not self.is_searcher(bundle.searcher):
            self.rejected_count += 1
            return False
        if bundle.target_block <= current_block:
            self.rejected_count += 1
            return False
        queue = self._pending.setdefault(bundle.target_block, [])
        from_searcher = sum(1 for b in queue
                            if b.searcher == bundle.searcher)
        if from_searcher >= self.max_bundles_per_searcher_per_block:
            self.rejected_count += 1
            return False
        queue.append(bundle)
        return True

    def bundles_for_block(self, block_number: int,
                          miner: Optional[Address] = None) -> List[Bundle]:
        """Bundles a participating miner may consider for ``block_number``."""
        if miner is not None and not self.is_miner(miner):
            return []
        return list(self._pending.get(block_number, []))

    def pending_count(self) -> int:
        return sum(len(q) for q in self._pending.values())

    def expire_before(self, block_number: int) -> int:
        """Drop bundles whose target block has passed; returns count."""
        stale = [b for b in self._pending if b < block_number]
        dropped = 0
        for block in stale:
            dropped += len(self._pending.pop(block))
        return dropped

    def mark_included(self, block_number: int,
                      bundle_ids: Set[Hash32]) -> None:
        """Remove bundles that made it on chain."""
        queue = self._pending.get(block_number)
        if not queue:
            return
        self._pending[block_number] = [
            b for b in queue if b.bundle_id not in bundle_ids]
