"""The public Flashbots blocks API (blocks.flashbots.net stand-in).

Flashbots' transparency initiative publishes every mined bundle: block
number, miner, miner reward, and per-transaction bundle labels.  The paper
downloaded this dataset in full (1,196,218 blocks) and joined it against
archive-node data to label MEV as Flashbots/non-Flashbots.  This module
keeps the same rows and offers the same join surface.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import islice
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.chain.types import Address, Hash32
from repro.flashbots.mev_geth import IncludedBundle

#: An inclusive ``(first_block, last_block)`` span.
BlockRange = Tuple[int, int]


@dataclass(frozen=True)
class ApiTransaction:
    """One row of the per-transaction table served by the API."""

    tx_hash: Hash32
    bundle_id: Hash32
    bundle_type: str
    bundle_index: int
    tx_index_in_bundle: int


@dataclass(frozen=True)
class ApiBlock:
    """One row of the per-block table served by the API."""

    block_number: int
    miner: Address
    miner_reward: int  # wei earned from bundles (tips + coinbase)
    bundle_count: int
    transactions: Tuple[ApiTransaction, ...] = field(default_factory=tuple)


class FlashbotsBlocksApi:
    """Accumulates mined-bundle data and serves the public dataset."""

    def __init__(self) -> None:
        self._blocks: Dict[int, ApiBlock] = {}
        self._tx_index: Dict[Hash32, ApiTransaction] = {}
        self._gaps: Tuple[BlockRange, ...] = ()

    # Ingestion (called by the simulation when a Flashbots block lands) ---

    def record_block(self, block_number: int, miner: Address,
                     included: List[IncludedBundle]) -> None:
        """Ingest one mined block's bundle rows.

        Idempotent on byte-identical replays: re-recording a block with
        the same miner and bundles is a no-op (a resumed crawl replays
        its tail), while a *conflicting* re-record still raises.
        """
        if not included:
            return
        rows: List[ApiTransaction] = []
        reward = 0
        for bundle_index, item in enumerate(included):
            reward += item.miner_payment
            for tx_index, tx in enumerate(item.bundle.transactions):
                rows.append(ApiTransaction(
                    tx_hash=tx.hash,
                    bundle_id=item.bundle.bundle_id,
                    bundle_type=item.bundle.bundle_type,
                    bundle_index=bundle_index,
                    tx_index_in_bundle=tx_index))
        block = ApiBlock(
            block_number=block_number, miner=miner, miner_reward=reward,
            bundle_count=len(included), transactions=tuple(rows))
        existing = self._blocks.get(block_number)
        if existing is not None:
            if existing == block:
                return
            raise ValueError(
                f"block {block_number} already recorded with "
                "different contents")
        self._blocks[block_number] = block
        for row in rows:
            self._tx_index[row.tx_hash] = row

    # Incremental dataset snapshots ----------------------------------------
    #
    # ``record_block`` only appends rows (a conflicting re-record raises),
    # so the row count is a version counter and the dataset can be
    # snapshotted as per-epoch chunks of :class:`ApiBlock` rows — every
    # row is a frozen graph of hashes and strings, fully self-contained.

    def record_count(self) -> int:
        """Version counter for the per-block table (append-only)."""
        return len(self._blocks)

    def records_slice(self, start: int) -> List[ApiBlock]:
        """Rows from position ``start`` onward, in record order."""
        return list(islice(self._blocks.values(), start, None))

    @classmethod
    def from_records(cls, records: Iterable[ApiBlock],
                     gaps: Iterable[BlockRange] = (),
                     ) -> "FlashbotsBlocksApi":
        """Rebuild a dataset from snapshotted rows (seal restoration)."""
        api = cls()
        for block in records:
            api._blocks[block.block_number] = block
            for row in block.transactions:
                api._tx_index[row.tx_hash] = row
        api._gaps = tuple(gaps)
        return api

    # Coverage ------------------------------------------------------------

    def declare_gaps(self, ranges: Iterable[BlockRange]) -> None:
        """Mark block spans the dataset is known to be missing.

        The paper notes the public dataset has holes; a declared gap
        makes ``has_block_data`` honest: inside it, "no row" means
        "unknown", not "non-Flashbots".
        """
        merged = list(self._gaps)
        for lo, hi in ranges:
            if hi < lo:
                raise ValueError(f"bad gap range ({lo}, {hi})")
            merged.append((int(lo), int(hi)))
        self._gaps = tuple(sorted(set(merged)))

    def has_block_data(self, block_number: int) -> bool:
        """Whether the dataset's coverage includes this block.

        ``True`` means absence of a row is conclusive (the block was not
        a Flashbots block); ``False`` means the block falls in a known
        gap and nothing can be said either way.
        """
        return not any(lo <= block_number <= hi for lo, hi in self._gaps)

    def coverage_gaps(self) -> List[BlockRange]:
        return list(self._gaps)

    # Public dataset queries ---------------------------------------------------

    def all_blocks(self) -> List[ApiBlock]:
        return [self._blocks[n] for n in sorted(self._blocks)]

    def blocks_until(self, block_number: int) -> List[ApiBlock]:
        """The paper's "entire list of Flashbots blocks until block N"."""
        return [self._blocks[n] for n in sorted(self._blocks)
                if n <= block_number]

    def get_block(self, block_number: int) -> Optional[ApiBlock]:
        return self._blocks.get(block_number)

    def is_flashbots_block(self, block_number: int) -> bool:
        return block_number in self._blocks

    def is_flashbots_tx(self, tx_hash: Hash32) -> bool:
        return tx_hash in self._tx_index

    def tx_label(self, tx_hash: Hash32) -> Optional[ApiTransaction]:
        return self._tx_index.get(tx_hash)

    def flashbots_tx_hashes(self) -> Set[Hash32]:
        return set(self._tx_index)

    def block_count(self) -> int:
        return len(self._blocks)

    def bundle_count(self) -> int:
        return sum(b.bundle_count for b in self._blocks.values())
