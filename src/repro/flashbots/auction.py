"""Searcher-side bidding in the Flashbots sealed-bid auction.

Flashbots runs a *sealed-bid* auction: searchers cannot see competing
bids, so — as the paper argues in Section 8.2 — they overbid to raise
their inclusion odds, shifting most MEV profit to miners.  Before
Flashbots, bidding happened in open priority-gas-auctions (PGAs) where
escalation was visible and stopped earlier, leaving more profit with the
extractor.  These two bidding models are what make Figure 8's
miner/searcher profit inversion emerge in the simulation rather than
being hard-coded.
"""

from __future__ import annotations

import random

#: Mean fraction of gross MEV profit a Flashbots searcher tips the miner.
#: Empirically searchers bid away most of the opportunity in sealed-bid
#: competition; 0.80 reproduces the paper's ≈2.6× miner uplift.
SEALED_BID_MEAN_TIP_FRACTION = 0.80

#: Mean fraction of gross profit burned in an open PGA (visible escalation
#: stops near the second-highest valuation; historically far lower).
PGA_MEAN_FEE_FRACTION = 0.25


def sealed_bid_tip_fraction(rng: random.Random,
                            competition: int = 3,
                            mean: float = SEALED_BID_MEAN_TIP_FRACTION,
                            ) -> float:
    """Tip fraction a searcher commits in the sealed-bid auction.

    More perceived competition pushes bids up; the fraction is clamped to
    (0, 0.92] so a winning searcher always retains some gross profit —
    losses then only come from faulty contracts, matching Section 5.2's
    explanation of negative Flashbots profits.
    """
    if competition < 0:
        raise ValueError("competition cannot be negative")
    pressure = min(0.15, 0.03 * competition)
    fraction = rng.gauss(mean + pressure, 0.07)
    return max(0.05, min(0.92, fraction))


def pga_fee_fraction(rng: random.Random,
                     competition: int = 3,
                     mean: float = PGA_MEAN_FEE_FRACTION) -> float:
    """Fraction of gross profit burned as gas in an open PGA."""
    if competition < 0:
        raise ValueError("competition cannot be negative")
    pressure = min(0.20, 0.04 * competition)
    fraction = rng.gauss(mean + pressure, 0.08)
    return max(0.02, min(0.95, fraction))


def pga_gas_price(rng: random.Random, base_gas_price: int,
                  expected_profit: int, gas_limit: int,
                  competition: int = 3) -> int:
    """Gas price bid for a public (non-Flashbots) MEV attempt.

    Converts the PGA fee fraction into a per-gas bid over the prevailing
    price, the mechanism that inflated public gas prices before Flashbots
    (and whose departure explains Figure 6's April-2021 collapse).
    """
    if gas_limit <= 0:
        raise ValueError("gas limit must be positive")
    fraction = pga_fee_fraction(rng, competition)
    fee_budget = int(expected_profit * fraction)
    bid = base_gas_price + fee_budget // gas_limit
    return max(base_gas_price, bid)
