"""Flashbots substrate: bundles, relay, MEV-geth, public blocks API."""

from repro.flashbots.api import ApiBlock, ApiTransaction, FlashbotsBlocksApi
from repro.flashbots.auction import (
    PGA_MEAN_FEE_FRACTION,
    SEALED_BID_MEAN_TIP_FRACTION,
    pga_fee_fraction,
    pga_gas_price,
    sealed_bid_tip_fraction,
)
from repro.flashbots.bundle import (
    BUNDLE_TYPES,
    FLASHBOTS,
    MINER_PAYOUT,
    ROGUE,
    Bundle,
    make_bundle,
)
from repro.flashbots.mev_geth import (
    BuiltBlock,
    IncludedBundle,
    build_block,
    score_bundle,
)
from repro.flashbots.relay import Relay

__all__ = [
    "ApiBlock", "ApiTransaction", "BUNDLE_TYPES", "BuiltBlock", "Bundle",
    "FLASHBOTS", "FlashbotsBlocksApi", "IncludedBundle", "MINER_PAYOUT",
    "PGA_MEAN_FEE_FRACTION", "ROGUE", "Relay",
    "SEALED_BID_MEAN_TIP_FRACTION", "build_block", "make_bundle",
    "pga_fee_fraction", "pga_gas_price", "score_bundle",
    "sealed_bid_tip_fraction",
]
