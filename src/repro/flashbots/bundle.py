"""Flashbots bundles: immutable, atomic, ordered transaction sets.

A bundle is the unit of the Flashbots auction (paper Section 2.5).  Three
types exist on the real network and in its public dataset:

* ``MINER_PAYOUT`` — mining-pool payout batches (fee-less because the pool's
  own miners include them),
* ``ROGUE`` — transactions a miner introduced itself without broadcasting,
* ``FLASHBOTS`` — the standard searcher → relay → miner flow.

Bundles are immutable once created: transactions are stored as a tuple and
the bundle id commits to their hashes, so any tampering yields a different
bundle (the behaviour the relay's equivocation ban enforces).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro.chain.transaction import Transaction
from repro.chain.types import Address, Hash32, hash_of

MINER_PAYOUT = "miner_payout"
ROGUE = "rogue"
FLASHBOTS = "flashbots"

BUNDLE_TYPES = (MINER_PAYOUT, ROGUE, FLASHBOTS)


@dataclass(frozen=True)
class Bundle:
    """An immutable ordered set of transactions bidding for inclusion."""

    searcher: Address
    transactions: Tuple[Transaction, ...]
    target_block: int
    bundle_type: str = FLASHBOTS
    meta: Dict[str, Any] = field(default_factory=dict, compare=False)

    def __post_init__(self) -> None:
        if not self.transactions:
            raise ValueError("bundle cannot be empty")
        if self.bundle_type not in BUNDLE_TYPES:
            raise ValueError(f"unknown bundle type: {self.bundle_type!r}")
        if self.target_block < 0:
            raise ValueError("target block cannot be negative")

    @property
    def bundle_id(self) -> Hash32:
        """Commitment to the bundle's exact contents and order.

        Memoized: the dataclass is frozen, so the commitment can never
        change after construction (the relay and the API read it per
        pending bundle per block — a 700-tx payout bundle would otherwise
        re-hash all its transactions on every read).
        """
        cached = self.__dict__.get("_bundle_id")
        if cached is None:
            cached = hash_of(("bundle", self.searcher, self.target_block,
                              self.bundle_type) + self.tx_hashes)
            object.__setattr__(self, "_bundle_id", cached)
        return cached

    @property
    def tx_hashes(self) -> Tuple[Hash32, ...]:
        cached = self.__dict__.get("_tx_hashes")
        if cached is None:
            cached = tuple(tx.hash for tx in self.transactions)
            object.__setattr__(self, "_tx_hashes", cached)
        return cached

    def __len__(self) -> int:
        return len(self.transactions)

    def total_gas_limit(self) -> int:
        return sum(tx.gas_limit for tx in self.transactions)


def make_bundle(searcher: Address, transactions, target_block: int,
                bundle_type: str = FLASHBOTS,
                meta: Optional[Dict[str, Any]] = None) -> Bundle:
    """Convenience constructor accepting any transaction iterable."""
    return Bundle(searcher=searcher, transactions=tuple(transactions),
                  target_block=target_block, bundle_type=bundle_type,
                  meta=dict(meta or {}))
