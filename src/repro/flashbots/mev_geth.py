"""MEV-geth: miner-side bundle selection and block assembly.

Mirrors the Flashbots fork of go-ethereum: score each candidate bundle by
simulated *miner payment per gas* (tips + coinbase transfers), greedily
commit the best non-conflicting bundles at the top of the block, then fill
the rest with public mempool transactions in fee order.  A bundle that no
longer executes (its opportunity was taken by a better-paying competitor —
the sealed-bid auction resolving) is skipped whole, never partially
included and never modified.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.chain.block import Block, BlockBuilder
from repro.chain.mempool import Mempool
from repro.chain.receipt import Receipt
from repro.chain.state import WorldState
from repro.chain.types import Address
from repro.flashbots.bundle import Bundle

#: Bundles must pay at least this per gas to be worth a slot (MEV-geth's
#: profit-switching threshold, simplified).
MIN_BUNDLE_PAYMENT_PER_GAS = 1


@dataclass
class IncludedBundle:
    """A bundle that made it into a block, with its realized economics."""

    bundle: Bundle
    receipts: List[Receipt]

    @property
    def miner_payment(self) -> int:
        return sum(r.total_miner_payment for r in self.receipts)

    @property
    def gas_used(self) -> int:
        return sum(r.gas_used for r in self.receipts)


@dataclass
class BuiltBlock:
    """Result of one block-building round."""

    block: Block
    included_bundles: List[IncludedBundle] = field(default_factory=list)

    @property
    def is_flashbots_block(self) -> bool:
        return bool(self.included_bundles)


def score_bundle(builder: BlockBuilder, bundle: Bundle) -> Optional[int]:
    """Simulated miner payment per gas for a bundle; None if inexecutable.

    Miner payouts and rogue bundles are exempt from the payment floor
    (miners include their own traffic regardless of fees).
    """
    receipts = builder.simulate_sequence(bundle.transactions)
    if receipts is None:
        return None
    payment = sum(r.total_miner_payment for r in receipts)
    gas = max(1, sum(r.gas_used for r in receipts))
    return payment // gas


def build_block(state: WorldState, mempool: Mempool, number: int,
                timestamp: int, coinbase: Address, base_fee: int,
                contracts: Optional[Dict[Address, Any]] = None,
                bundles: Sequence[Bundle] = (),
                private_sequences: Sequence[Sequence] = (),
                burn_base_fee: bool = False,
                account_nonces: Optional[Dict[Address, int]] = None,
                ) -> BuiltBlock:
    """Assemble one block: bundles first (by score), then private
    sequences from non-Flashbots pools, then public transactions.

    With no bundles and no private sequences this is exactly a
    vanilla-geth block (the non-Flashbots miner path), so *every* miner in
    the simulation goes through this one code path and comparisons between
    populations are apples-to-apples.
    """
    builder = BlockBuilder(state, number=number, timestamp=timestamp,
                           coinbase=coinbase, base_fee=base_fee,
                           contracts=contracts,
                           burn_base_fee=burn_base_fee)
    included: List[IncludedBundle] = []

    scored: List[tuple] = []
    for bundle in bundles:
        score = score_bundle(builder, bundle)
        if score is None:
            continue
        exempt = bundle.bundle_type != "flashbots"
        if not exempt and score < MIN_BUNDLE_PAYMENT_PER_GAS:
            continue
        scored.append((score, bundle))
    # Highest payment per gas first; ties broken by bundle id for
    # determinism.
    scored.sort(key=lambda item: (-item[0], item[1].bundle_id))

    for _, bundle in scored:
        if bundle.total_gas_limit() > builder.gas_remaining():
            continue
        receipts = builder.apply_atomic_sequence(bundle.transactions)
        if receipts is None:
            continue  # lost the auction to an earlier bundle; skip whole
        included.append(IncludedBundle(bundle=bundle, receipts=receipts))

    for sequence in private_sequences:
        txs = list(sequence)
        if sum(tx.gas_limit for tx in txs) > builder.gas_remaining():
            continue
        builder.apply_atomic_sequence(txs)

    nonces = dict(account_nonces or {})
    for tx in mempool.transactions:
        nonces.setdefault(tx.sender, state.nonce(tx.sender))
    for tx in mempool.select(base_fee if burn_base_fee else 0,
                             builder.gas_remaining(), nonces):
        builder.apply_transaction(tx)

    block = builder.finalize()
    return BuiltBlock(block=block, included_bundles=included)
