"""``repro.lint`` — AST-based static analysis for domain invariants.

The simulator and measurement pipeline rest on invariants that plain
tests cannot guard (they hold *by construction* until someone edits the
wrong file): value stays integer wei inside the EVM state, seeded runs
replay exactly, heuristics never peek at ground truth, heuristics and
emitters agree on the event schema, and the public measurement API is
typed.  Each invariant is a rule:

=====  ====================  =======================================
Rule   Name                  Guards
=====  ====================  =======================================
R001   wei-safety            no floats/true division in value math
R002   determinism           no ambient entropy or hash-order loops
R003   layering              measurement blind to simulator truth
R004   event-schema          emitters/readers match events.py
R005   public-api-hygiene    typed public functions in repro.core
=====  ====================  =======================================

Run with ``python -m repro.lint [paths]`` or ``python -m repro lint``.
Suppress a deliberate exception with ``# repro-lint: disable=R00X`` on
the flagged line (or the line above), or file-wide with
``# repro-lint: disable-file=R00X``.  Configure via the
``[tool.repro-lint]`` table in ``pyproject.toml``.
"""

from repro.lint.config import LintConfig, load_config
from repro.lint.engine import lint_file, lint_paths, lint_source
from repro.lint.findings import ERROR, WARNING, Finding
from repro.lint.registry import Rule, all_rules, make_rules, register
from repro.lint.reporters import render_json, render_text

__all__ = [
    "ERROR",
    "WARNING",
    "Finding",
    "LintConfig",
    "Rule",
    "all_rules",
    "lint_file",
    "lint_paths",
    "lint_source",
    "load_config",
    "make_rules",
    "register",
    "render_json",
    "render_text",
]
