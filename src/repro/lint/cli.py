"""``python -m repro.lint`` — run the domain-invariant linter.

Exit status: 0 when clean, 1 when findings exist, 2 on usage errors.

``--deep`` additionally runs the whole-program analyzers (R101–R103,
see :mod:`repro.lint.flow`) after the per-file rules.  Deep runs can
diff against a committed findings baseline (``--baseline``) so CI only
fails on regressions, and cache module summaries by content hash
(``--flow-cache``) so re-runs are incremental.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.lint.config import (
    LintConfig,
    common_search_root,
    load_config,
)
from repro.lint.engine import lint_paths
from repro.lint.flow import (
    FLOW_RULES,
    filter_baselined,
    load_baseline,
    run_deep,
    write_baseline,
)
from repro.lint.registry import all_rules
from repro.lint.reporters import (
    render_json,
    render_sarif,
    render_text,
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.lint",
        description="AST-based linter for this repo's domain "
                    "invariants: wei-safety (R001), determinism "
                    "(R002), layering (R003), event-schema (R004), "
                    "public-API hygiene (R005); with --deep also the "
                    "whole-program analyzers R101 (determinism "
                    "taint), R102 (fast-path pairing), R103 "
                    "(parallel safety).")
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to lint "
                             "(default: src)")
    parser.add_argument("--format",
                        choices=("text", "json", "sarif"),
                        default="text", help="report format")
    parser.add_argument("--select", metavar="RULES",
                        help="comma-separated rule ids to run "
                             "(overrides config; per-file rules "
                             "only)")
    parser.add_argument("--config", metavar="PYPROJECT",
                        help="explicit pyproject.toml to read "
                             "[tool.repro-lint] from")
    parser.add_argument("--no-config", action="store_true",
                        help="ignore pyproject.toml and use defaults")
    parser.add_argument("--deep", action="store_true",
                        help="also run the whole-program analyzers "
                             "(R101-R103)")
    parser.add_argument("--baseline", metavar="FILE",
                        help="committed findings baseline; findings "
                             "recorded there are filtered, only new "
                             "ones fail the run")
    parser.add_argument("--write-baseline", action="store_true",
                        help="refresh --baseline with the current "
                             "findings and exit 0")
    parser.add_argument("--flow-cache", metavar="DIR",
                        help="directory for content-hash summary "
                             "cache (incremental --deep re-runs)")
    parser.add_argument("--tests-root", metavar="DIR",
                        help="test tree R102 searches for "
                             "equivalence coverage (default: tests)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule table and exit")
    return parser


def _list_rules() -> str:
    lines = []
    for rule_id, cls in sorted(all_rules().items()):
        lines.append(f"{rule_id}  {cls.title}: {cls.rationale}")
    for rule_id, (name, rationale) in sorted(FLOW_RULES.items()):
        lines.append(f"{rule_id}  {name} (--deep): {rationale}")
    return "\n".join(lines)


def _rules_meta() -> dict:
    meta = {rule_id: (cls.title, cls.rationale)
            for rule_id, cls in all_rules().items()}
    meta.update(FLOW_RULES)
    return meta


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        print(_list_rules())
        return 0
    if args.write_baseline and not args.baseline:
        print("repro.lint: --write-baseline requires --baseline",
              file=sys.stderr)
        return 2
    paths = [Path(raw) for raw in args.paths]
    missing = [str(path) for path in paths if not path.exists()]
    if missing:
        print(f"repro.lint: no such path: {', '.join(missing)}",
              file=sys.stderr)
        return 2
    if args.no_config:
        config = LintConfig()
    else:
        explicit = Path(args.config) if args.config else None
        config = load_config(pyproject=explicit,
                             search_from=common_search_root(paths))
    if args.select:
        config.enable = [rule.strip().upper()
                         for rule in args.select.split(",")
                         if rule.strip()]
    unknown = sorted(set(config.enable) - set(all_rules()))
    if unknown:
        # A typo'd rule id silently linting nothing would read as a
        # clean CI run; fail loudly instead.
        print(f"repro.lint: unknown rule id: {', '.join(unknown)} "
              f"(known: {', '.join(sorted(all_rules()))})",
              file=sys.stderr)
        return 2
    findings = lint_paths(paths, config)
    if args.deep:
        cache_dir = Path(args.flow_cache) if args.flow_cache else None
        report = run_deep(paths, config, cache_dir=cache_dir,
                          tests_root=args.tests_root)
        findings = sorted(findings + report.findings,
                          key=lambda f: f.sort_key())
        print(report.stats_line(), file=sys.stderr)
    if args.write_baseline:
        write_baseline(Path(args.baseline), findings)
        print(f"repro.lint: baseline written "
              f"({len(findings)} findings) to {args.baseline}",
              file=sys.stderr)
        return 0
    if args.baseline:
        baseline_path = Path(args.baseline)
        if baseline_path.exists():
            try:
                accepted = load_baseline(baseline_path)
            except (ValueError, KeyError, TypeError) as exc:
                print(f"repro.lint: bad baseline: {exc}",
                      file=sys.stderr)
                return 2
            findings = filter_baselined(findings, accepted)
    if args.format == "json":
        print(render_json(findings))
    elif args.format == "sarif":
        print(render_sarif(findings, _rules_meta()))
    else:
        print(render_text(findings))
    return 1 if findings else 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
