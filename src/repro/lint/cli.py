"""``python -m repro.lint`` — run the domain-invariant linter.

Exit status: 0 when clean, 1 when findings exist, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.lint.config import (
    LintConfig,
    common_search_root,
    load_config,
)
from repro.lint.engine import lint_paths
from repro.lint.registry import all_rules
from repro.lint.reporters import render_json, render_text


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.lint",
        description="AST-based linter for this repo's domain "
                    "invariants: wei-safety (R001), determinism "
                    "(R002), layering (R003), event-schema (R004), "
                    "public-API hygiene (R005).")
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to lint "
                             "(default: src)")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text", help="report format")
    parser.add_argument("--select", metavar="RULES",
                        help="comma-separated rule ids to run "
                             "(overrides config)")
    parser.add_argument("--config", metavar="PYPROJECT",
                        help="explicit pyproject.toml to read "
                             "[tool.repro-lint] from")
    parser.add_argument("--no-config", action="store_true",
                        help="ignore pyproject.toml and use defaults")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule table and exit")
    return parser


def _list_rules() -> str:
    lines = []
    for rule_id, cls in sorted(all_rules().items()):
        lines.append(f"{rule_id}  {cls.title}: {cls.rationale}")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        print(_list_rules())
        return 0
    paths = [Path(raw) for raw in args.paths]
    missing = [str(path) for path in paths if not path.exists()]
    if missing:
        print(f"repro.lint: no such path: {', '.join(missing)}",
              file=sys.stderr)
        return 2
    if args.no_config:
        config = LintConfig()
    else:
        explicit = Path(args.config) if args.config else None
        config = load_config(pyproject=explicit,
                             search_from=common_search_root(paths))
    if args.select:
        config.enable = [rule.strip().upper()
                         for rule in args.select.split(",")
                         if rule.strip()]
    unknown = sorted(set(config.enable) - set(all_rules()))
    if unknown:
        # A typo'd rule id silently linting nothing would read as a
        # clean CI run; fail loudly instead.
        print(f"repro.lint: unknown rule id: {', '.join(unknown)} "
              f"(known: {', '.join(sorted(all_rules()))})",
              file=sys.stderr)
        return 2
    findings = lint_paths(paths, config)
    if args.format == "json":
        print(render_json(findings))
    else:
        print(render_text(findings))
    return 1 if findings else 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
