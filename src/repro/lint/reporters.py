"""Finding reporters: human-readable text and machine-readable JSON."""

from __future__ import annotations

import json
from collections import Counter
from typing import List, Sequence

from repro.lint.findings import Finding


def render_text(findings: Sequence[Finding]) -> str:
    """One line per finding plus a per-rule summary footer."""
    if not findings:
        return "repro-lint: no findings"
    lines: List[str] = [finding.render() for finding in findings]
    by_rule = Counter(finding.rule_id for finding in findings)
    summary = ", ".join(f"{rule}×{count}"
                        for rule, count in sorted(by_rule.items()))
    noun = "finding" if len(findings) == 1 else "findings"
    lines.append(f"repro-lint: {len(findings)} {noun} ({summary})")
    return "\n".join(lines)


def render_json(findings: Sequence[Finding]) -> str:
    """Stable JSON document: ``{"findings": [...], "count": N}``."""
    payload = {
        "count": len(findings),
        "findings": [finding.to_dict() for finding in findings],
    }
    return json.dumps(payload, indent=2, sort_keys=False)
