"""Finding reporters: text, JSON, and SARIF 2.1.0."""

from __future__ import annotations

import json
from collections import Counter
from typing import Dict, List, Optional, Sequence, Tuple

from repro.lint.findings import Finding


def render_text(findings: Sequence[Finding]) -> str:
    """One line per finding plus a per-rule summary footer."""
    if not findings:
        return "repro-lint: no findings"
    lines: List[str] = [finding.render() for finding in findings]
    by_rule = Counter(finding.rule_id for finding in findings)
    summary = ", ".join(f"{rule}×{count}"
                        for rule, count in sorted(by_rule.items()))
    noun = "finding" if len(findings) == 1 else "findings"
    lines.append(f"repro-lint: {len(findings)} {noun} ({summary})")
    return "\n".join(lines)


def render_json(findings: Sequence[Finding]) -> str:
    """Stable JSON document: ``{"findings": [...], "count": N}``."""
    payload = {
        "count": len(findings),
        "findings": [finding.to_dict() for finding in findings],
    }
    return json.dumps(payload, indent=2, sort_keys=False)


#: SARIF severity for our two levels (SARIF's own vocabulary).
_SARIF_LEVEL = {"error": "error", "warning": "warning"}


def render_sarif(findings: Sequence[Finding],
                 rules: Optional[Dict[str, Tuple[str, str]]] = None,
                 ) -> str:
    """Minimal SARIF 2.1.0 document (one run, one driver).

    ``rules`` maps rule id → ``(name, description)`` for the driver's
    rule table; ids encountered only in findings still validate —
    SARIF permits results whose ruleId has no descriptor.
    """
    rules = rules or {}
    descriptors = [
        {
            "id": rule_id,
            "name": name,
            "shortDescription": {"text": description},
        }
        for rule_id, (name, description) in sorted(rules.items())
    ]
    results = [
        {
            "ruleId": finding.rule_id,
            "level": _SARIF_LEVEL.get(finding.severity, "error"),
            "message": {"text": finding.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": finding.path.replace("\\", "/"),
                    },
                    "region": {
                        "startLine": max(finding.line, 1),
                        "startColumn": finding.col + 1,
                    },
                },
            }],
        }
        for finding in findings
    ]
    document = {
        "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
        "version": "2.1.0",
        "runs": [{
            "tool": {
                "driver": {
                    "name": "repro-lint",
                    "informationUri":
                        "https://example.invalid/repro-lint",
                    "rules": descriptors,
                },
            },
            "results": results,
        }],
    }
    return json.dumps(document, indent=2)
