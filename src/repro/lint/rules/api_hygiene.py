"""R005 — public-API hygiene: exported measurement functions are typed.

``repro.core`` is the layer other code (and downstream analyses)
programs against, and its values are dimensionful — wei, block heights,
permille tolerances.  Unannotated parameters there are where int/float
confusion sneaks back in.  The rule requires every *public* function in
the configured packages to annotate all parameters and the return type.
``repro.chain.index`` is held to the same bar: it is the read path the
whole measurement layer leans on, and its coordinates (block numbers,
tx/log indices) invite exactly that confusion.  ``repro.chain.mempool``
joined when its ordering index became a hot path: fee and nonce
arguments there are wei/counters, and the incremental index only stays
provably equivalent to the naive sort if those types stay honest.

Public means: listed in ``__all__`` when the module defines one,
otherwise any top-level or public-class method whose name has no
leading underscore (``__init__`` counts; its signature is the class's
constructor API).
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set

from repro.lint.context import ModuleContext
from repro.lint.findings import Finding
from repro.lint.registry import Rule, register

DEFAULT_PACKAGES = ("repro.core", "repro.engine", "repro.chain.index",
                    "repro.chain.mempool", "repro.serve")

_IMPLICIT = {"self", "cls"}


def _module_all(tree: ast.Module) -> Optional[Set[str]]:
    for node in tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and \
                        target.id == "__all__" and \
                        isinstance(node.value, (ast.List, ast.Tuple)):
                    return {elt.value for elt in node.value.elts
                            if isinstance(elt, ast.Constant) and
                            isinstance(elt.value, str)}
    return None


def _missing_annotations(node: ast.FunctionDef) -> List[str]:
    missing = []
    args = (list(node.args.posonlyargs) + list(node.args.args) +
            list(node.args.kwonlyargs))
    for index, arg in enumerate(args):
        if index == 0 and arg.arg in _IMPLICIT:
            continue
        if arg.annotation is None:
            missing.append(arg.arg)
    for star in (node.args.vararg, node.args.kwarg):
        if star is not None and star.annotation is None:
            missing.append("*" + star.arg)
    if node.returns is None and node.name != "__init__":
        missing.append("return")
    return missing


def _is_public(name: str) -> bool:
    return not name.startswith("_") or name == "__init__"


@register
class ApiHygieneRule(Rule):
    rule_id = "R005"
    title = "public-api-hygiene"
    rationale = ("Exported measurement functions carry full type "
                 "annotations; dimensionful values need declared types.")

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        packages = self.option_str_list("packages", DEFAULT_PACKAGES)
        if not ctx.in_package(*packages):
            return
        exported = _module_all(ctx.tree)

        def wanted(name: str) -> bool:
            if exported is not None:
                return name in exported
            return _is_public(name)

        for node in ctx.tree.body:
            if isinstance(node, (ast.FunctionDef,
                                 ast.AsyncFunctionDef)):
                if wanted(node.name):
                    yield from self._check_function(ctx, node,
                                                    node.name)
            elif isinstance(node, ast.ClassDef) and wanted(node.name):
                for stmt in node.body:
                    if isinstance(stmt, (ast.FunctionDef,
                                         ast.AsyncFunctionDef)) and \
                            _is_public(stmt.name):
                        yield from self._check_function(
                            ctx, stmt, f"{node.name}.{stmt.name}")

    def _check_function(self, ctx: ModuleContext, node: ast.FunctionDef,
                        qualname: str) -> Iterator[Finding]:
        for decorator in node.decorator_list:
            # property getters/setters and overloads inherit their
            # contract elsewhere; only plain callables are checked.
            if isinstance(decorator, ast.Name) and \
                    decorator.id == "overload":
                return
        missing = _missing_annotations(node)
        if missing:
            yield ctx.finding(
                node, self.rule_id,
                f"public function '{qualname}' lacks type annotations "
                f"for: {', '.join(missing)}")
