"""R001 — wei-safety: no floating point in simulated EVM value math.

``repro.chain.types`` declares the invariant: money is an ``int``
denominated in wei, and floating point belongs to the analysis layer
only.  Inside the value-bearing packages this rule therefore flags:

* true division ``/`` (use floor division ``//`` — that is what the
  EVM does);
* ``float(...)`` conversions;
* ``float`` literals used as operands of arithmetic.

Functions whose *declared return annotation* mentions ``float`` are
exempt: they are the explicitly marked analysis-boundary helpers (spot
prices, health factors, human-readable conversions) where leaving exact
integer arithmetic is the documented intent.
"""

from __future__ import annotations

import ast
from typing import Iterator, List

from repro.lint.context import ModuleContext
from repro.lint.findings import Finding
from repro.lint.registry import Rule, register

#: Packages whose arithmetic is value-denominated (wei, token raw units).
DEFAULT_PACKAGES = ("repro.chain", "repro.dex", "repro.lending",
                    "repro.flashbots")

_ARITH_OPS = (ast.Add, ast.Sub, ast.Mult, ast.Div, ast.FloorDiv,
              ast.Mod, ast.Pow)


def _annotation_mentions_float(annotation: ast.AST) -> bool:
    return any(isinstance(node, ast.Name) and node.id == "float"
               for node in ast.walk(annotation))


class _Visitor(ast.NodeVisitor):
    def __init__(self, rule: "WeiSafetyRule", ctx: ModuleContext) -> None:
        self.rule = rule
        self.ctx = ctx
        self.findings: List[Finding] = []
        self._float_fn_depth = 0

    # -- function scoping ---------------------------------------------------

    def _visit_function(self, node: ast.AST) -> None:
        returns = getattr(node, "returns", None)
        exempt = returns is not None and \
            _annotation_mentions_float(returns)
        if exempt:
            self._float_fn_depth += 1
        self.generic_visit(node)
        if exempt:
            self._float_fn_depth -= 1

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    @property
    def _exempt(self) -> bool:
        return self._float_fn_depth > 0

    # -- checks -------------------------------------------------------------

    def _emit(self, node: ast.AST, message: str) -> None:
        self.findings.append(
            self.ctx.finding(node, self.rule.rule_id, message))

    def visit_BinOp(self, node: ast.BinOp) -> None:
        if not self._exempt:
            if isinstance(node.op, ast.Div):
                self._emit(node, "true division '/' on value arithmetic; "
                                 "use floor division '//' (wei is int)")
            elif isinstance(node.op, _ARITH_OPS):
                for operand in (node.left, node.right):
                    if isinstance(operand, ast.Constant) and \
                            isinstance(operand.value, float):
                        self._emit(operand,
                                   f"float literal {operand.value!r} in "
                                   "value arithmetic; keep EVM-state "
                                   "math in exact integers")
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        if not self._exempt and isinstance(node.op, ast.Div):
            self._emit(node, "true division '/=' on value arithmetic; "
                             "use '//=' (wei is int)")
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        if not self._exempt and isinstance(node.func, ast.Name) and \
                node.func.id == "float":
            self._emit(node, "float() conversion inside a value-layer "
                             "module; floats belong to the analysis "
                             "layer")
        self.generic_visit(node)


@register
class WeiSafetyRule(Rule):
    rule_id = "R001"
    title = "wei-safety"
    rationale = ("Simulated EVM state keeps all value as int wei; "
                 "floating point only at the analysis layer.")

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        packages = self.option_str_list("packages", DEFAULT_PACKAGES)
        if not ctx.in_package(*packages):
            return
        visitor = _Visitor(self, ctx)
        visitor.visit(ctx.tree)
        yield from visitor.findings
