"""R006 — no silent exception swallows.

The reliability layer (PR 2) makes data-source failures *visible*:
retries are counted, breaker trips reported, gaps labelled.  A bare
``except:`` or a broad ``except Exception: pass`` anywhere in the
package undoes that — it converts exactly the faults the pipeline is
built to surface into silent data loss.  This rule flags:

* bare ``except:`` handlers (they even swallow ``KeyboardInterrupt``);
* handlers catching ``Exception`` or ``BaseException`` (alone or inside
  a tuple) whose body does nothing — only ``pass``, ``...``, or a bare
  string/constant expression.

Narrow handlers (``except FileNotFoundError: return``) and broad
handlers that *act* (log, re-raise, count, degrade explicitly) stay
legal; a deliberate swallow carries a ``# repro-lint: disable=R006``
suppression with its justification.
"""

from __future__ import annotations

import ast
from typing import Iterator, List

from repro.lint.context import ModuleContext
from repro.lint.findings import Finding
from repro.lint.registry import Rule, register

#: exception names treated as "catches everything"
_BROAD_NAMES = {"Exception", "BaseException"}


def _catches_broad(handler: ast.ExceptHandler) -> bool:
    """Whether the handler type includes Exception/BaseException."""
    node = handler.type
    if node is None:
        return True
    candidates = node.elts if isinstance(node, ast.Tuple) else [node]
    return any(isinstance(item, ast.Name) and item.id in _BROAD_NAMES
               for item in candidates)


def _is_noop_body(body: List[ast.stmt]) -> bool:
    """Whether a handler body swallows without acting."""
    for statement in body:
        if isinstance(statement, ast.Pass):
            continue
        if isinstance(statement, ast.Expr) and \
                isinstance(statement.value, ast.Constant):
            continue  # bare ``...`` or a stray string/number
        return False
    return True


class _Visitor(ast.NodeVisitor):
    def __init__(self, rule: "SilentExceptRule",
                 ctx: ModuleContext) -> None:
        self.rule = rule
        self.ctx = ctx
        self.findings: List[Finding] = []

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self.findings.append(self.ctx.finding(
                node, self.rule.rule_id,
                "bare 'except:' swallows every failure (including "
                "KeyboardInterrupt); catch a concrete exception and "
                "surface or count the error"))
        elif _catches_broad(node) and _is_noop_body(node.body):
            self.findings.append(self.ctx.finding(
                node, self.rule.rule_id,
                "'except Exception: pass' silently discards failures "
                "the reliability layer exists to surface; handle, "
                "count, or re-raise the error"))
        self.generic_visit(node)


@register
class SilentExceptRule(Rule):
    rule_id = "R006"
    title = "no-silent-except"
    rationale = ("Silent exception swallows hide exactly the "
                 "data-source faults the pipeline is built to surface "
                 "in its DataQualityReport.")

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        packages = self.option_str_list("packages", ("repro",))
        if not ctx.in_package(*packages):
            return
        visitor = _Visitor(self, ctx)
        visitor.visit(ctx.tree)
        yield from visitor.findings
