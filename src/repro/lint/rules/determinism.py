"""R002 — determinism: a seeded run must replay bit-for-bit.

The study's headline numbers come out of a simulated world; if any code
path draws entropy from ambient sources, the "same seed ⇒ same blocks"
contract breaks silently.  This rule flags, across the whole package:

* calls through the *module-level* RNG (``random.random()``,
  ``random.choice()``, …) — randomness must flow through an injected,
  seeded ``random.Random`` instance (constructing a *seeded* one is
  allowed), including through a module alias created by assignment
  (``r = random; r.random()``);
* ``from random import <fn>`` of anything except ``Random``;
* **unseeded** ``random.Random()`` / ``Random()`` construction — a
  zero-argument ``Random`` seeds itself from OS entropy, so the alias
  it is bound to (``r = random.Random(); r.random()``) is exactly as
  nondeterministic as the module-level RNG;
* wall-clock and OS entropy: ``time.time``/``time.time_ns``,
  ``datetime.now``/``utcnow``/``today``, ``os.urandom``,
  ``uuid.uuid1``/``uuid4``, ``random.SystemRandom``, ``secrets.*``;
* iteration over a ``set`` expression (``for x in {…}``, ``for x in
  set(…)``, comprehensions over either) — set order varies with hash
  seeding across processes, so downstream tx ordering would too.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Set

from repro.lint.context import ModuleContext
from repro.lint.findings import Finding
from repro.lint.registry import Rule, register

#: ``module.attr`` call targets that read ambient entropy or wall-clock.
_FORBIDDEN_ATTRS = {
    ("time", "time"), ("time", "time_ns"), ("time", "monotonic"),
    ("time", "perf_counter"),
    ("datetime", "now"), ("datetime", "utcnow"), ("datetime", "today"),
    ("os", "urandom"),
    ("uuid", "uuid1"), ("uuid", "uuid4"),
    ("random", "SystemRandom"),
}

#: ``random`` module attributes that are fine to touch directly.
_ALLOWED_RANDOM_ATTRS = {"Random"}


class _Visitor(ast.NodeVisitor):
    def __init__(self, rule: "DeterminismRule",
                 ctx: ModuleContext) -> None:
        self.rule = rule
        self.ctx = ctx
        self.findings: List[Finding] = []
        #: local aliases of the ``random`` module (``import random as
        #: r`` — or ``r = random`` later; see :meth:`visit_Assign`)
        self.random_aliases: Set[str] = set()
        self.secrets_aliases: Set[str] = set()
        #: names bound to the ``Random`` class itself
        #: (``from random import Random [as R]``)
        self.random_class_aliases: Set[str] = set()

    def _emit(self, node: ast.AST, message: str) -> None:
        self.findings.append(
            self.ctx.finding(node, self.rule.rule_id, message))

    # -- imports ------------------------------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name == "random":
                self.random_aliases.add(alias.asname or alias.name)
            elif alias.name == "secrets":
                self.secrets_aliases.add(alias.asname or alias.name)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "random":
            for alias in node.names:
                if alias.name == "Random":
                    self.random_class_aliases.add(
                        alias.asname or alias.name)
                elif alias.name not in _ALLOWED_RANDOM_ATTRS:
                    self._emit(node,
                               f"'from random import {alias.name}' "
                               "binds the shared module-level RNG; "
                               "inject a seeded random.Random instead")
        elif node.module == "secrets":
            self._emit(node, "'secrets' draws OS entropy; simulator "
                             "randomness must come from a seeded "
                             "random.Random")
        self.generic_visit(node)

    # -- aliases created by plain assignment --------------------------------

    def visit_Assign(self, node: ast.Assign) -> None:
        value = node.value
        if isinstance(value, ast.Name):
            alias_sets = (self.random_aliases, self.secrets_aliases,
                          self.random_class_aliases)
            for aliases in alias_sets:
                if value.id in aliases:
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            aliases.add(target.id)
        self.generic_visit(node)

    # -- calls --------------------------------------------------------------

    def _is_unseeded_random_ctor(self, node: ast.Call) -> bool:
        if node.args or node.keywords:
            return False
        func = node.func
        if isinstance(func, ast.Name):
            return func.id in self.random_class_aliases
        return (isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id in self.random_aliases
                and func.attr == "Random")

    def visit_Call(self, node: ast.Call) -> None:
        if self._is_unseeded_random_ctor(node):
            self._emit(node,
                       "unseeded Random() draws its seed from OS "
                       "entropy; construct it with an explicit seed "
                       "derived from the scenario seed")
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if isinstance(node.value, ast.Name):
            base, attr = node.value.id, node.attr
            if base in self.random_aliases and \
                    attr not in _ALLOWED_RANDOM_ATTRS:
                self._emit(node,
                           f"module-level 'random.{attr}' is shared "
                           "global state; use an injected seeded "
                           "random.Random")
            elif base in self.secrets_aliases:
                self._emit(node, f"'secrets.{attr}' draws OS entropy; "
                                 "use an injected seeded random.Random")
            elif (base, attr) in _FORBIDDEN_ATTRS:
                self._emit(node,
                           f"'{base}.{attr}' is nondeterministic "
                           "(wall-clock/OS entropy); derive values "
                           "from simulation state or the seed")
        self.generic_visit(node)

    # -- set iteration ------------------------------------------------------

    @staticmethod
    def _is_set_expr(node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and \
                isinstance(node.func, ast.Name) and \
                node.func.id in ("set", "frozenset"):
            return True
        if isinstance(node, ast.BinOp) and \
                isinstance(node.op, (ast.BitOr, ast.BitAnd, ast.Sub)):
            # set algebra (a | b, a & b, a - b) over set expressions
            return _Visitor._is_set_expr(node.left) or \
                _Visitor._is_set_expr(node.right)
        return False

    def _check_iter(self, iter_node: ast.AST) -> None:
        if self._is_set_expr(iter_node):
            self._emit(iter_node,
                       "iterating over a set: order depends on hashing "
                       "and breaks seeded determinism; sort it first "
                       "(e.g. sorted(...))")

    def visit_For(self, node: ast.For) -> None:
        self._check_iter(node.iter)
        self.generic_visit(node)

    def _visit_comprehension(self, node: ast.AST) -> None:
        for comp in getattr(node, "generators", []):
            self._check_iter(comp.iter)
        self.generic_visit(node)

    visit_ListComp = _visit_comprehension
    visit_SetComp = _visit_comprehension
    visit_DictComp = _visit_comprehension
    visit_GeneratorExp = _visit_comprehension


@register
class DeterminismRule(Rule):
    rule_id = "R002"
    title = "determinism"
    rationale = ("Same seed must replay the identical world: no ambient "
                 "entropy, no global RNG, no hash-order iteration.")

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        packages = self.option_str_list("packages", ("repro",))
        if not ctx.in_package(*packages):
            return
        visitor = _Visitor(self, ctx)
        visitor.visit(ctx.tree)
        yield from visitor.findings
