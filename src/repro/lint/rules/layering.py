"""R003 — layering: the measurement layer must stay blind to ground truth.

The reproduction's validity argument (paper Section 3; cf. Chi et al.
2024 on auditing heuristic validity) rests on ``repro.core`` detecting
MEV from *observable* chain data only.  If a heuristic imports simulator
or agent internals it can read ground-truth labels and the measured
precision/recall become meaningless.  Similarly the chain substrate must
not import upward into the measurement layer.

Forbidden edges (importer package → imported package)::

    repro.core      ↛ repro.sim, repro.agents
    repro.analysis  ↛ repro.sim, repro.agents
    repro.chain     ↛ repro.core, repro.engine, repro.analysis,
                      repro.sim, repro.agents, repro.flashbots,
                      repro.stream, repro.serve
    repro.sim       ↛ repro.stream, repro.serve
    repro.stream    ↛ repro.sim, repro.agents, repro.serve
    repro.serve     ↛ repro.sim, repro.agents
    (and nothing serve consumes may import it back: core, engine,
    analysis, chain, faults, reliability, flashbots, agents, dex,
    lending and stream are all forbidden importers of repro.serve —
    serving sits at the top of the measurement stack, consuming
    core + stream, consumed only by the CLI, the bench harness, and
    the package front door)

The ``repro.chain`` edges also keep the read-optimized index
(``repro.chain.index``) a pure substrate service: it may be *used* by
the detection and engine layers, but must never reach back up into
them.

``allow`` lists modules that are exempt as import *targets* (default:
``repro.sim.calendar``, a pure block-height→month mapping with no
ground truth).  Deliberate exceptions — e.g. sensitivity sweeps that
re-run the simulator on purpose — carry a suppression comment instead.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Tuple

from repro.lint.context import ModuleContext
from repro.lint.findings import Finding
from repro.lint.registry import Rule, register

#: (importer package, forbidden imported package)
DEFAULT_EDGES: Tuple[Tuple[str, str], ...] = (
    ("repro.core", "repro.sim"),
    ("repro.core", "repro.agents"),
    ("repro.engine", "repro.sim"),
    ("repro.engine", "repro.agents"),
    ("repro.analysis", "repro.sim"),
    ("repro.analysis", "repro.agents"),
    ("repro.chain", "repro.core"),
    ("repro.chain", "repro.engine"),
    ("repro.chain", "repro.analysis"),
    ("repro.chain", "repro.sim"),
    ("repro.chain", "repro.agents"),
    ("repro.chain", "repro.flashbots"),
    ("repro.chain", "repro.stream"),
    ("repro.chain", "repro.serve"),
    ("repro.sim", "repro.stream"),
    ("repro.sim", "repro.serve"),
    ("repro.stream", "repro.sim"),
    ("repro.stream", "repro.agents"),
    # the serving layer is a pure consumer: it may import core/stream
    # (and the substrate), but no layer it consumes may import it back
    # — StreamEngine publishes through StreamSubscriber precisely so
    # this edge stays one-way — and serve itself stays as blind to
    # simulator ground truth as the detectors it serves.
    ("repro.serve", "repro.sim"),
    ("repro.serve", "repro.agents"),
    ("repro.core", "repro.serve"),
    ("repro.engine", "repro.serve"),
    ("repro.analysis", "repro.serve"),
    ("repro.stream", "repro.serve"),
    ("repro.faults", "repro.serve"),
    ("repro.reliability", "repro.serve"),
    ("repro.flashbots", "repro.serve"),
    ("repro.agents", "repro.serve"),
    ("repro.dex", "repro.serve"),
    ("repro.lending", "repro.serve"),
)

DEFAULT_ALLOW = ("repro.sim.calendar",)


def _in_package(module: str, package: str) -> bool:
    return module == package or module.startswith(package + ".")


def _resolve_relative(ctx_module: str, node: ast.ImportFrom) -> \
        Optional[str]:
    """Absolute dotted target of a (possibly relative) ``from`` import."""
    if node.level == 0:
        return node.module
    parts = ctx_module.split(".")
    # level=1 is "current package": strip the module's own name, then
    # one more component per extra dot.
    strip = node.level
    if len(parts) < strip:
        return node.module
    base = parts[:len(parts) - strip]
    if node.module:
        base.append(node.module)
    return ".".join(base) if base else None


class _Visitor(ast.NodeVisitor):
    def __init__(self, rule: "LayeringRule", ctx: ModuleContext,
                 forbidden: List[str], allow: List[str]) -> None:
        self.rule = rule
        self.ctx = ctx
        self.forbidden = forbidden
        self.allow = allow
        self.findings: List[Finding] = []

    def _check_target(self, node: ast.AST, target: Optional[str],
                      imported_names: Optional[List[str]] = None) -> None:
        if not target:
            return
        candidates = [target]
        if imported_names:
            # ``from repro import sim`` imports the subpackage even
            # though the dotted target is just ``repro``.
            candidates.extend(f"{target}.{name}"
                              for name in imported_names)
        for candidate in candidates:
            if any(_in_package(candidate, allowed)
                   for allowed in self.allow):
                continue
            for package in self.forbidden:
                if _in_package(candidate, package):
                    self.findings.append(self.ctx.finding(
                        node, self.rule.rule_id,
                        f"layering violation: {self.ctx.module} must "
                        f"not import {candidate} (forbidden layer "
                        f"{package}); the measurement/substrate "
                        "boundary keeps heuristics blind to ground "
                        "truth"))
                    return  # one finding per import statement

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self._check_target(node, alias.name)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        target = _resolve_relative(self.ctx.module, node)
        names = [alias.name for alias in node.names
                 if alias.name != "*"]
        self._check_target(node, target, names)
        self.generic_visit(node)


@register
class LayeringRule(Rule):
    rule_id = "R003"
    title = "layering"
    rationale = ("repro.core / repro.analysis must not read simulator "
                 "ground truth; repro.chain must not import upward.")

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        edges: List[Tuple[str, str]] = []
        raw_edges = self.options.get("edges")
        if isinstance(raw_edges, (list, tuple)):
            for entry in raw_edges:
                if isinstance(entry, (list, tuple)) and len(entry) == 2:
                    edges.append((str(entry[0]), str(entry[1])))
        if not edges:
            edges = list(DEFAULT_EDGES)
        allow = self.option_str_list("allow", DEFAULT_ALLOW)
        forbidden = [imported for importer, imported in edges
                     if _in_package(ctx.module, importer)]
        if not forbidden:
            return
        visitor = _Visitor(self, ctx, forbidden, allow)
        visitor.visit(ctx.tree)
        yield from visitor.findings
