"""R004 — event-schema conformance between emitters and heuristics.

The measurement pipeline consumes *only* event logs (see
``repro.chain.events``), so the event dataclasses are the de-facto wire
schema between the simulated contracts and the paper's heuristics.  A
typo'd field on either side fails silently: dataclass defaults mask a
missing value, ``getattr``-style drift shows up as zero detections, not
as an error.  This rule parses the schema straight out of
``repro/chain/events.py`` (no imports — pure AST) and checks both sides:

* **emitters** (anywhere): ``SwapEvent(...)`` constructor calls must use
  keyword arguments only, every keyword must be a declared field, and
  ``address`` (the one non-defaulted coordinate) must be present;
* **readers** (``repro.core.heuristics``): every attribute read off a
  value statically known to be an event instance must name a declared
  field or method.  Bindings are inferred from parameter/variable
  annotations, ``isinstance`` guards, subscripting and iteration over
  annotated containers, and the return annotations of module-local
  helpers — enough to type the paper-style detection code without a
  real type checker.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.lint.context import ModuleContext
from repro.lint.findings import Finding
from repro.lint.registry import Rule, register

DEFAULT_READER_PACKAGES = ("repro.core.heuristics",)
DEFAULT_EVENTS_MODULE = "repro.chain.events"

#: Attributes every object has; never worth flagging.
_OBJECT_ATTRS = {"__class__", "__dict__", "__doc__"}

_LIST_LIKE = {"List", "Sequence", "Iterable", "Iterator", "Set",
              "FrozenSet", "MutableSequence", "Deque", "list", "set",
              "frozenset", "deque"}
_DICT_LIKE = {"Dict", "Mapping", "MutableMapping", "DefaultDict",
              "OrderedDict", "dict", "defaultdict"}
_TUPLE_LIKE = {"Tuple", "tuple"}


# -- minimal structural types -------------------------------------------------

class _Ty:
    pass


class _Event(_Ty):
    def __init__(self, names: Set[str]) -> None:
        self.names = names  # candidate event class names (union)


class _ListOf(_Ty):
    def __init__(self, elem: Optional[_Ty]) -> None:
        self.elem = elem


class _TupleOf(_Ty):
    def __init__(self, elems: List[Optional[_Ty]]) -> None:
        self.elems = elems


class _DictOf(_Ty):
    def __init__(self, key: Optional[_Ty],
                 value: Optional[_Ty]) -> None:
        self.key = key
        self.value = value


def _merge(a: Optional[_Ty], b: Optional[_Ty]) -> Optional[_Ty]:
    if isinstance(a, _Event) and isinstance(b, _Event):
        return _Event(a.names | b.names)
    return a or b


# -- schema extraction --------------------------------------------------------

class EventSchema:
    """Field/method sets per event class, parsed from events.py."""

    def __init__(self, attrs: Dict[str, Set[str]],
                 fields: Dict[str, Set[str]]) -> None:
        self.attrs = attrs    # readable attributes (fields + methods)
        self.fields = fields  # constructor-keyword-eligible fields

    @property
    def class_names(self) -> Set[str]:
        return set(self.attrs)


def load_schema(events_file: Path) -> Optional[EventSchema]:
    try:
        tree = ast.parse(events_file.read_text(encoding="utf-8"))
    except (OSError, SyntaxError):
        return None
    own_fields: Dict[str, Set[str]] = {}
    own_methods: Dict[str, Set[str]] = {}
    non_init: Dict[str, Set[str]] = {}
    bases: Dict[str, List[str]] = {}
    for node in tree.body:
        if not isinstance(node, ast.ClassDef):
            continue
        fields: Set[str] = set()
        methods: Set[str] = set()
        no_init: Set[str] = set()
        for stmt in node.body:
            if isinstance(stmt, ast.AnnAssign) and \
                    isinstance(stmt.target, ast.Name):
                fields.add(stmt.target.id)
                if _is_non_init_field(stmt.value):
                    no_init.add(stmt.target.id)
            elif isinstance(stmt, (ast.FunctionDef,
                                   ast.AsyncFunctionDef)):
                methods.add(stmt.name)
        own_fields[node.name] = fields
        own_methods[node.name] = methods
        non_init[node.name] = no_init
        bases[node.name] = [base.id for base in node.bases
                            if isinstance(base, ast.Name)]

    def resolve(name: str, seen: Set[str]) -> Tuple[Set[str], Set[str],
                                                    Set[str]]:
        if name in seen or name not in own_fields:
            return set(), set(), set()
        seen.add(name)
        fields = set(own_fields[name])
        methods = set(own_methods[name])
        no_init = set(non_init[name])
        for base in bases.get(name, []):
            base_fields, base_methods, base_no_init = \
                resolve(base, seen)
            fields |= base_fields
            methods |= base_methods
            no_init |= base_no_init
        return fields, methods, no_init

    attrs: Dict[str, Set[str]] = {}
    ctor_fields: Dict[str, Set[str]] = {}
    for name in own_fields:
        fields, methods, no_init = resolve(name, set())
        attrs[name] = fields | methods | _OBJECT_ATTRS
        ctor_fields[name] = fields - no_init
    return EventSchema(attrs, ctor_fields)


def _is_non_init_field(value: Optional[ast.AST]) -> bool:
    """True for ``field(default=..., init=False)`` declarations."""
    if not isinstance(value, ast.Call):
        return False
    if not (isinstance(value.func, ast.Name) and
            value.func.id == "field"):
        return False
    return any(kw.arg == "init" and
               isinstance(kw.value, ast.Constant) and
               kw.value.value is False
               for kw in value.keywords)


# -- module analysis ----------------------------------------------------------

class _ModuleAnalysis:
    """Per-module import map and local helper return types."""

    def __init__(self, ctx: ModuleContext, schema: EventSchema,
                 events_module: str) -> None:
        self.schema = schema
        #: local name → event class name in the schema
        self.event_names: Dict[str, str] = {}
        self.returns: Dict[str, Optional[_Ty]] = {}
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom) and \
                    node.module == events_module:
                for alias in node.names:
                    if alias.name in schema.class_names:
                        self.event_names[alias.asname or alias.name] = \
                            alias.name
        for node in ctx.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.returns[node.name] = self.parse_annotation(
                    node.returns)

    # annotation AST → structural type ------------------------------------

    def parse_annotation(self, node: Optional[ast.AST]) -> Optional[_Ty]:
        if node is None:
            return None
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            try:
                node = ast.parse(node.value, mode="eval").body
            except SyntaxError:
                return None
        if isinstance(node, ast.Name):
            if node.id in self.event_names:
                return _Event({self.event_names[node.id]})
            return None
        if isinstance(node, ast.Attribute):
            # typing.List[...] etc.: treat by attribute name below
            return None
        if isinstance(node, ast.Subscript):
            base = node.value
            base_name = base.id if isinstance(base, ast.Name) else (
                base.attr if isinstance(base, ast.Attribute) else "")
            inner = node.slice
            if base_name in _LIST_LIKE:
                return _ListOf(self.parse_annotation(inner))
            if base_name in _TUPLE_LIKE:
                elts = inner.elts if isinstance(inner, ast.Tuple) \
                    else [inner]
                return _TupleOf([self.parse_annotation(e)
                                 for e in elts])
            if base_name in _DICT_LIKE:
                if isinstance(inner, ast.Tuple) and \
                        len(inner.elts) == 2:
                    return _DictOf(self.parse_annotation(inner.elts[0]),
                                   self.parse_annotation(inner.elts[1]))
                return None
            if base_name == "Optional":
                return self.parse_annotation(inner)
            if base_name == "Union":
                elts = inner.elts if isinstance(inner, ast.Tuple) \
                    else [inner]
                merged: Optional[_Ty] = None
                for elt in elts:
                    merged = _merge(merged,
                                    self.parse_annotation(elt))
                return merged
        return None


class _FunctionChecker:
    """Flow-insensitive event-typing of one function body."""

    def __init__(self, rule: "EventSchemaRule", ctx: ModuleContext,
                 analysis: _ModuleAnalysis,
                 node: ast.FunctionDef) -> None:
        self.rule = rule
        self.ctx = ctx
        self.analysis = analysis
        self.node = node
        self.bindings: Dict[str, _Ty] = {}
        self.findings: List[Finding] = []

    # -- expression typing -------------------------------------------------

    def type_of(self, expr: ast.AST) -> Optional[_Ty]:
        if isinstance(expr, ast.Name):
            return self.bindings.get(expr.id)
        if isinstance(expr, ast.Subscript):
            container = self.type_of(expr.value)
            if isinstance(container, _ListOf):
                return container.elem
            if isinstance(container, _DictOf):
                return container.value
            return None
        if isinstance(expr, ast.Call):
            return self._type_of_call(expr)
        if isinstance(expr, ast.IfExp):
            return _merge(self.type_of(expr.body),
                          self.type_of(expr.orelse))
        return None

    def _type_of_call(self, call: ast.Call) -> Optional[_Ty]:
        func = call.func
        if isinstance(func, ast.Name):
            if func.id in self.analysis.event_names:
                return _Event({self.analysis.event_names[func.id]})
            if func.id in ("sorted", "list", "reversed") and call.args:
                inner = self.type_of(call.args[0])
                elem = self._elem_of(inner)
                return _ListOf(elem) if elem is not None else inner
            if func.id == "enumerate" and call.args:
                elem = self._elem_of(self.type_of(call.args[0]))
                return _ListOf(_TupleOf([None, elem]))
            return self.analysis.returns.get(func.id)
        if isinstance(func, ast.Attribute):
            owner = self.type_of(func.value)
            if isinstance(owner, _DictOf):
                if func.attr == "items":
                    return _ListOf(_TupleOf([owner.key, owner.value]))
                if func.attr == "values":
                    return _ListOf(owner.value)
                if func.attr == "keys":
                    return _ListOf(owner.key)
                if func.attr == "get":
                    return owner.value
        return None

    @staticmethod
    def _elem_of(container: Optional[_Ty]) -> Optional[_Ty]:
        if isinstance(container, _ListOf):
            return container.elem
        if isinstance(container, _DictOf):
            return container.key
        return None

    # -- binding collection ------------------------------------------------

    def _bind(self, name: str, ty: Optional[_Ty]) -> None:
        if ty is not None:
            existing = self.bindings.get(name)
            merged = _merge(existing, ty)
            if merged is not None:
                self.bindings[name] = merged

    def _bind_target(self, target: ast.AST, ty: Optional[_Ty]) -> None:
        if isinstance(target, ast.Name):
            self._bind(target.id, ty)
        elif isinstance(target, (ast.Tuple, ast.List)) and \
                isinstance(ty, _TupleOf):
            for i, elt in enumerate(target.elts):
                if i < len(ty.elems):
                    self._bind_target(elt, ty.elems[i])

    def _bind_isinstance(self, test: ast.AST) -> None:
        for node in ast.walk(test):
            if not (isinstance(node, ast.Call) and
                    isinstance(node.func, ast.Name) and
                    node.func.id == "isinstance" and
                    len(node.args) == 2 and
                    isinstance(node.args[0], ast.Name)):
                continue
            classes = node.args[1]
            names = classes.elts if isinstance(classes, ast.Tuple) \
                else [classes]
            event_classes = {
                self.analysis.event_names[name.id]
                for name in names
                if isinstance(name, ast.Name) and
                name.id in self.analysis.event_names}
            if event_classes:
                self._bind(node.args[0].id, _Event(event_classes))

    def collect_bindings(self) -> None:
        for arg in (list(self.node.args.posonlyargs) +
                    list(self.node.args.args) +
                    list(self.node.args.kwonlyargs)):
            self._bind(arg.arg,
                       self.analysis.parse_annotation(arg.annotation))
        # Two passes: assignments may reference names bound later in
        # source order (rare, but cheap to cover).
        for _ in range(2):
            for node in ast.walk(self.node):
                if isinstance(node, ast.AnnAssign) and \
                        isinstance(node.target, ast.Name):
                    self._bind(node.target.id,
                               self.analysis.parse_annotation(
                                   node.annotation))
                elif isinstance(node, ast.Assign) and \
                        len(node.targets) == 1:
                    self._bind_target(node.targets[0],
                                      self.type_of(node.value))
                elif isinstance(node, ast.For):
                    self._bind_target(
                        node.target,
                        self._elem_of(self.type_of(node.iter)))
                elif isinstance(node, ast.comprehension):
                    self._bind_target(
                        node.target,
                        self._elem_of(self.type_of(node.iter)))
                    for if_test in node.ifs:
                        self._bind_isinstance(if_test)
                elif isinstance(node, (ast.If, ast.While)):
                    self._bind_isinstance(node.test)
                elif isinstance(node, ast.Assert):
                    self._bind_isinstance(node.test)

    # -- attribute checking -------------------------------------------------

    def check_attributes(self) -> None:
        for node in ast.walk(self.node):
            if not isinstance(node, ast.Attribute):
                continue
            if not isinstance(node.value, ast.Name):
                continue
            bound = self.bindings.get(node.value.id)
            if not isinstance(bound, _Event):
                continue
            valid = set()
            for class_name in bound.names:
                valid |= self.analysis.schema.attrs.get(class_name,
                                                        set())
            if node.attr not in valid:
                classes = " | ".join(sorted(bound.names))
                self.findings.append(self.ctx.finding(
                    node, self.rule.rule_id,
                    f"event-schema violation: '{node.value.id}.{node.attr}'"
                    f" reads a field not declared on {classes} in "
                    "repro/chain/events.py"))


# -- the rule -----------------------------------------------------------------

@register
class EventSchemaRule(Rule):
    rule_id = "R004"
    title = "event-schema"
    rationale = ("Heuristics may only read declared EventLog fields; "
                 "emitters must construct events with declared, "
                 "keyword-only fields.")

    def __init__(self, options: Dict[str, object]) -> None:
        super().__init__(options)
        self._schema_cache: Dict[Path, Optional[EventSchema]] = {}

    def _schema_for(self, ctx: ModuleContext) -> Optional[EventSchema]:
        path: Optional[Path] = None
        if ctx.config.events_path:
            path = Path(ctx.config.events_path)
        elif ctx.src_root is not None:
            events_module = self._events_module()
            path = ctx.src_root.joinpath(
                *events_module.split(".")).with_suffix(".py")
        if path is None or not path.is_file():
            return None
        resolved = path.resolve()
        if resolved not in self._schema_cache:
            self._schema_cache[resolved] = load_schema(resolved)
        return self._schema_cache[resolved]

    def _events_module(self) -> str:
        value = self.options.get("events_module")
        return str(value) if value else DEFAULT_EVENTS_MODULE

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if ctx.module == self._events_module():
            return  # the schema itself
        schema = self._schema_for(ctx)
        if schema is None:
            return
        analysis = _ModuleAnalysis(ctx, schema, self._events_module())
        if not analysis.event_names:
            return
        yield from self._check_constructors(ctx, schema, analysis)
        reader_packages = self.option_str_list(
            "reader_packages", DEFAULT_READER_PACKAGES)
        if ctx.in_package(*reader_packages):
            yield from self._check_readers(ctx, analysis)

    def _check_constructors(self, ctx: ModuleContext,
                            schema: EventSchema,
                            analysis: _ModuleAnalysis,
                            ) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not (isinstance(node, ast.Call) and
                    isinstance(node.func, ast.Name) and
                    node.func.id in analysis.event_names):
                continue
            class_name = analysis.event_names[node.func.id]
            fields = schema.fields.get(class_name, set())
            if node.args:
                yield ctx.finding(
                    node, self.rule_id,
                    f"{class_name}(...) uses positional arguments; "
                    "event fields must be passed by keyword so schema "
                    "changes cannot silently reorder values")
            has_star_kwargs = False
            seen = set()
            for keyword in node.keywords:
                if keyword.arg is None:
                    has_star_kwargs = True
                    continue
                seen.add(keyword.arg)
                if keyword.arg not in fields:
                    yield ctx.finding(
                        keyword.value, self.rule_id,
                        f"{class_name}(...) sets undeclared field "
                        f"'{keyword.arg}'; declare it in "
                        "repro/chain/events.py or fix the typo")
            if "address" not in seen and not has_star_kwargs and \
                    not node.args:
                yield ctx.finding(
                    node, self.rule_id,
                    f"{class_name}(...) omits 'address' (the emitting "
                    "contract); every event must carry its origin")

    def _check_readers(self, ctx: ModuleContext,
                       analysis: _ModuleAnalysis) -> Iterator[Finding]:
        for node in ctx.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                checker = _FunctionChecker(self, ctx, analysis, node)
                checker.collect_bindings()
                checker.check_attributes()
                yield from checker.findings
