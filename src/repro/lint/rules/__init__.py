"""Built-in lint rules; importing this package registers them all."""

from repro.lint.rules.wei_safety import WeiSafetyRule
from repro.lint.rules.determinism import DeterminismRule
from repro.lint.rules.layering import LayeringRule
from repro.lint.rules.event_schema import EventSchemaRule
from repro.lint.rules.api_hygiene import ApiHygieneRule
from repro.lint.rules.silent_except import SilentExceptRule
from repro.lint.rules.banned_api import BannedApiRule

__all__ = [
    "WeiSafetyRule",
    "DeterminismRule",
    "LayeringRule",
    "EventSchemaRule",
    "ApiHygieneRule",
    "SilentExceptRule",
    "BannedApiRule",
]
