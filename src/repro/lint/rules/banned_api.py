"""R007 — banned APIs: names removed after deprecation stay removed.

A deprecation cycle only ends when the old spelling cannot quietly
reappear.  ``shield_sources`` (the PR 2 name for
:func:`repro.reliability.shield`) warned for two releases and was
deleted in 1.5.0; this rule flags any definition, import, or use of a
banned identifier so a rebase or copy-paste cannot resurrect it.  The
banned list is configuration (``[tool.repro-lint.rules.R007]
banned``), so future removals get the same guard by adding one string.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Set

from repro.lint.context import ModuleContext
from repro.lint.findings import Finding
from repro.lint.registry import Rule, register

DEFAULT_BANNED = ("shield_sources",)


@register
class BannedApiRule(Rule):
    rule_id = "R007"
    title = "banned-api"
    rationale = ("Identifiers removed after their deprecation cycle "
                 "must not be redefined, imported, or referenced.")

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if ctx.in_package("repro.lint"):
            # the linter's own default list names the banned
            # identifiers, which is not a use of them
            return
        banned = set(self.option_str_list("banned", DEFAULT_BANNED))
        if not banned:
            return
        for node in ast.walk(ctx.tree):
            name = _referenced_name(node, banned)
            if name is not None:
                yield ctx.finding(
                    node, self.rule_id,
                    f"'{name}' was removed after its deprecation "
                    f"cycle and must not come back; use its "
                    f"documented replacement")


def _referenced_name(node: ast.AST,
                     banned: Set[str]) -> Optional[str]:
    """The banned identifier this node defines/imports/uses, if any."""
    if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                         ast.ClassDef)) and node.name in banned:
        return node.name
    if isinstance(node, ast.Name) and node.id in banned:
        return node.id
    if isinstance(node, ast.Attribute) and node.attr in banned:
        return node.attr
    if isinstance(node, (ast.Import, ast.ImportFrom)):
        for alias in node.names:
            if alias.name in banned or \
                    (alias.asname or "") in banned:
                return alias.name
    if isinstance(node, ast.Constant) and \
            isinstance(node.value, str) and node.value in banned:
        # catches __all__ entries and getattr-by-string smuggling
        return node.value
    return None
