"""Per-module lint context shared by every rule.

A :class:`ModuleContext` bundles everything a rule needs to inspect one
file: the parsed AST, the dotted module name (so layer rules can reason
about package membership), the source root (so cross-file rules like the
event-schema check can locate sibling modules), and a finding factory
that stamps path/line automatically.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional

from repro.lint.config import LintConfig
from repro.lint.findings import ERROR, Finding
from repro.lint.suppress import SuppressionIndex


def module_name_for(path: Path,
                    src_root: Optional[Path] = None) -> str:
    """Dotted module name for ``path``.

    If ``src_root`` is known, the name is the path relative to it.  As a
    fallback, parent directories containing ``__init__.py`` are treated
    as enclosing packages — this makes fixture trees in tests resolve
    without a ``src/`` layout.
    """
    resolved = path.resolve()
    if src_root is not None:
        try:
            relative = resolved.relative_to(src_root.resolve())
        except ValueError:
            relative = None
        if relative is not None:
            parts = list(relative.with_suffix("").parts)
            if parts and parts[-1] == "__init__":
                parts.pop()
            return ".".join(parts)
    parts = [resolved.with_suffix("").name]
    if parts == ["__init__"]:
        parts = []
    directory = resolved.parent
    while (directory / "__init__.py").is_file():
        parts.insert(0, directory.name)
        directory = directory.parent
    return ".".join(parts)


def find_src_root(path: Path) -> Optional[Path]:
    """Nearest ancestor directory that is a package import root.

    Walks upward from ``path`` until the parent directory no longer
    contains ``__init__.py``; that parent is where ``import repro``
    would resolve from.
    """
    directory = path.resolve()
    if directory.is_file():
        directory = directory.parent
    if not (directory / "__init__.py").is_file():
        return directory
    while (directory / "__init__.py").is_file():
        directory = directory.parent
    return directory


@dataclass
class ModuleContext:
    """One file under analysis."""

    path: Path
    display_path: str
    module: str
    source: str
    tree: ast.Module
    suppressions: SuppressionIndex
    config: LintConfig
    src_root: Optional[Path] = None
    findings: List[Finding] = field(default_factory=list)

    def in_package(self, *packages: str) -> bool:
        """True when this module lives in any of the dotted packages."""
        for package in packages:
            if self.module == package or \
                    self.module.startswith(package + "."):
                return True
        return False

    def finding(self, node: ast.AST, rule_id: str, message: str,
                severity: str = ERROR) -> Finding:
        return Finding(path=self.display_path,
                       line=getattr(node, "lineno", 1),
                       col=getattr(node, "col_offset", 0),
                       rule_id=rule_id, severity=severity,
                       message=message)
