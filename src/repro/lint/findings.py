"""The :class:`Finding` record every lint rule emits.

A finding pins a rule violation to a file and line so reporters (and CI
logs) can point straight at the offending expression.  Findings are plain
data: rules produce them, the engine filters suppressed ones, reporters
render them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Tuple

#: Severity levels, ordered from most to least severe.
ERROR = "error"
WARNING = "warning"

_SEVERITY_ORDER = {ERROR: 0, WARNING: 1}


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    path: str  # file path as given to the engine (relative preferred)
    line: int  # 1-based line of the offending node
    rule_id: str  # e.g. "R001"
    severity: str = ERROR
    message: str = ""
    col: int = field(default=0, compare=False)

    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule_id)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-reporter representation (stable key order)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule_id,
            "severity": self.severity,
            "message": self.message,
        }

    def render(self) -> str:
        """``path:line:col: R00X severity: message`` (clickable in most
        terminals and CI logs)."""
        return (f"{self.path}:{self.line}:{self.col}: "
                f"{self.rule_id} {self.severity}: {self.message}")


def severity_rank(severity: str) -> int:
    """Lower is more severe; unknown severities sort last."""
    return _SEVERITY_ORDER.get(severity, len(_SEVERITY_ORDER))
