"""Rule registry: rules self-register via the :func:`register` decorator.

Keeping registration declarative means the engine, the CLI's
``--list-rules`` output, and the docs all derive from one table, and a
new rule is one new module under ``repro.lint.rules``.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Iterator, List, Type

from repro.lint.context import ModuleContext
from repro.lint.findings import ERROR, Finding

_REGISTRY: Dict[str, Type["Rule"]] = {}


class Rule:
    """Base class for lint rules.

    Subclasses set ``rule_id``/``title``/``rationale`` and implement
    :meth:`check`, yielding findings for one module.  A rule instance is
    created once per engine run, so per-run caches (e.g. the parsed
    event schema) can live on ``self``.
    """

    rule_id: str = ""
    title: str = ""
    rationale: str = ""
    default_severity: str = ERROR

    def __init__(self, options: Dict[str, object]) -> None:
        self.options = options

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        raise NotImplementedError

    def option_str_list(self, key: str,
                        default: Iterable[str] = ()) -> List[str]:
        value = self.options.get(key)
        if value is None:
            return list(default)
        if isinstance(value, str):
            return [value]
        if isinstance(value, (list, tuple)):
            return [str(item) for item in value]
        return list(default)


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not cls.rule_id:
        raise ValueError(f"rule {cls.__name__} has no rule_id")
    if cls.rule_id in _REGISTRY:
        raise ValueError(f"duplicate rule id {cls.rule_id}")
    _REGISTRY[cls.rule_id] = cls
    return cls


def all_rules() -> Dict[str, Type[Rule]]:
    """Registered rules keyed by id (import side effect populates it)."""
    # Importing the rules package triggers each rule module's register().
    import repro.lint.rules  # noqa: F401  (registration side effect)
    return dict(_REGISTRY)


def make_rules(enabled: Iterable[str],
               options_for: Callable[[str], Dict[str, object]],
               ) -> List[Rule]:
    """Instantiate the enabled subset of registered rules, in id order."""
    registry = all_rules()
    rules: List[Rule] = []
    for rule_id in sorted(set(enabled)):
        cls = registry.get(rule_id)
        if cls is not None:
            rules.append(cls(options_for(rule_id)))
    return rules
