"""Content-hash summary cache for incremental ``lint --deep`` runs.

Each module's :class:`~repro.lint.flow.summary.ModuleSummary` is stored
as JSON under ``<cache_dir>/<sha256(source)>.json``.  A cache hit means
the file's *bytes* are unchanged, so its summary is valid regardless of
mtimes, clones, or CI checkouts.  The interprocedural fixpoints always
re-run — they are cheap; parsing and the local dataflow are not.

Stale entries (other schema versions, unreadable JSON) are treated as
misses and overwritten.  The cache directory is created lazily and is
safe to delete at any time.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional

from repro.lint.flow.summary import FLOW_SCHEMA, ModuleSummary


def source_hash(source: str) -> str:
    import hashlib

    return hashlib.sha256(source.encode("utf-8")).hexdigest()


class SummaryCache:
    """Disk-backed summary store; ``directory=None`` disables caching."""

    def __init__(self, directory: Optional[Path]) -> None:
        self.directory = Path(directory) if directory else None
        self.hits = 0
        self.misses = 0

    def _entry(self, content_hash: str) -> Optional[Path]:
        if self.directory is None:
            return None
        return self.directory / f"{content_hash}.json"

    def load(self, content_hash: str) -> Optional[ModuleSummary]:
        entry = self._entry(content_hash)
        if entry is None or not entry.is_file():
            self.misses += 1
            return None
        try:
            row = json.loads(entry.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            self.misses += 1
            return None
        summary = ModuleSummary.from_dict(row) \
            if isinstance(row, dict) else None
        if summary is None:
            self.misses += 1
            return None
        self.hits += 1
        return summary

    def store(self, summary: ModuleSummary) -> None:
        entry = self._entry(summary.content_hash)
        if entry is None:
            return
        try:
            entry.parent.mkdir(parents=True, exist_ok=True)
            payload = summary.to_dict()
            payload["schema"] = FLOW_SCHEMA
            entry.write_text(json.dumps(payload, sort_keys=True),
                             encoding="utf-8")
        except OSError:
            # A read-only or full cache dir must never fail the lint
            # run itself; the summary was already computed in memory.
            return
