"""Project-wide call graph over the module summaries.

Resolution is best-effort and *over-approximate* — exactly what the
safety analyzers want (a missed edge hides a bug; a spurious edge at
worst costs a review):

* ``name`` calls resolve through the module's import map or to a local
  definition (calling a class resolves to its ``__init__``);
* ``self.meth()`` resolves against the caller's class, its project
  bases (inherited methods), and every transitive subclass override
  (dynamic dispatch);
* ``obj.meth()`` uses the receiver hint recorded by the summarizer —
  a local ``obj = ClassName(...)`` binding or a module alias — and
  falls back to *every* project method of that name (class-hierarchy
  analysis) when the receiver is unknown;
* calls with no project target (stdlib, builtins) resolve to nothing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.lint.flow.project import Project, qualname, split_qualname
from repro.lint.flow.summary import CallSite


def _class_of(caller_key: str) -> Optional[str]:
    if "." in caller_key:
        return caller_key.split(".", 1)[0]
    return None


def _transitive_subclasses(project: Project, module: str,
                           cls: str) -> List[Tuple[str, str]]:
    out: List[Tuple[str, str]] = []
    seen = {(module, cls)}
    stack = [cls]
    while stack:
        name = stack.pop()
        for sub_mod, sub_cls in project.subclasses_of(name):
            if (sub_mod, sub_cls) in seen:
                continue
            seen.add((sub_mod, sub_cls))
            out.append((sub_mod, sub_cls))
            stack.append(sub_cls)
    return out


def _methods_named(project: Project, module: str, cls: str,
                   method: str) -> List[str]:
    """Dispatch set for ``<cls instance>.<method>()``."""
    targets = [name for name in project.class_methods(module, cls)
               if split_qualname(name)[1].endswith(f".{method}")]
    for sub_mod, sub_cls in _transitive_subclasses(project, module,
                                                   cls):
        candidate = qualname(sub_mod, f"{sub_cls}.{method}")
        if candidate in project.functions and \
                candidate not in targets:
            targets.append(candidate)
    return targets


def _resolve_dotted(project: Project, dotted: str,
                    method: Optional[str] = None) -> List[str]:
    """Resolve an import target, optionally with a trailing call."""
    if method is None:
        module, _, name = dotted.rpartition(".")
        if module in project.modules:
            summary = project.modules[module]
            if name in summary.functions:
                return [qualname(module, name)]
            if name in summary.classes:
                init = qualname(module, f"{name}.__init__")
                return [init] if init in project.functions else []
        return []
    # dotted names a module (``import repro.sim.world as w; w.build()``)
    # or a class (``from x import Mempool; Mempool.ordered``).
    if dotted in project.modules:
        summary = project.modules[dotted]
        if method in summary.functions:
            return [qualname(dotted, method)]
        if method in summary.classes:
            init = qualname(dotted, f"{method}.__init__")
            return [init] if init in project.functions else []
        return []
    module, _, name = dotted.rpartition(".")
    if module in project.modules and \
            name in project.modules[module].classes:
        return _methods_named(project, module, name, method)
    return []


def resolve_site(project: Project, caller: str,
                 site: CallSite) -> List[str]:
    """Project qualnames a call site may dispatch to (possibly empty)."""
    module, caller_key = split_qualname(caller)
    summary = project.modules.get(module)
    if summary is None:
        return []
    if site.kind == "name":
        if site.recv is not None:
            resolved = _resolve_dotted(project, site.recv)
            if resolved:
                return resolved
        if site.func in summary.functions:
            return [qualname(module, site.func)]
        if site.func in summary.classes:
            init = qualname(module, f"{site.func}.__init__")
            return [init] if init in project.functions else []
        return []
    if site.kind in ("self", "super"):
        cls = _class_of(caller_key)
        if cls is None:
            return []
        if site.kind == "super":
            info = summary.classes.get(cls, {})
            targets: List[str] = []
            for base in info.get("bases", []):
                for base_mod in project.classes.get(base, []):
                    targets.extend(_methods_named(
                        project, base_mod, base, site.func))
            return targets
        return _methods_named(project, module, cls, site.func)
    # attr call
    if site.recv is not None:
        if site.recv in project.classes:
            for cls_mod in project.classes[site.recv]:
                targets = _methods_named(project, cls_mod, site.recv,
                                         site.func)
                if targets:
                    return targets
            return []
        if "." in site.recv or site.recv in project.modules:
            return _resolve_dotted(project, site.recv, site.func)
        return []
    # Unknown receiver: class-hierarchy fallback over method names.
    return list(project.methods_by_name.get(site.func, []))


@dataclass
class CallGraph:
    """Resolved edges: caller qualname → [(call index, callee)]."""

    project: Project
    edges: Dict[str, List[Tuple[int, str]]] = field(
        default_factory=dict)

    def callees(self, caller: str) -> List[Tuple[int, str]]:
        return self.edges.get(caller, [])

    def reachable_from(self, roots: List[str],
                       ) -> Dict[str, Optional[str]]:
        """BFS closure; maps each reachable qualname → its discoverer
        (``None`` for roots), so findings can print a witness path."""
        parent: Dict[str, Optional[str]] = {}
        queue: List[str] = []
        for root in roots:
            if root in self.project.functions and root not in parent:
                parent[root] = None
                queue.append(root)
        head = 0
        while head < len(queue):
            current = queue[head]
            head += 1
            for _, callee in self.callees(current):
                if callee not in parent:
                    parent[callee] = current
                    queue.append(callee)
        return parent

    def witness_path(self, parent: Dict[str, Optional[str]],
                     target: str, limit: int = 6) -> str:
        chain = [target]
        node = parent.get(target)
        while node is not None and len(chain) < limit:
            chain.append(node)
            node = parent.get(node)
        return " <- ".join(chain)


def build_call_graph(project: Project) -> CallGraph:
    graph = CallGraph(project=project)
    for caller, fn in project.functions.items():
        resolved: List[Tuple[int, str]] = []
        for index, site in enumerate(fn.calls):
            for callee in resolve_site(project, caller, site):
                resolved.append((index, callee))
        if resolved:
            graph.edges[caller] = resolved
    return graph
