"""R101 — interprocedural determinism taint.

The syntactic R002 bans *calling* nondeterminism sources in simulator
packages.  R101 asks the sharper question: does a nondeterministic
value **flow into a measurement artifact** — a block hash, a detection
row, a checkpoint payload, or the bench JSON?  Those sinks define the
paper's numbers; a wall-clock read that only feeds a log line is
tolerable, one that feeds ``hash_of`` is corruption.

The analysis is context-insensitive and summary-based.  A global
fixpoint labels every function with

* ``rt`` — the set of nondeterminism source descriptions its return
  value may carry regardless of arguments, and
* ``pt`` — the parameter indices its return value passes through,

then every call site whose callee is a configured *sink* has each
argument's taint evaluated in the caller's summary.  Functions on the
sanctioned list (e.g. the bench clock, which measures wall time *on
purpose* and never feeds block state) are treated as clean.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.lint.findings import ERROR, Finding
from repro.lint.flow.callgraph import CallGraph, resolve_site
from repro.lint.flow.project import Project, split_qualname
from repro.lint.flow.summary import DIRECT, FunctionSummary

RULE_ID = "R101"

#: Builtins that return a value derived from their arguments; taint
#: passes straight through them.
PASSTHROUGH_BUILTINS = {
    "sorted", "list", "tuple", "dict", "set", "frozenset", "str",
    "int", "float", "bool", "bytes", "repr", "abs", "round", "min",
    "max", "sum", "len", "enumerate", "zip", "reversed", "format",
    "next", "iter", "map", "filter", "divmod", "hash",
}

#: Sinks flagged when no configuration overrides them: block/state
#: hashing, detection-row emission, checkpoint payloads, bench JSON.
DEFAULT_SINKS = (
    "hash_of",
    "Checkpoint.save",
    "write_report",
    "dump_jsonl",
)

#: Functions whose nondeterminism is sanctioned by design.
DEFAULT_SANCTIONED = (
    "repro.bench.harness:_clock",
)


class TaintAnalysis:
    """Global returns-taint fixpoint + sink-argument evaluation."""

    def __init__(self, project: Project, graph: CallGraph,
                 sinks: Tuple[str, ...] = DEFAULT_SINKS,
                 sanctioned: Tuple[str, ...] = DEFAULT_SANCTIONED,
                 ) -> None:
        self.project = project
        self.graph = graph
        self.sink_names = {s for s in sinks if ":" not in s}
        self.sink_quals = {s for s in sinks if ":" in s}
        self.sanctioned = set(sanctioned)
        #: qualname → source descriptions its return may carry
        self.rt: Dict[str, Set[str]] = {}
        #: qualname → param indices passed through to the return
        self.pt: Dict[str, Set[int]] = {}

    # -- fixpoint -----------------------------------------------------------

    def run(self) -> None:
        for name in self.project.functions:
            self.rt[name] = set()
            self.pt[name] = set()
        changed = True
        rounds = 0
        while changed and rounds < 50:
            changed = False
            rounds += 1
            for name, fn in self.project.functions.items():
                if name in self.sanctioned:
                    continue
                sources, params = self._eval_tokens(
                    name, fn, fn.return_tokens, set())
                if not sources <= self.rt[name]:
                    self.rt[name] |= sources
                    changed = True
                if not params <= self.pt[name]:
                    self.pt[name] |= params
                    changed = True

    def _source_label(self, fn: FunctionSummary) -> str:
        if fn.sources:
            first = fn.sources[0]
            return f"{first['detail']} at line {first['lineno']}"
        return "nondeterminism source"

    def _arg_tokens(self, fn: FunctionSummary, site_index: int,
                    callee: FunctionSummary,
                    param_index: int) -> Optional[List[str]]:
        """Tokens of the argument bound to ``callee``'s parameter."""
        site = fn.calls[site_index]
        position = param_index
        if callee.is_method and site.kind in ("self", "attr", "super"):
            if param_index == 0:
                return None  # the receiver itself; not tracked
            position = param_index - 1
        if position < len(site.args):
            return site.args[position]
        if param_index < len(callee.params):
            return site.kwargs.get(callee.params[param_index])
        return None

    def _eval_tokens(self, name: str, fn: FunctionSummary,
                     tokens: List[str],
                     visiting: Set[Tuple[str, int]],
                     ) -> Tuple[Set[str], Set[int]]:
        """(source descriptions, passthrough params) a value carries."""
        sources: Set[str] = set()
        params: Set[int] = set()
        for token in tokens:
            if token == DIRECT:
                sources.add(self._source_label(fn))
            elif token.startswith("P"):
                params.add(int(token[1:]))
            elif token.startswith("C"):
                index = int(token[1:])
                if (name, index) in visiting or \
                        index >= len(fn.calls):
                    continue
                call_sources, call_params = self._eval_call(
                    name, fn, index, visiting | {(name, index)})
                sources |= call_sources
                params |= call_params
        return sources, params

    def _eval_call(self, name: str, fn: FunctionSummary, index: int,
                   visiting: Set[Tuple[str, int]],
                   ) -> Tuple[Set[str], Set[int]]:
        """Taint of the *result* of call site ``index`` in ``fn``."""
        site = fn.calls[index]
        sources: Set[str] = set()
        params: Set[int] = set()
        callees = resolve_site(self.project, name, site)
        if not callees:
            if site.kind == "name" and \
                    site.func in PASSTHROUGH_BUILTINS:
                for arg in site.args:
                    s, p = self._eval_tokens(name, fn, arg, visiting)
                    sources |= s
                    params |= p
            return sources, params
        for callee_name in callees:
            if callee_name in self.sanctioned:
                continue
            callee = self.project.functions[callee_name]
            if self.rt.get(callee_name):
                short = split_qualname(callee_name)[1]
                for detail in self.rt[callee_name]:
                    sources.add(f"{detail} via {short}()")
            for param_index in self.pt.get(callee_name, ()):
                arg = self._arg_tokens(fn, index, callee, param_index)
                if arg:
                    s, p = self._eval_tokens(name, fn, arg, visiting)
                    sources |= s
                    params |= p
        return sources, params

    # -- sink pass ----------------------------------------------------------

    def _sink_label(self, name: str, site_index: int) -> Optional[str]:
        fn = self.project.functions[name]
        site = fn.calls[site_index]
        if site.func in self.sink_names:
            return site.func
        for callee in resolve_site(self.project, name, site):
            _, callee_key = split_qualname(callee)
            if callee in self.sink_quals or \
                    callee_key in self.sink_names or \
                    callee_key.split(".")[-1] in self.sink_names:
                return callee_key
        # A method sink configured as ``Class.meth`` should match even
        # when the receiver could not be resolved to a project class.
        for sink in self.sink_names:
            if "." in sink and sink.split(".")[-1] == site.func:
                return sink
        return None

    def findings(self) -> List[Finding]:
        out: List[Finding] = []
        for name, fn in self.project.functions.items():
            if name in self.sanctioned:
                continue
            module, _ = split_qualname(name)
            summary = self.project.modules[module]
            for index, site in enumerate(fn.calls):
                sink = self._sink_label(name, index)
                if sink is None:
                    continue
                tainted: Set[str] = set()
                for arg in site.args:
                    s, _ = self._eval_tokens(name, fn, arg, set())
                    tainted |= s
                for arg in site.kwargs.values():
                    s, _ = self._eval_tokens(name, fn, arg, set())
                    tainted |= s
                if not tainted:
                    continue
                detail = "; ".join(sorted(tainted))
                out.append(Finding(
                    path=summary.path, line=site.lineno,
                    rule_id=RULE_ID, severity=ERROR,
                    message=(f"nondeterministic value flows into "
                             f"sink '{sink}' in {fn.name}() "
                             f"[{detail}] — measurement artifacts "
                             "must be reproducible from the seed"),
                ))
        return out


def analyze(project: Project, graph: CallGraph,
            options: Optional[dict] = None) -> List[Finding]:
    options = options or {}
    sinks = tuple(options.get("sinks", DEFAULT_SINKS))
    sanctioned = tuple(options.get("sanctioned", DEFAULT_SANCTIONED))
    analysis = TaintAnalysis(project, graph, sinks=sinks,
                             sanctioned=sanctioned)
    analysis.run()
    return analysis.findings()
