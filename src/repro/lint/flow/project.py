"""Whole-program view: load, summarize, and index every module.

:class:`Project` walks the same file set the per-file engine lints,
parses each module once, and turns it into a cached
:class:`~repro.lint.flow.summary.ModuleSummary`.  It then exposes the
cross-module indexes the analyzers query:

* ``functions`` — ``"pkg.mod:Class.meth"`` / ``"pkg.mod:func"`` →
  summary (the *qualname* space all call-graph edges live in);
* ``classes`` — class name → list of defining modules;
* ``methods_by_name`` — bare method name → qualnames (the class-
  hierarchy-analysis fallback for unresolvable receivers);
* ``suppressions`` — per display-path suppression index, so deep
  findings honour the same ``# repro-lint: disable=`` directives as
  the syntactic rules.

Unparseable files are *skipped* here, never fatal: the syntactic pass
already reports them as E000, and a broken file cannot contribute
summaries anyway.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional

from repro.lint.config import LintConfig
from repro.lint.context import find_src_root, module_name_for
from repro.lint.engine import _display_path, iter_python_files
from repro.lint.flow.cache import SummaryCache, source_hash
from repro.lint.flow.summary import (
    FunctionSummary,
    ModuleSummary,
    summarize_module,
)
from repro.lint.suppress import (
    SuppressionIndex,
    build_index,
    extend_index,
)


def qualname(module: str, qualkey: str) -> str:
    return f"{module}:{qualkey}"


def split_qualname(name: str) -> tuple:
    module, _, qualkey = name.partition(":")
    return module, qualkey


@dataclass
class Project:
    """Summaries plus the cross-module indexes built over them."""

    modules: Dict[str, ModuleSummary] = field(default_factory=dict)
    functions: Dict[str, FunctionSummary] = field(default_factory=dict)
    classes: Dict[str, List[str]] = field(default_factory=dict)
    methods_by_name: Dict[str, List[str]] = field(default_factory=dict)
    suppressions: Dict[str, SuppressionIndex] = field(
        default_factory=dict)
    cache_hits: int = 0
    cache_misses: int = 0

    def summary_for(self, module: str) -> Optional[ModuleSummary]:
        return self.modules.get(module)

    def function(self, name: str) -> Optional[FunctionSummary]:
        return self.functions.get(name)

    def module_functions(self, module: str) -> List[str]:
        summary = self.modules.get(module)
        if summary is None:
            return []
        return [qualname(module, key) for key in summary.functions]

    def class_methods(self, module: str, cls: str) -> List[str]:
        """Qualnames of ``cls``'s methods, own + inherited + overrides.

        Walks base classes (within the project) upward and subclasses
        downward one level of name resolution at a time; the result is
        the conservative dispatch set for a ``self.meth()`` call.
        """
        summary = self.modules.get(module)
        if summary is None or cls not in summary.classes:
            return []
        names: List[str] = []
        seen = set()
        stack = [(module, cls)]
        while stack:
            mod, klass = stack.pop()
            if (mod, klass) in seen:
                continue
            seen.add((mod, klass))
            mod_summary = self.modules.get(mod)
            if mod_summary is None or \
                    klass not in mod_summary.classes:
                continue
            info = mod_summary.classes[klass]
            for method in info["methods"]:
                names.append(qualname(mod, f"{klass}.{method}"))
            for base in info["bases"]:
                for base_mod in self.classes.get(base, []):
                    stack.append((base_mod, base))
        return names

    def subclasses_of(self, cls: str) -> List[tuple]:
        """(module, class) pairs whose bases mention ``cls`` by name."""
        out = []
        for mod, summary in self.modules.items():
            for name, info in summary.classes.items():
                if cls in info["bases"]:
                    out.append((mod, name))
        return out


def load_project(paths: Iterable[Path], config: LintConfig,
                 cache: Optional[SummaryCache] = None) -> Project:
    """Parse + summarize every python file under ``paths``."""
    cache = cache if cache is not None else SummaryCache(None)
    project = Project()
    for path in iter_python_files(list(paths), config):
        try:
            source = path.read_text(encoding="utf-8")
        except OSError:
            continue
        src_root = find_src_root(path)
        module = module_name_for(path, src_root)
        display = _display_path(path)
        content_hash = source_hash(source)
        tree = None
        summary = cache.load(content_hash)
        if summary is not None:
            # Paths may differ between checkouts; trust content only.
            summary.module = module
            summary.path = display
        else:
            try:
                tree = ast.parse(source, filename=display)
            except SyntaxError:
                continue
            summary = summarize_module(module, display, content_hash,
                                       tree)
            cache.store(summary)
        project.modules[module] = summary
        index = build_index(source)
        if index.by_line:
            # Structural widening needs the AST; parse cached modules
            # lazily — only files that actually carry directives.
            if tree is None:
                try:
                    tree = ast.parse(source, filename=display)
                except SyntaxError:
                    tree = None
            if tree is not None:
                index = extend_index(index, tree)
        project.suppressions[display] = index
    project.cache_hits = cache.hits
    project.cache_misses = cache.misses
    _build_indexes(project)
    return project


def _build_indexes(project: Project) -> None:
    for module, summary in project.modules.items():
        for key, fn in summary.functions.items():
            project.functions[qualname(module, key)] = fn
            if "." in key:
                bare = key.split(".", 1)[1]
                project.methods_by_name.setdefault(bare, []).append(
                    qualname(module, key))
        for cls in summary.classes:
            project.classes.setdefault(cls, []).append(module)
