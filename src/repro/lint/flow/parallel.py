"""R103 — parallel-safety of everything the chunk engine can reach.

``ParallelExecutor`` forks workers; ``ChunkRunner.run_chunk`` is the
unit of work each one replays.  Forked state silently diverges: a
module-level cache warmed in one worker is invisible to its siblings,
and a module-level accumulator written during a chunk makes results
depend on which worker (and how many) processed it — breaking the
bit-identity gate between ``workers=1`` and ``workers=N``.

Starting from the configured roots, the analyzer walks the call graph
closure and flags, for every reachable function:

* assignments/augassignments to module-level globals (state escaping
  the chunk);
* mutations of module-level **mutable** containers (``.append`` /
  ``.update`` / subscript stores) — the cross-chunk shared-cache
  hazard, unless chunk-keyed isolation is declared via the allow
  list;
* lambdas or locally-defined closures handed to ``.submit()`` /
  ``.apply_async()`` — they cannot be pickled into a worker.

The allow list (``allow-globals``) names sanctioned module globals as
``pkg.mod.NAME`` — e.g. the worker-local runner installed by the pool
initializer, which exists precisely once per process by design.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.lint.findings import ERROR, Finding
from repro.lint.flow.callgraph import CallGraph
from repro.lint.flow.project import Project, split_qualname

RULE_ID = "R103"

DEFAULT_ROOTS = (
    "repro.engine.runner:ChunkRunner.run_chunk",
    "repro.engine.executors:_init_worker",
    "repro.engine.executors:_run_chunk_in_worker",
    "repro.engine.executors:ParallelExecutor.execute",
    "repro.stream.engine:StreamEngine.ingest",
    # serve handler coroutines: one per connection, interleaved by the
    # event loop — shared module state here is the same hazard as
    # forked state in the chunk engine
    "repro.serve.http:MevHttpServer._handle_connection",
    "repro.serve.service:MevQueryService.handle",
)

DEFAULT_ALLOW = (
    "repro.engine.executors._WORKER_RUNNER",
)


def analyze(project: Project, graph: CallGraph,
            options: Optional[dict] = None) -> List[Finding]:
    options = options or {}
    roots = list(options.get("roots", DEFAULT_ROOTS))
    allow = set(options.get("allow-globals", DEFAULT_ALLOW))
    parent = graph.reachable_from(roots)
    findings: List[Finding] = []
    for name in sorted(parent):
        module, _ = split_qualname(name)
        summary = project.modules.get(module)
        fn = project.functions.get(name)
        if summary is None or fn is None:
            continue
        witness = graph.witness_path(parent, name)
        for write in fn.global_writes:
            dotted = write["name"] if "." in write["name"] \
                else f"{module}.{write['name']}"
            if dotted in allow:
                continue
            kind = write["kind"]
            info = summary.module_globals.get(write["name"], {})
            if kind in ("mutate", "subscript") or \
                    (kind == "augassign" and info.get("mutable")):
                hazard = ("mutates module-level container "
                          f"'{write['name']}' — a cross-chunk shared "
                          "cache is per-process under fork; key it "
                          "per chunk or sanction it via "
                          "allow-globals")
            else:
                hazard = ("writes module-level state "
                          f"'{write['name']}' — chunk results must "
                          "not depend on worker-local module state")
            findings.append(Finding(
                path=summary.path, line=write["lineno"],
                rule_id=RULE_ID, severity=ERROR,
                message=(f"{fn.name}() (reachable via "
                         f"{witness}) {hazard}")))
        for submission in fn.submissions:
            findings.append(Finding(
                path=summary.path, line=submission["lineno"],
                rule_id=RULE_ID, severity=ERROR,
                message=(f"{fn.name}() (reachable via {witness}) "
                         f"{submission['detail']}")))
    return findings
