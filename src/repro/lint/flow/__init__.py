"""Whole-program analysis layer behind ``repro lint --deep``.

The per-file rules in :mod:`repro.lint.rules` see one AST at a time;
this package sees the project.  It summarizes every module
(:mod:`.summary`), caches summaries by content hash (:mod:`.cache`),
indexes them into a symbol table (:mod:`.project`), resolves a call
graph (:mod:`.callgraph`), and runs three interprocedural analyzers:

* :mod:`.taint`   — R101 determinism taint into measurement sinks
* :mod:`.pairing` — R102 fast-path/reference pairing (``@fast_path``)
* :mod:`.parallel` — R103 parallel-safety of the chunk-engine closure

:mod:`.deep` orchestrates the pipeline; :mod:`.baseline` implements
the committed-findings baseline CI diffs against.
"""

from repro.lint.flow.baseline import (
    filter_baselined,
    load_baseline,
    write_baseline,
)
from repro.lint.flow.deep import FLOW_RULES, DeepReport, run_deep

__all__ = [
    "DeepReport",
    "FLOW_RULES",
    "filter_baselined",
    "load_baseline",
    "run_deep",
    "write_baseline",
]
