"""R102 — fast-path / reference pairing.

PR-5 established the repo's identity rule informally: every optimized
code path keeps its naive reference implementation alive, stays
bit-identical to it, and is exercised against it by tests and bench
gates.  R102 makes the rule declarative and machine-checked.

A fast path announces itself with ``@fast_path(reference="...",
toggle="...")`` (see :mod:`repro.markers`).  For every marker the
analyzer verifies, purely from summaries:

1. the marker names a ``toggle`` (the attribute/parameter the dispatch
   consults) and the decorated function actually references it;
2. the named ``reference`` still exists in the same module (same class
   for methods) — the reference is load-bearing, deleting it breaks
   the equivalence replay;
3. the decorated function actually *calls* the reference, i.e. the
   slow route is reachable through the toggle, not dead code;
4. some test file exercises the pair (mentions the reference, the
   marked function together with ``<toggle>=False``, or is pinned via
   ``tested_by=``);
5. no production call site invokes the reference directly — callers
   must go through the dispatching fast path so the toggle keeps
   meaning something.

Inline pairs (``reference=None``) — where the toggle selects reference
behaviour inside one body, e.g. ``memo={} if fast_paths else None`` —
get checks 1 and 4 only.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.lint.findings import ERROR, Finding
from repro.lint.flow.project import Project, split_qualname
from repro.lint.flow.summary import FunctionSummary

RULE_ID = "R102"

MARKER_NAME = "fast_path"

DEFAULT_TESTS_ROOT = "tests"


def _marker_of(fn: FunctionSummary) -> Optional[Dict[str, object]]:
    for decorator in fn.decorators:
        if decorator.get("name") == MARKER_NAME:
            return decorator
    return None


class _TestCorpus:
    """Lazy text index over the test tree (no parsing needed)."""

    def __init__(self, root: Optional[Path]) -> None:
        self.root = root
        self._files: Optional[List[Tuple[str, str]]] = None

    def _load(self) -> List[Tuple[str, str]]:
        if self._files is None:
            self._files = []
            if self.root is not None and self.root.is_dir():
                for path in sorted(self.root.rglob("*.py")):
                    try:
                        text = path.read_text(encoding="utf-8")
                    except OSError:
                        continue
                    self._files.append((str(path), text))
        return self._files

    def mentions(self, *needles: str) -> bool:
        """True when one file contains *all* needles."""
        for _, text in self._load():
            if all(needle in text for needle in needles):
                return True
        return False

    def has_file(self, name: str) -> bool:
        if self.root is None:
            return False
        return any(Path(path).name == name or path.endswith(name)
                   for path, _ in self._load())


def analyze(project: Project, options: Optional[dict] = None,
            ) -> List[Finding]:
    options = options or {}
    tests_root = options.get("tests-root", DEFAULT_TESTS_ROOT)
    corpus = _TestCorpus(Path(tests_root) if tests_root else None)
    findings: List[Finding] = []
    markers: List[Tuple[str, FunctionSummary, Dict[str, object]]] = []
    for name, fn in project.functions.items():
        marker = _marker_of(fn)
        if marker is not None:
            markers.append((name, fn, marker))

    reference_owners: Dict[str, str] = {}

    for name, fn, marker in markers:
        module, qualkey = split_qualname(name)
        summary = project.modules[module]
        kwargs = marker.get("kwargs") or {}
        line = int(marker.get("lineno") or fn.lineno)
        toggle = kwargs.get("toggle")
        reference = kwargs.get("reference")
        tested_by = kwargs.get("tested_by")

        def report(message: str) -> None:
            findings.append(Finding(
                path=summary.path, line=line, rule_id=RULE_ID,
                severity=ERROR, message=message))

        # 1. toggle present and consulted
        if not isinstance(toggle, str) or not toggle:
            report(f"@fast_path on {fn.name}() must name the toggle "
                   "it dispatches on (toggle=...)")
            continue
        if toggle not in fn.referenced:
            report(f"@fast_path on {fn.name}() declares "
                   f"toggle='{toggle}' but the body never consults "
                   "it — the slow route is unreachable")

        if isinstance(reference, str) and reference:
            # 2. reference lives in the same module / class
            owner_class = qualkey.split(".", 1)[0] \
                if "." in qualkey else None
            candidates = [reference]
            if owner_class is not None:
                candidates.insert(0, f"{owner_class}.{reference}")
            resolved = next((c for c in candidates
                             if c in summary.functions), None)
            if resolved is None:
                report(f"@fast_path on {fn.name}() names "
                       f"reference='{reference}' but no such "
                       f"implementation exists in {module} — the "
                       "retained reference has been lost")
                continue
            reference_owners[f"{module}:{resolved}"] = name
            # 3. the dispatch actually calls the reference
            if not any(site.func == reference for site in fn.calls):
                report(f"{fn.name}() never calls its reference "
                       f"'{reference}' — toggling "
                       f"{toggle}=False cannot reach the slow path")
            # 4. equivalence coverage
            if isinstance(tested_by, str) and tested_by:
                if not corpus.has_file(tested_by):
                    report(f"tested_by='{tested_by}' for "
                           f"{fn.name}() does not exist under "
                           f"{tests_root}/")
            elif not corpus.mentions(reference):
                report(f"no test under {tests_root}/ mentions "
                       f"'{reference}' — the {fn.name}()/"
                       f"{reference}() pair has no equivalence "
                       "coverage")
        else:
            # Inline pair: equivalence coverage via the toggle.
            if isinstance(tested_by, str) and tested_by:
                if not corpus.has_file(tested_by):
                    report(f"tested_by='{tested_by}' for "
                           f"{fn.name}() does not exist under "
                           f"{tests_root}/")
            elif not corpus.mentions(f"{toggle}=False"):
                report(f"no test under {tests_root}/ exercises "
                       f"{toggle}=False — the inline fast path in "
                       f"{fn.name}() has no equivalence coverage")

    # 5. no production call site bypasses the toggle dispatch
    for ref_qual, fast_qual in sorted(reference_owners.items()):
        ref_module, ref_key = split_qualname(ref_qual)
        fast_module, fast_key = split_qualname(fast_qual)
        ref_bare = ref_key.split(".")[-1]
        for caller, fn in project.functions.items():
            caller_module, caller_key = split_qualname(caller)
            if caller == fast_qual or caller == ref_qual:
                continue
            if caller_module == ref_module:
                # Same-module helpers (and the bench replay hooks the
                # module itself exposes) may address the reference.
                continue
            for site in fn.calls:
                if site.func != ref_bare:
                    continue
                summary = project.modules[caller_module]
                findings.append(Finding(
                    path=summary.path, line=site.lineno,
                    rule_id=RULE_ID, severity=ERROR,
                    message=(f"direct call to reference "
                             f"'{ref_bare}' bypasses the "
                             f"{fast_key}() toggle dispatch — "
                             "call the fast path and flip its "
                             "toggle instead")))
    return findings
