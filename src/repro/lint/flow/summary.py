"""Per-module analysis summaries for the whole-program analyzers.

One :class:`ModuleSummary` captures everything the interprocedural
passes (R101 determinism taint, R102 fast-path pairing, R103 parallel
safety) need to know about a module *without re-parsing it*: its
imports, module-level globals, class layout, and — per function — a
conservative local dataflow digest.

The digest speaks in **taint tokens**:

* ``"D"`` — the value derives directly from a nondeterminism source
  (wall clock, OS entropy, an unseeded RNG, ``id()``, an environment
  read, or iteration over a set expression);
* ``"C<i>"`` — the value derives from the result of this function's
  ``i``-th call site (tainted iff the callee's return is);
* ``"P<i>"`` — the value derives from the function's ``i``-th
  parameter (tainted iff the caller passed a tainted argument).

Summaries are plain data (dict round-trip, no AST nodes) so they can be
cached on disk keyed by source content hash — see
:mod:`repro.lint.flow.cache` — which is what makes ``lint --deep``
incremental across runs.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

#: Bump when the summary shape or the local analysis changes; cached
#: summaries with another schema are recomputed, never trusted.
FLOW_SCHEMA = 3

#: ``module.attr`` call targets that read ambient entropy/wall clock.
NONDET_ATTRS = {
    ("time", "time"), ("time", "time_ns"), ("time", "monotonic"),
    ("time", "perf_counter"),
    ("datetime", "now"), ("datetime", "utcnow"), ("datetime", "today"),
    ("os", "urandom"), ("os", "getenv"),
    ("uuid", "uuid1"), ("uuid", "uuid4"),
    ("random", "SystemRandom"),
}

#: Bare callables that are nondeterminism sources wherever they appear.
NONDET_NAMES = {"id", "urandom", "getenv", "uuid1", "uuid4"}

#: Mutating method names on containers (used for global-write detection).
MUTATORS = {"append", "add", "update", "clear", "pop", "popitem",
            "setdefault", "extend", "insert", "remove", "discard",
            "appendleft", "extendleft"}

#: Executor entry points whose callable arguments must be picklable.
SUBMIT_NAMES = {"submit", "apply_async", "map_async"}

DIRECT = "D"


def _call_token(index: int) -> str:
    return f"C{index}"


def _param_token(index: int) -> str:
    return f"P{index}"


@dataclass
class CallSite:
    """One call expression inside a function body."""

    kind: str            # "name" | "self" | "attr" | "super"
    func: str            # called name (last attribute segment)
    recv: Optional[str]  # local receiver type / module alias, if known
    lineno: int
    args: List[List[str]] = field(default_factory=list)
    kwargs: Dict[str, List[str]] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "func": self.func, "recv": self.recv,
                "lineno": self.lineno, "args": self.args,
                "kwargs": self.kwargs}

    @classmethod
    def from_dict(cls, row: Dict[str, Any]) -> "CallSite":
        return cls(kind=row["kind"], func=row["func"], recv=row["recv"],
                   lineno=row["lineno"], args=list(row["args"]),
                   kwargs=dict(row["kwargs"]))


@dataclass
class FunctionSummary:
    """Local dataflow digest of one function or method."""

    name: str
    qualkey: str         # "func" or "Class.func" within the module
    lineno: int
    end_lineno: int
    params: List[str] = field(default_factory=list)
    is_method: bool = False
    decorators: List[Dict[str, Any]] = field(default_factory=list)
    calls: List[CallSite] = field(default_factory=list)
    sources: List[Dict[str, Any]] = field(default_factory=list)
    return_tokens: List[str] = field(default_factory=list)
    global_writes: List[Dict[str, Any]] = field(default_factory=list)
    submissions: List[Dict[str, Any]] = field(default_factory=list)
    referenced: List[str] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name, "qualkey": self.qualkey,
            "lineno": self.lineno, "end_lineno": self.end_lineno,
            "params": self.params, "is_method": self.is_method,
            "decorators": self.decorators,
            "calls": [c.to_dict() for c in self.calls],
            "sources": self.sources,
            "return_tokens": self.return_tokens,
            "global_writes": self.global_writes,
            "submissions": self.submissions,
            "referenced": self.referenced,
        }

    @classmethod
    def from_dict(cls, row: Dict[str, Any]) -> "FunctionSummary":
        return cls(
            name=row["name"], qualkey=row["qualkey"],
            lineno=row["lineno"], end_lineno=row["end_lineno"],
            params=list(row["params"]), is_method=row["is_method"],
            decorators=list(row["decorators"]),
            calls=[CallSite.from_dict(c) for c in row["calls"]],
            sources=list(row["sources"]),
            return_tokens=list(row["return_tokens"]),
            global_writes=list(row["global_writes"]),
            submissions=list(row["submissions"]),
            referenced=list(row["referenced"]),
        )


@dataclass
class ModuleSummary:
    """Everything the whole-program passes know about one module."""

    module: str
    path: str
    content_hash: str
    imports: Dict[str, str] = field(default_factory=dict)
    module_globals: Dict[str, Dict[str, Any]] = field(
        default_factory=dict)
    classes: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    functions: Dict[str, FunctionSummary] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": FLOW_SCHEMA,
            "module": self.module, "path": self.path,
            "content_hash": self.content_hash,
            "imports": self.imports,
            "module_globals": self.module_globals,
            "classes": self.classes,
            "functions": {key: fn.to_dict()
                          for key, fn in self.functions.items()},
        }

    @classmethod
    def from_dict(cls, row: Dict[str, Any],
                  ) -> Optional["ModuleSummary"]:
        if row.get("schema") != FLOW_SCHEMA:
            return None
        summary = cls(module=row["module"], path=row["path"],
                      content_hash=row["content_hash"],
                      imports=dict(row["imports"]),
                      module_globals=dict(row["module_globals"]),
                      classes=dict(row["classes"]))
        summary.functions = {
            key: FunctionSummary.from_dict(fn)
            for key, fn in row["functions"].items()}
        return summary


# -- module-level walk ------------------------------------------------------


def _collect_imports(tree: ast.Module) -> Dict[str, str]:
    """Local name → dotted target, over the whole module (function-local
    imports included; a rebinding later in the file wins, which matches
    how the analyzers use the map — best-effort resolution)."""
    imports: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else \
                    alias.name.split(".")[0]
                imports[local] = target
        elif isinstance(node, ast.ImportFrom) and node.level == 0 \
                and node.module:
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                imports[local] = f"{node.module}.{alias.name}"
    return imports


def _is_mutable_literal(node: ast.AST) -> bool:
    if isinstance(node, (ast.Dict, ast.List, ast.Set, ast.DictComp,
                         ast.ListComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and \
                func.id in ("dict", "list", "set", "defaultdict",
                            "OrderedDict", "Counter", "deque"):
            return True
    return False


def _decorator_info(node: ast.expr) -> Dict[str, Any]:
    """Name + literal keyword arguments of one decorator expression."""
    name = ""
    kwargs: Dict[str, Any] = {}
    target = node
    if isinstance(target, ast.Call):
        for keyword in target.keywords:
            if keyword.arg is None:
                continue
            value = keyword.value
            kwargs[keyword.arg] = (value.value
                                   if isinstance(value, ast.Constant)
                                   else None)
        target = target.func
    if isinstance(target, ast.Attribute):
        name = target.attr
    elif isinstance(target, ast.Name):
        name = target.id
    return {"name": name, "kwargs": kwargs,
            "lineno": node.lineno}


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and \
            isinstance(node.func, ast.Name) and \
            node.func.id in ("set", "frozenset"):
        return True
    return False


class _FunctionSummarizer:
    """One function's local dataflow, run to a small fixpoint."""

    def __init__(self, node: ast.AST, qualkey: str, is_method: bool,
                 imports: Dict[str, str],
                 module_globals: Set[str],
                 sanctioned_params: Tuple[str, ...] = ("rng", "random"),
                 ) -> None:
        self.node = node
        self.imports = imports
        self.module_globals = module_globals
        args = node.args
        params = [a.arg for a in (args.posonlyargs + args.args)]
        offset = 1 if is_method else 0
        self.summary = FunctionSummary(
            name=node.name, qualkey=qualkey, lineno=node.lineno,
            end_lineno=node.end_lineno or node.lineno,
            params=params, is_method=is_method,
            decorators=[_decorator_info(d)
                        for d in node.decorator_list])
        #: injected RNG parameters are the sanctioned seeding channel:
        #: values drawn from them are deterministic given the seed.
        self.sanctioned_params = set(sanctioned_params)
        self.env: Dict[str, Set[str]] = {}
        for index, name in enumerate(params):
            if index >= offset and name not in self.sanctioned_params:
                self.env[name] = {_param_token(index)}
        #: locally assigned names (for global-shadowing decisions)
        self.local_names: Set[str] = set(params)
        self.global_decls: Set[str] = set()
        self._collect_locals()
        self._call_index: Dict[int, int] = {}  # id(Call) → index

    # Pass 0: find every locally-bound name and ``global`` declaration.
    def _collect_locals(self) -> None:
        for child in ast.walk(self.node):
            if isinstance(child, ast.Global):
                self.global_decls.update(child.names)
            elif isinstance(child, (ast.FunctionDef,
                                    ast.AsyncFunctionDef)) \
                    and child is not self.node:
                self.local_names.add(child.name)
            elif isinstance(child, ast.Name) and \
                    isinstance(child.ctx, ast.Store):
                self.local_names.add(child.id)
        self.local_names -= self.global_decls

    # -- expression token collection ---------------------------------------

    def _register_call(self, node: ast.Call) -> int:
        key = id(node)
        index = self._call_index.get(key)
        if index is not None:
            return index
        kind, func, recv = "name", "", None
        target = node.func
        if isinstance(target, ast.Name):
            func = target.id
            recv = self.imports.get(func)
        elif isinstance(target, ast.Attribute):
            func = target.attr
            base = target.value
            if isinstance(base, ast.Name):
                if base.id in ("self", "cls"):
                    kind = "self"
                else:
                    kind = "attr"
                    recv = (self.local_types.get(base.id)
                            or self.imports.get(base.id))
            elif isinstance(base, ast.Call) and \
                    isinstance(base.func, ast.Name) and \
                    base.func.id == "super":
                kind, recv = "super", None
            else:
                kind = "attr"
        else:
            kind = "attr"
        site = CallSite(kind=kind, func=func, recv=recv,
                        lineno=node.lineno)
        self._check_submission(node)
        site.args = [sorted(self._tokens(arg)) for arg in node.args]
        site.kwargs = {kw.arg: sorted(self._tokens(kw.value))
                       for kw in node.keywords
                       if kw.arg is not None}
        index = len(self.summary.calls)
        self.summary.calls.append(site)
        self._call_index[key] = index
        return index

    def _source_detail(self, node: ast.Call) -> Optional[str]:
        """Non-None when this call reads a nondeterminism source."""
        target = node.func
        if isinstance(target, ast.Name):
            dotted = self.imports.get(target.id, target.id)
            if target.id in NONDET_NAMES or \
                    dotted.split(".")[-1] in NONDET_NAMES and \
                    dotted.split(".")[0] in ("os", "uuid"):
                return f"{target.id}()"
            # An unseeded Random() draws its seed from OS entropy.
            if dotted in ("random.Random", "random.SystemRandom") \
                    and not node.args:
                return f"unseeded {target.id}()"
            if dotted.startswith("secrets."):
                return f"{target.id}() (secrets)"
        if isinstance(target, ast.Attribute) and \
                isinstance(target.value, ast.Name):
            base = self.imports.get(target.value.id, target.value.id)
            pair = (base.split(".")[0], target.attr)
            if pair in NONDET_ATTRS:
                return f"{pair[0]}.{pair[1]}()"
            if base == "random" and target.attr != "Random":
                return f"random.{target.attr}() (module-level RNG)"
            if base == "random" and target.attr == "Random" \
                    and not node.args:
                return "unseeded random.Random()"
            if base == "secrets":
                return f"secrets.{target.attr}()"
        return None

    def _tokens(self, node: Optional[ast.AST]) -> Set[str]:
        """Taint tokens an expression's value may carry."""
        if node is None:
            return set()
        if isinstance(node, ast.Name):
            return set(self.env.get(node.id, ()))
        if isinstance(node, ast.Call):
            index = self._register_call(node)
            detail = self._source_detail(node)
            if detail is not None:
                self._add_source(detail, node.lineno)
                return {DIRECT}
            tokens = {_call_token(index)}
            target = node.func
            # A method called on a tainted object yields a tainted
            # value (``r = random.Random(); r.random()``); argument
            # taint deliberately does NOT cross unresolved calls
            # (``cache.get(tainted_key)`` is fine).
            if isinstance(target, ast.Attribute) and \
                    isinstance(target.value, ast.Name):
                tokens |= set(self.env.get(target.value.id, ()))
            return tokens
        if isinstance(node, ast.Attribute):
            if isinstance(node.value, ast.Name):
                base = self.imports.get(node.value.id, node.value.id)
                if base == "os" and node.attr == "environ":
                    self._add_source("os.environ", node.lineno)
                    return {DIRECT}
            return self._tokens(node.value)
        if isinstance(node, ast.Lambda):
            return set()
        tokens: Set[str] = set()
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.expr, ast.keyword,
                                  ast.comprehension)):
                tokens |= self._tokens(child)
            elif isinstance(child, ast.arguments):
                continue
        return tokens

    def _add_source(self, detail: str, lineno: int) -> None:
        self.summary.sources.append({"detail": detail,
                                     "lineno": lineno})

    # -- statement walk -----------------------------------------------------

    def run(self) -> FunctionSummary:
        # Two passes let simple loop-carried assignments converge; the
        # token lattice only grows, so this is a cheap under-fixpoint
        # that is exact for straight-line code.
        self.local_types: Dict[str, str] = {}
        return_tokens: Set[str] = set()
        for _ in range(2):
            self.summary.calls = []
            self.summary.sources = []
            self.summary.global_writes = []
            self.summary.submissions = []
            self._call_index = {}
            return_tokens = set()
            for stmt in self.node.body:
                self._visit_stmt(stmt, return_tokens)
        self.summary.return_tokens = sorted(return_tokens)
        self.summary.referenced = sorted(self._referenced_names())
        return self.summary

    def _referenced_names(self) -> Set[str]:
        names: Set[str] = set()
        for child in ast.walk(self.node):
            if isinstance(child, ast.Name):
                names.add(child.id)
            elif isinstance(child, ast.Attribute):
                names.add(child.attr)
            elif isinstance(child, ast.arg):
                names.add(child.arg)
        return names

    def _assign(self, target: ast.AST, tokens: Set[str]) -> None:
        if isinstance(target, ast.Name):
            if tokens:
                merged = set(self.env.get(target.id, ())) | tokens
                self.env[target.id] = merged
            self._note_global_write(target, "assign")
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._assign(element, tokens)
        elif isinstance(target, ast.Starred):
            self._assign(target.value, tokens)
        elif isinstance(target, ast.Subscript):
            # G[k] = v mutates G; taint of v taints the container var.
            if isinstance(target.value, ast.Name):
                if tokens:
                    name = target.value.id
                    merged = set(self.env.get(name, ())) | tokens
                    self.env[name] = merged
                self._note_global_mutation(target.value, "subscript",
                                           target.lineno)
        elif isinstance(target, ast.Attribute):
            base = target.value
            if isinstance(base, ast.Name) and \
                    base.id not in ("self", "cls") and \
                    base.id in self.imports and \
                    base.id not in self.local_names:
                self.summary.global_writes.append({
                    "name": f"{self.imports[base.id]}.{target.attr}",
                    "lineno": target.lineno, "kind": "attr-assign"})

    def _note_global_write(self, target: ast.Name, kind: str) -> None:
        if target.id in self.global_decls and \
                target.id in self.module_globals:
            self.summary.global_writes.append({
                "name": target.id, "lineno": target.lineno,
                "kind": kind})

    def _note_global_mutation(self, base: ast.Name, kind: str,
                              lineno: int) -> None:
        if base.id in self.module_globals and \
                base.id not in self.local_names:
            self.summary.global_writes.append({
                "name": base.id, "lineno": lineno, "kind": kind})

    def _track_local_type(self, target: ast.AST,
                          value: ast.AST) -> None:
        if not isinstance(target, ast.Name):
            return
        if isinstance(value, ast.Call):
            func = value.func
            name = None
            if isinstance(func, ast.Name):
                name = func.id
            elif isinstance(func, ast.Attribute):
                name = func.attr
            if name and name[:1].isupper():
                self.local_types[target.id] = name
                return
        self.local_types.pop(target.id, None)

    def _check_submission(self, call: ast.Call) -> None:
        func = call.func
        if not (isinstance(func, ast.Attribute)
                and func.attr in SUBMIT_NAMES):
            return
        for arg in call.args:
            if isinstance(arg, ast.Lambda):
                self.summary.submissions.append({
                    "lineno": arg.lineno,
                    "detail": "lambda passed to "
                              f".{func.attr}() cannot be pickled "
                              "into a worker process"})
            elif isinstance(arg, ast.Name) and \
                    arg.id in self._nested_defs():
                self.summary.submissions.append({
                    "lineno": arg.lineno,
                    "detail": f"locally-defined '{arg.id}' passed to "
                              f".{func.attr}() closes over this "
                              "frame and cannot be pickled"})

    def _nested_defs(self) -> Set[str]:
        nested: Set[str] = set()
        for stmt in ast.walk(self.node):
            if isinstance(stmt, (ast.FunctionDef,
                                 ast.AsyncFunctionDef)) and \
                    stmt is not self.node:
                nested.add(stmt.name)
        return nested

    def _visit_stmt(self, stmt: ast.stmt,
                    return_tokens: Set[str]) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            return  # nested scopes are summarized separately
        if isinstance(stmt, ast.Return):
            return_tokens |= self._tokens(stmt.value)
            return
        if isinstance(stmt, ast.Assign):
            tokens = self._tokens(stmt.value)
            for target in stmt.targets:
                self._assign(target, tokens)
                self._track_local_type(target, stmt.value)
            return
        if isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            self._assign(stmt.target, self._tokens(stmt.value))
            self._track_local_type(stmt.target, stmt.value)
            return
        if isinstance(stmt, ast.AugAssign):
            tokens = self._tokens(stmt.value)
            if isinstance(stmt.target, ast.Name):
                if tokens:
                    name = stmt.target.id
                    self.env[name] = \
                        set(self.env.get(name, ())) | tokens
                self._note_global_write(stmt.target, "augassign")
            else:
                self._assign(stmt.target, tokens)
            return
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            iter_tokens = self._tokens(stmt.iter)
            if _is_set_expr(stmt.iter):
                self._add_source("iteration over a set expression",
                                 stmt.iter.lineno)
                iter_tokens = iter_tokens | {DIRECT}
            self._assign(stmt.target, iter_tokens)
            for child in stmt.body + stmt.orelse:
                self._visit_stmt(child, return_tokens)
            return
        if isinstance(stmt, (ast.If, ast.While)):
            self._tokens(stmt.test)
            for child in stmt.body + stmt.orelse:
                self._visit_stmt(child, return_tokens)
            return
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                tokens = self._tokens(item.context_expr)
                if item.optional_vars is not None:
                    self._assign(item.optional_vars, tokens)
            for child in stmt.body:
                self._visit_stmt(child, return_tokens)
            return
        if isinstance(stmt, ast.Try):
            bodies = [stmt.body, stmt.orelse, stmt.finalbody]
            for handler in stmt.handlers:
                bodies.append(handler.body)
            for body in bodies:
                for child in body:
                    self._visit_stmt(child, return_tokens)
            return
        if isinstance(stmt, ast.Expr):
            self._tokens(stmt.value)
            value = stmt.value
            if isinstance(value, ast.Call):
                func = value.func
                if isinstance(func, ast.Attribute) and \
                        func.attr in MUTATORS and \
                        isinstance(func.value, ast.Name):
                    self._note_global_mutation(func.value, "mutate",
                                               value.lineno)
            return
        # Remaining statements (assert, raise, delete, pass, …): walk
        # their expressions so calls inside them are still registered.
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.expr):
                self._tokens(child)


def summarize_module(module: str, path: str, source_hash: str,
                     tree: ast.Module) -> ModuleSummary:
    """Build the analysis summary of one parsed module."""
    imports = _collect_imports(tree)
    summary = ModuleSummary(module=module, path=path,
                            content_hash=source_hash,
                            imports=imports)
    for node in tree.body:
        if isinstance(node, (ast.Assign, ast.AnnAssign)):
            targets = node.targets if isinstance(node, ast.Assign) \
                else [node.target]
            value = node.value
            for target in targets:
                if isinstance(target, ast.Name):
                    summary.module_globals[target.id] = {
                        "mutable": (value is not None
                                    and _is_mutable_literal(value)),
                        "lineno": target.lineno,
                    }
    global_names = set(summary.module_globals)

    def add_function(node: ast.AST, qualkey: str,
                     is_method: bool) -> None:
        decorators = {d.get("name") for d in
                      (_decorator_info(dec)
                       for dec in node.decorator_list)}
        static = "staticmethod" in decorators
        summarizer = _FunctionSummarizer(
            node, qualkey, is_method and not static, imports,
            global_names)
        summary.functions[qualkey] = summarizer.run()

    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            add_function(node, node.name, is_method=False)
        elif isinstance(node, ast.ClassDef):
            bases = []
            for base in node.bases:
                if isinstance(base, ast.Name):
                    bases.append(base.id)
                elif isinstance(base, ast.Attribute):
                    bases.append(base.attr)
            methods = []
            for child in node.body:
                if isinstance(child, (ast.FunctionDef,
                                      ast.AsyncFunctionDef)):
                    methods.append(child.name)
                    add_function(child, f"{node.name}.{child.name}",
                                 is_method=True)
            summary.classes[node.name] = {
                "bases": bases, "methods": methods,
                "lineno": node.lineno}
    return summary
