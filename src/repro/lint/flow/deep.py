"""Deep-mode orchestrator: load project → call graph → analyzers.

``run_deep`` is what ``repro lint --deep`` executes after the syntactic
pass.  It builds the whole-program view once and feeds it to the three
interprocedural analyzers; their findings pass through the same
suppression directives as syntactic ones, so a reviewed
``# repro-lint: disable=R103`` works identically at both depths.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple

from repro.lint.config import LintConfig
from repro.lint.findings import Finding
from repro.lint.flow import pairing, parallel, taint
from repro.lint.flow.cache import SummaryCache
from repro.lint.flow.callgraph import build_call_graph
from repro.lint.flow.project import load_project

#: id → (title, rationale) for reporters and ``--list-rules``.
FLOW_RULES: Dict[str, Tuple[str, str]] = {
    taint.RULE_ID: (
        "determinism-taint",
        "no nondeterministic value may flow into block hashes, "
        "detection rows, checkpoints, or bench JSON"),
    pairing.RULE_ID: (
        "fast-path-pairing",
        "every @fast_path keeps a live same-module reference, "
        "equivalence coverage, and toggle-respecting call sites"),
    parallel.RULE_ID: (
        "parallel-safety",
        "code reachable from the chunk engine must not write "
        "module-level state or submit unpicklable callables"),
}


@dataclass
class DeepReport:
    """Findings plus the run metadata CI surfaces."""

    findings: List[Finding] = field(default_factory=list)
    modules: int = 0
    functions: int = 0
    edges: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    elapsed_s: float = 0.0

    def stats_line(self) -> str:
        return (f"deep-lint: {self.modules} modules, "
                f"{self.functions} functions, {self.edges} call "
                f"edges, cache {self.cache_hits} hit/"
                f"{self.cache_misses} miss, "
                f"{self.elapsed_s:.2f}s")


def run_deep(paths: Iterable[Path], config: LintConfig,
             cache_dir: Optional[Path] = None,
             tests_root: Optional[str] = None) -> DeepReport:
    started = time.perf_counter()  # repro-lint: disable=R002
    report = DeepReport()
    cache = SummaryCache(cache_dir)
    project = load_project(paths, config, cache)
    graph = build_call_graph(project)
    report.modules = len(project.modules)
    report.functions = len(project.functions)
    report.edges = sum(len(edges)
                       for edges in graph.edges.values())
    report.cache_hits = project.cache_hits
    report.cache_misses = project.cache_misses

    pairing_options = dict(config.options_for(pairing.RULE_ID))
    if tests_root is not None:
        pairing_options["tests-root"] = tests_root
    raw: List[Finding] = []
    raw.extend(taint.analyze(project, graph,
                             config.options_for(taint.RULE_ID)))
    raw.extend(pairing.analyze(project, pairing_options))
    raw.extend(parallel.analyze(project, graph,
                                config.options_for(parallel.RULE_ID)))

    for finding in raw:
        index = project.suppressions.get(finding.path)
        if index is not None and \
                index.is_suppressed(finding.rule_id, finding.line):
            continue
        report.findings.append(finding)
    report.findings.sort(key=Finding.sort_key)
    report.elapsed_s = \
        time.perf_counter() - started  # repro-lint: disable=R002
    return report
