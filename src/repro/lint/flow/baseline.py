"""Committed findings baseline: fail only on *new* findings.

Deep analyzers are over-approximate by design, and a handful of known,
reviewed findings may be accepted rather than suppressed inline.  The
baseline file records them as ``(rule, path, message)`` triples — line
numbers are deliberately excluded so unrelated edits shifting code up
or down don't resurrect accepted findings.

CI diffing semantics: a finding present in the baseline is filtered
out; anything else fails the run.  Fixed findings leave stale baseline
entries behind, which ``--write-baseline`` prunes on the next refresh.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List, Sequence, Set, Tuple

from repro.lint.findings import Finding

BASELINE_VERSION = 1

Key = Tuple[str, str, str]


def finding_key(finding: Finding) -> Key:
    return (finding.rule_id, finding.path, finding.message)


def load_baseline(path: Path) -> Set[Key]:
    """Accepted-finding keys; raises ``ValueError`` on a bad file (a
    corrupt baseline silently accepting everything would be worse)."""
    row = json.loads(path.read_text(encoding="utf-8"))
    if not isinstance(row, dict) or \
            row.get("version") != BASELINE_VERSION:
        raise ValueError(f"unsupported baseline file: {path}")
    keys: Set[Key] = set()
    for entry in row.get("findings", []):
        keys.add((entry["rule"], entry["path"], entry["message"]))
    return keys


def write_baseline(path: Path,
                   findings: Sequence[Finding]) -> None:
    rows = sorted({finding_key(f) for f in findings})
    payload = {
        "version": BASELINE_VERSION,
        "findings": [{"rule": rule, "path": file, "message": message}
                     for rule, file, message in rows],
    }
    path.write_text(json.dumps(payload, indent=2) + "\n",
                    encoding="utf-8")


def filter_baselined(findings: Sequence[Finding],
                     baseline: Set[Key]) -> List[Finding]:
    return [f for f in findings if finding_key(f) not in baseline]
