"""Lint engine: walk paths, parse modules, run rules, filter suppressions.

The engine is deliberately import-free with respect to the code under
analysis — everything is AST-level, so linting cannot execute simulator
code or be confused by import-time side effects.
"""

from __future__ import annotations

import ast
import os
from pathlib import Path
from typing import Iterable, Iterator, List, Optional

from repro.lint.config import LintConfig
from repro.lint.context import (
    ModuleContext,
    find_src_root,
    module_name_for,
)
from repro.lint.findings import ERROR, Finding
from repro.lint.registry import Rule, make_rules
from repro.lint.suppress import build_index, extend_index

#: Rule id used for files that fail to parse at all.
PARSE_RULE_ID = "E000"

#: Directories never worth descending into.
_SKIP_DIRS = {"__pycache__", ".git", ".hg", ".svn", ".tox", ".venv",
              "venv", "node_modules", ".mypy_cache", ".pytest_cache"}


def iter_python_files(paths: Iterable[Path],
                      config: LintConfig) -> Iterator[Path]:
    """Yield ``.py`` files under ``paths``, honouring excludes."""
    seen = set()
    for path in paths:
        if path.is_file():
            candidates: Iterable[Path] = [path]
        elif path.is_dir():
            collected = []
            for root, dirs, files in os.walk(path):
                dirs[:] = sorted(d for d in dirs
                                 if d not in _SKIP_DIRS)
                collected.extend(Path(root) / name
                                 for name in sorted(files)
                                 if name.endswith(".py"))
            candidates = collected
        else:
            continue
        for candidate in candidates:
            if not candidate.name.endswith(".py"):
                continue
            resolved = candidate.resolve()
            if resolved in seen or config.is_excluded(candidate):
                continue
            seen.add(resolved)
            yield candidate


def lint_file(path: Path, config: LintConfig, rules: List[Rule],
              src_root: Optional[Path] = None,
              display_path: Optional[str] = None) -> List[Finding]:
    """Lint one file with pre-instantiated rules."""
    display = display_path if display_path is not None else str(path)
    try:
        source = path.read_text(encoding="utf-8")
    except OSError as exc:
        return [Finding(path=display, line=1, rule_id=PARSE_RULE_ID,
                        severity=ERROR,
                        message=f"cannot read file: {exc}")]
    return lint_source(source, path=path, config=config, rules=rules,
                       src_root=src_root, display_path=display)


def lint_source(source: str, path: Path, config: LintConfig,
                rules: List[Rule], src_root: Optional[Path] = None,
                display_path: Optional[str] = None,
                module: Optional[str] = None) -> List[Finding]:
    """Lint in-memory source (the unit tests' entrypoint).

    ``module`` overrides dotted-name derivation so fixture snippets can
    pose as e.g. ``repro.chain.fixture`` without living under ``src/``.
    """
    display = display_path if display_path is not None else str(path)
    try:
        tree = ast.parse(source, filename=display)
    except SyntaxError as exc:
        return [Finding(path=display, line=exc.lineno or 1,
                        rule_id=PARSE_RULE_ID, severity=ERROR,
                        message=f"syntax error: {exc.msg}")]
    if src_root is None:
        src_root = find_src_root(path)
    if module is None:
        module = module_name_for(path, src_root)
    ctx = ModuleContext(
        path=path, display_path=display, module=module, source=source,
        tree=tree, suppressions=extend_index(build_index(source), tree),
        config=config, src_root=src_root)
    findings: List[Finding] = []
    for rule in rules:
        for finding in rule.check(ctx):
            if not ctx.suppressions.is_suppressed(finding.rule_id,
                                                  finding.line):
                findings.append(finding)
    return findings


def lint_paths(paths: Iterable[Path],
               config: Optional[LintConfig] = None) -> List[Finding]:
    """Lint every python file under ``paths`` and return sorted findings."""
    config = config if config is not None else LintConfig()
    rules = make_rules(config.enable, config.options_for)
    findings: List[Finding] = []
    for path in iter_python_files(list(paths), config):
        src_root = find_src_root(path)
        display = _display_path(path)
        findings.extend(lint_file(path, config, rules,
                                  src_root=src_root,
                                  display_path=display))
    findings.sort(key=Finding.sort_key)
    return findings


def _display_path(path: Path) -> str:
    """Relative to cwd when possible — keeps reports and CI logs short."""
    try:
        return str(path.resolve().relative_to(Path.cwd()))
    except ValueError:
        return str(path)
