"""Suppression comments: ``# repro-lint: disable=R001``.

Two scopes are supported:

* line scope — a trailing comment disables the listed rules on its own
  physical line; a *standalone* comment (nothing but whitespace before
  the ``#``) also covers the line directly below it, the only ergonomic
  spot for wrapped statements.  Trailing comments never bleed onto the
  next line.
* file scope — ``# repro-lint: disable-file=R003`` anywhere in the file
  (conventionally in the module docstring region) disables the rule for
  the whole module.

On top of the raw line scope, :func:`extend_index` widens directives
structurally once the AST is available:

* a directive on a decorator line covers the *whole decorated
  definition* (rules report on the ``def`` line or inside the body,
  not on the decorator that triggered them);
* a directive on any physical line of a multi-line **simple** statement
  (a wrapped call, assignment, or return) covers the statement's full
  span.  Compound statements do not inherit header directives — a
  directive on an ``if`` line must not silence the entire block.

``disable=all`` / ``disable-file=all`` disables every rule.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from typing import Dict, Set

_DIRECTIVE = re.compile(
    r"#\s*repro-lint:\s*(disable(?:-file)?)\s*=\s*"
    r"([A-Za-z0-9_]+(?:\s*,\s*[A-Za-z0-9_]+)*)")

#: Sentinel matching every rule id.
ALL = "all"


class SuppressionIndex:
    """Which rule ids are suppressed on which lines of one file."""

    def __init__(self) -> None:
        self.by_line: Dict[int, Set[str]] = {}
        self.file_wide: Set[str] = set()

    def add_line(self, line: int, rules: Set[str]) -> None:
        self.by_line.setdefault(line, set()).update(rules)

    def is_suppressed(self, rule_id: str, line: int) -> bool:
        if ALL in self.file_wide or rule_id in self.file_wide:
            return True
        rules = self.by_line.get(line)
        return bool(rules and (ALL in rules or rule_id in rules))


def build_index(source: str) -> SuppressionIndex:
    """Scan ``source`` for suppression comments.

    Tokenizing (rather than regexing raw lines) keeps directives inside
    string literals from being honoured.  Tokenize errors fall back to an
    empty index; the parse error surfaces elsewhere.
    """
    index = SuppressionIndex()
    lines = source.splitlines()
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _DIRECTIVE.search(token.string)
            if not match:
                continue
            scope, raw_rules = match.groups()
            rules = {part.strip().upper() if part.strip().lower() != ALL
                     else ALL
                     for part in raw_rules.split(",") if part.strip()}
            if scope == "disable-file":
                index.file_wide.update(rules)
                continue
            comment_line, col = token.start
            index.add_line(comment_line, rules)
            prefix = lines[comment_line - 1][:col] \
                if comment_line <= len(lines) else ""
            if not prefix.strip():
                # Standalone comment: also covers the statement below.
                index.add_line(comment_line + 1, rules)
    except (tokenize.TokenizeError, IndentationError, SyntaxError):
        pass
    return index


#: Statement types whose multi-line spans a directive may cover whole.
_SIMPLE_STMTS = (ast.Assign, ast.AnnAssign, ast.AugAssign, ast.Return,
                 ast.Expr, ast.Raise, ast.Assert, ast.Delete,
                 ast.Import, ast.ImportFrom)


def extend_index(index: SuppressionIndex,
                 tree: ast.Module) -> SuppressionIndex:
    """Widen line directives to structural spans (see module docs).

    Mutates and returns ``index``.  Cheap no-op when the file has no
    line-scoped directives at all.
    """
    if not index.by_line:
        return index

    def span_rules(first: int, last: int) -> Set[str]:
        rules: Set[str] = set()
        for line in range(first, last + 1):
            rules |= index.by_line.get(line, set())
        return rules

    def cover(first: int, last: int, rules: Set[str]) -> None:
        for line in range(first, last + 1):
            index.add_line(line, rules)

    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)) and node.decorator_list:
            first = min(dec.lineno for dec in node.decorator_list)
            # Directive anywhere in the decorator block (above the
            # `def` line itself) covers the whole decorated definition.
            rules = span_rules(first, node.lineno - 1)
            if rules:
                cover(first, node.end_lineno or node.lineno, rules)
        elif isinstance(node, _SIMPLE_STMTS):
            last = node.end_lineno or node.lineno
            if last > node.lineno:
                rules = span_rules(node.lineno, last)
                if rules:
                    cover(node.lineno, last, rules)
    return index
