"""Lint configuration, optionally loaded from ``pyproject.toml``.

The ``[tool.repro-lint]`` table configures which rules run and where::

    [tool.repro-lint]
    enable = ["R001", "R002", "R003", "R004", "R005"]
    exclude = ["src/repro/_vendor"]

    [tool.repro-lint.rules.R003]
    allow = ["repro.sim.calendar"]

TOML parsing uses :mod:`tomllib` (Python 3.11+); on older interpreters
the defaults apply and a pyproject section is silently ignored — the
linter itself stays stdlib-only on every supported version.
"""

from __future__ import annotations

import fnmatch
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

try:  # Python 3.11+
    import tomllib
except ImportError:  # pragma: no cover - exercised only on py<3.11
    tomllib = None  # type: ignore[assignment]

#: Rule ids shipped with the linter, in report order.
DEFAULT_RULES = ("R001", "R002", "R003", "R004", "R005", "R006",
                 "R007")


@dataclass
class LintConfig:
    """Engine + rule configuration."""

    #: Rule ids to run (defaults to every registered rule).
    enable: List[str] = field(
        default_factory=lambda: list(DEFAULT_RULES))
    #: fnmatch-style path globs to skip entirely.
    exclude: List[str] = field(default_factory=list)
    #: Per-rule option tables, keyed by rule id.
    rule_options: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    #: Override for the event-schema source file (R004).  When ``None``
    #: the engine locates ``repro/chain/events.py`` under the source
    #: root of the files being linted.
    events_path: Optional[str] = None

    def options_for(self, rule_id: str) -> Dict[str, Any]:
        return self.rule_options.get(rule_id, {})

    def is_excluded(self, path: Path) -> bool:
        text = path.as_posix()
        return any(fnmatch.fnmatch(text, pattern)
                   or fnmatch.fnmatch(text, pattern.rstrip("/") + "/*")
                   for pattern in self.exclude)


def _coerce_str_list(value: Any) -> List[str]:
    if isinstance(value, str):
        return [value]
    if isinstance(value, (list, tuple)):
        return [str(item) for item in value]
    return []


def from_mapping(table: Dict[str, Any]) -> LintConfig:
    """Build a config from an already-parsed ``[tool.repro-lint]`` table."""
    config = LintConfig()
    if "enable" in table:
        config.enable = [rule.upper()
                         for rule in _coerce_str_list(table["enable"])]
    config.exclude = _coerce_str_list(table.get("exclude", []))
    if isinstance(table.get("events_path"), str):
        config.events_path = table["events_path"]
    rules = table.get("rules", {})
    if isinstance(rules, dict):
        for rule_id, options in rules.items():
            if isinstance(options, dict):
                config.rule_options[rule_id.upper()] = dict(options)
    return config


def load_config(pyproject: Optional[Path] = None,
                search_from: Optional[Path] = None) -> LintConfig:
    """Load config from ``pyproject.toml``.

    ``pyproject`` names the file explicitly; otherwise the directories
    from ``search_from`` upward are searched.  Missing file, missing
    section, or an interpreter without :mod:`tomllib` all yield the
    default config.
    """
    path = pyproject
    if path is None and search_from is not None:
        for directory in [search_from.resolve(),
                          *search_from.resolve().parents]:
            candidate = directory / "pyproject.toml"
            if candidate.is_file():
                path = candidate
                break
    if path is None or tomllib is None or not path.is_file():
        return LintConfig()
    try:
        with open(path, "rb") as stream:
            data = tomllib.load(stream)
    except (OSError, ValueError):
        return LintConfig()
    table = data.get("tool", {}).get("repro-lint", {})
    if not isinstance(table, dict):
        return LintConfig()
    return from_mapping(table)


def common_search_root(paths: Sequence[Path]) -> Path:
    """Directory to start the pyproject search from."""
    for path in paths:
        resolved = path.resolve()
        return resolved if resolved.is_dir() else resolved.parent
    return Path.cwd()
