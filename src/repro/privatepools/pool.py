"""Non-Flashbots private pools (Eden-like, Taichi-like, single-miner).

Section 6 of the paper studies MEV extracted through private channels
*other than* Flashbots: named networks (Eden; Taichi until its October
2021 shutdown) and ad-hoc arrangements where a miner mines its own — or a
partner's — transactions without ever gossiping them.

Unlike Flashbots, these pools publish nothing: no blocks API, no bundle
labels.  The only trace they leave is the paper's inference signal — their
transactions appear on chain without ever having been seen in the public
mempool.

Submissions are *ordered sequences* of transactions: a private sandwich
needs its member miner to place the two attacker legs around the public
victim, so the channel must carry ordering intent just like a Flashbots
bundle does (it simply never discloses it).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.chain.transaction import Transaction
from repro.chain.types import Address

PrivateSequence = Tuple[Transaction, ...]

#: How long a private submission stays deliverable, in blocks.  Private
#: order flow is as perishable as public order flow: a sandwich is only
#: meaningful while its victim is still pending (the mempool itself
#: evicts at 40 blocks), and an arbitrage is sized against reserves that
#: drift away within minutes.  Real channels behave the same way —
#: Flashbots bundles target a specific block and the relay drops them
#: once it passes — so a pool that carried stale sequences forever would
#: model a channel no operator runs and, at millions of blocks, make
#: every member-miner block pay for the entire history of dead intents.
DEFAULT_SEQUENCE_TTL_BLOCKS = 40


class PrivatePool:
    """A private transaction channel between submitters and member miners.

    ``single_miner`` pools model a miner mining its own MEV (Section 6.3's
    Flexpool/F2Pool finding); multi-miner pools model Eden/Taichi-style
    networks.  ``shutdown_block`` models Taichi's mid-study demise.
    """

    def __init__(self, name: str, miners: Sequence[Address],
                 shutdown_block: Optional[int] = None,
                 ttl_blocks: Optional[int] =
                 DEFAULT_SEQUENCE_TTL_BLOCKS) -> None:
        if not miners:
            raise ValueError("a private pool needs at least one miner")
        if ttl_blocks is not None and ttl_blocks <= 0:
            raise ValueError("ttl_blocks must be positive (or None)")
        self.name = name
        self.miners: Set[Address] = set(miners)
        self.shutdown_block = shutdown_block
        #: ``None`` disables expiry (a channel that never drops flow).
        self.ttl_blocks = ttl_blocks
        #: submit-ordered ``(submitted_at_block, sequence)`` entries;
        #: removals preserve order, so the list stays sorted by
        #: submission block and expiry is a front-drop.
        self._pending: List[Tuple[int, PrivateSequence]] = []
        self.submitted_count = 0
        self.expired_count = 0

    @property
    def is_single_miner(self) -> bool:
        return len(self.miners) == 1

    def is_active(self, block_number: int) -> bool:
        return (self.shutdown_block is None
                or block_number < self.shutdown_block)

    def has_miner(self, miner: Address) -> bool:
        return miner in self.miners

    # Submission & retrieval ----------------------------------------------------

    def submit(self, tx: Transaction, current_block: int) -> bool:
        """Accept a single private transaction; never gossiped."""
        return self.submit_sequence([tx], current_block)

    def submit_sequence(self, txs: Sequence[Transaction],
                        current_block: int) -> bool:
        """Accept an ordered private sequence (e.g. a sandwich)."""
        if not txs:
            return False
        if not self.is_active(current_block):
            return False
        self._pending.append((current_block, tuple(txs)))
        self.submitted_count += 1
        return True

    def pending_for(self, miner: Address,
                    block_number: int) -> List[PrivateSequence]:
        """Sequences a member miner may privately include, in order."""
        if miner not in self.miners or not self.is_active(block_number):
            return []
        return [seq for _, seq in self._pending]

    def mark_included(self, tx_hashes: Set[str]) -> None:
        """Drop sequences any of whose transactions landed on chain."""
        self._pending = [
            entry for entry in self._pending
            if not any(tx.hash in tx_hashes for tx in entry[1])]

    def expire_stale(self, block_number: int) -> int:
        """Drop sequences submitted more than ``ttl_blocks`` ago.

        Entries are submit-ordered, so expiry only ever trims a prefix.
        Returns the number of sequences dropped.
        """
        if self.ttl_blocks is None or not self._pending:
            return 0
        cutoff = block_number - self.ttl_blocks
        pending = self._pending
        drop = 0
        while drop < len(pending) and pending[drop][0] < cutoff:
            drop += 1
        if drop:
            del pending[:drop]
            self.expired_count += drop
        return drop

    def prune_dead(self, nonce_of: Callable[[Address], int]) -> int:
        """Drop sequences no future block can ever include.

        Inclusion requires every transaction to pass the builder's exact
        nonce check (``tx.nonce == state.nonce(sender)`` at its position,
        i.e. the account nonce plus the count of earlier same-sender
        transactions in the sequence).  Account nonces only increase, so
        once ``tx.nonce`` falls *below* that value the sequence is dead
        forever: every later attempt fails validation before touching
        state, drawing no randomness and emitting nothing.  Removing
        such sequences is therefore unobservable in simulated output —
        it only stops the per-block rescan of a backlog that can never
        land.  Returns the number of sequences dropped.
        """
        if not self._pending:
            return 0
        alive: List[Tuple[int, PrivateSequence]] = []
        dropped = 0
        for entry in self._pending:
            offsets: Dict[Address, int] = {}
            dead = False
            for tx in entry[1]:
                earlier = offsets.get(tx.sender, 0)
                if tx.nonce < nonce_of(tx.sender) + earlier:
                    dead = True
                    break
                offsets[tx.sender] = earlier + 1
            if dead:
                dropped += 1
            else:
                alive.append(entry)
        if dropped:
            self._pending = alive
        return dropped

    def pending_count(self) -> int:
        return len(self._pending)


class PrivatePoolDirectory:
    """All private pools in a scenario, indexed for miner-side lookup."""

    def __init__(self) -> None:
        self._pools: Dict[str, PrivatePool] = {}

    def add(self, pool: PrivatePool) -> PrivatePool:
        if pool.name in self._pools:
            raise ValueError(f"pool {pool.name!r} already exists")
        self._pools[pool.name] = pool
        return pool

    def get(self, name: str) -> Optional[PrivatePool]:
        return self._pools.get(name)

    @property
    def pools(self) -> List[PrivatePool]:
        return list(self._pools.values())

    def pools_for_miner(self, miner: Address,
                        block_number: int) -> List[PrivatePool]:
        return [pool for pool in self._pools.values()
                if pool.has_miner(miner) and pool.is_active(block_number)]

    def pending_for_miner(self, miner: Address,
                          block_number: int) -> List[PrivateSequence]:
        """All private sequences available to ``miner`` right now."""
        sequences: List[PrivateSequence] = []
        seen: Set[str] = set()
        for pool in self.pools_for_miner(miner, block_number):
            for seq in pool.pending_for(miner, block_number):
                key = seq[0].hash
                if key not in seen:
                    seen.add(key)
                    sequences.append(seq)
        return sequences

    def mark_included(self, tx_hashes: Set[str]) -> None:
        for pool in self._pools.values():
            pool.mark_included(tx_hashes)

    def expire_stale(self, block_number: int) -> int:
        """Apply per-pool TTL expiry; returns total sequences dropped."""
        return sum(pool.expire_stale(block_number)
                   for pool in self._pools.values())

    def prune_dead(self, nonce_of: Callable[[Address], int]) -> int:
        """Drop provably-dead sequences from every pool (see
        :meth:`PrivatePool.prune_dead`)."""
        return sum(pool.prune_dead(nonce_of)
                   for pool in self._pools.values())
