"""Non-Flashbots private pools (Eden-like, Taichi-like, single-miner).

Section 6 of the paper studies MEV extracted through private channels
*other than* Flashbots: named networks (Eden; Taichi until its October
2021 shutdown) and ad-hoc arrangements where a miner mines its own — or a
partner's — transactions without ever gossiping them.

Unlike Flashbots, these pools publish nothing: no blocks API, no bundle
labels.  The only trace they leave is the paper's inference signal — their
transactions appear on chain without ever having been seen in the public
mempool.

Submissions are *ordered sequences* of transactions: a private sandwich
needs its member miner to place the two attacker legs around the public
victim, so the channel must carry ordering intent just like a Flashbots
bundle does (it simply never discloses it).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.chain.transaction import Transaction
from repro.chain.types import Address

PrivateSequence = Tuple[Transaction, ...]


class PrivatePool:
    """A private transaction channel between submitters and member miners.

    ``single_miner`` pools model a miner mining its own MEV (Section 6.3's
    Flexpool/F2Pool finding); multi-miner pools model Eden/Taichi-style
    networks.  ``shutdown_block`` models Taichi's mid-study demise.
    """

    def __init__(self, name: str, miners: Sequence[Address],
                 shutdown_block: Optional[int] = None) -> None:
        if not miners:
            raise ValueError("a private pool needs at least one miner")
        self.name = name
        self.miners: Set[Address] = set(miners)
        self.shutdown_block = shutdown_block
        self._pending: List[PrivateSequence] = []
        self.submitted_count = 0

    @property
    def is_single_miner(self) -> bool:
        return len(self.miners) == 1

    def is_active(self, block_number: int) -> bool:
        return (self.shutdown_block is None
                or block_number < self.shutdown_block)

    def has_miner(self, miner: Address) -> bool:
        return miner in self.miners

    # Submission & retrieval ----------------------------------------------------

    def submit(self, tx: Transaction, current_block: int) -> bool:
        """Accept a single private transaction; never gossiped."""
        return self.submit_sequence([tx], current_block)

    def submit_sequence(self, txs: Sequence[Transaction],
                        current_block: int) -> bool:
        """Accept an ordered private sequence (e.g. a sandwich)."""
        if not txs:
            return False
        if not self.is_active(current_block):
            return False
        self._pending.append(tuple(txs))
        self.submitted_count += 1
        return True

    def pending_for(self, miner: Address,
                    block_number: int) -> List[PrivateSequence]:
        """Sequences a member miner may privately include, in order."""
        if miner not in self.miners or not self.is_active(block_number):
            return []
        return list(self._pending)

    def mark_included(self, tx_hashes: Set[str]) -> None:
        """Drop sequences any of whose transactions landed on chain."""
        self._pending = [
            seq for seq in self._pending
            if not any(tx.hash in tx_hashes for tx in seq)]

    def pending_count(self) -> int:
        return len(self._pending)


class PrivatePoolDirectory:
    """All private pools in a scenario, indexed for miner-side lookup."""

    def __init__(self) -> None:
        self._pools: Dict[str, PrivatePool] = {}

    def add(self, pool: PrivatePool) -> PrivatePool:
        if pool.name in self._pools:
            raise ValueError(f"pool {pool.name!r} already exists")
        self._pools[pool.name] = pool
        return pool

    def get(self, name: str) -> Optional[PrivatePool]:
        return self._pools.get(name)

    @property
    def pools(self) -> List[PrivatePool]:
        return list(self._pools.values())

    def pools_for_miner(self, miner: Address,
                        block_number: int) -> List[PrivatePool]:
        return [pool for pool in self._pools.values()
                if pool.has_miner(miner) and pool.is_active(block_number)]

    def pending_for_miner(self, miner: Address,
                          block_number: int) -> List[PrivateSequence]:
        """All private sequences available to ``miner`` right now."""
        sequences: List[PrivateSequence] = []
        seen: Set[str] = set()
        for pool in self.pools_for_miner(miner, block_number):
            for seq in pool.pending_for(miner, block_number):
                key = seq[0].hash
                if key not in seen:
                    seen.add(key)
                    sequences.append(seq)
        return sequences

    def mark_included(self, tx_hashes: Set[str]) -> None:
        for pool in self._pools.values():
            pool.mark_included(tx_hashes)
