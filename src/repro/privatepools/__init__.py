"""Non-Flashbots private pools (Eden/Taichi-like, single-miner)."""

from repro.privatepools.pool import PrivatePool, PrivatePoolDirectory

__all__ = ["PrivatePool", "PrivatePoolDirectory"]
