"""Command-line interface: simulate, measure, report, export, lint.

Usage::

    python -m repro run [--bpm N] [--seed S]        # full report
    python -m repro run --checkpoint ck.json --resume   # resume a crash
    python -m repro run --fault-profile chaos --fault-seed 3  # chaos run
    python -m repro table1 [--bpm N] [--seed S]     # just Table 1
    python -m repro figures [--bpm N] [--seed S]    # figure series
    python -m repro run --workers 4 --cache-dir .cache  # parallel + cached
    python -m repro run --follow                    # streaming (follow) mode
    python -m repro stream --fault-profile reorg    # hostile-feed follower
    python -m repro export PATH [--bpm N] [--seed S]  # JSONL dataset
    python -m repro serve [--port P]                # HTTP query service
    python -m repro serve --follow --fault-profile reorg  # live follow
    python -m repro serve --follow --smoke          # identity smoke gate
    python -m repro bench [--quick]                 # wall-clock benchmark
    python -m repro bench --serve                   # + HTTP load replay
    python -m repro bench --shard                   # + epoch-shard gate
    python -m repro run --bpm 5000 --blocks 100000 --epoch-blocks 5000 \\
        --segment-dir segments/                     # O(epoch) memory
    python -m repro lint [PATHS ...]                # invariant linter
"""

from __future__ import annotations

import argparse
import random
import sys
from typing import List, Optional

from repro import RunConfig, Study, quick_study
from repro.analysis import (
    bundle_stats,
    democratization,
    fig3_flashbots_block_ratio,
    fig4_hashrate_share,
    fig9_private_distribution,
    negative_profits,
    percent,
    profit_distribution,
    render_kv,
    render_quality,
    render_series,
    render_table,
)
from repro.core.pool_attribution import attribute_private_pools
from repro.faults import FAULT_PROFILES


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--bpm", type=int, default=60,
                        help="simulated blocks per month (default 60)")
    parser.add_argument("--seed", type=int, default=7,
                        help="scenario seed (default 7)")


def _add_reliability(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--chunk-size", type=int, default=None,
                        metavar="N",
                        help="measure N blocks per checkpointable chunk "
                             "(default: the whole range in one chunk)")
    parser.add_argument("--checkpoint", default=None, metavar="PATH",
                        help="write completed chunks to this JSON file")
    parser.add_argument("--resume", action="store_true",
                        help="continue from an existing checkpoint file "
                             "instead of starting over")
    parser.add_argument("--fault-profile", choices=FAULT_PROFILES,
                        default="none",
                        help="inject seeded data-source faults "
                             "(default: none)")
    parser.add_argument("--fault-seed", type=int, default=0,
                        help="seed for the injected fault plan "
                             "(default 0)")
    parser.add_argument("--workers", type=int, default=1, metavar="N",
                        help="run chunks across N worker processes "
                             "(default 1; output is bit-identical at "
                             "any worker count)")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="memoize per-chunk detection artifacts in "
                             "DIR, keyed to the scenario and fault "
                             "configuration")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'A Flash(bot) in the Pan' "
                    "(IMC 2022): simulate the study window and run the "
                    "measurement pipeline.")
    sub = parser.add_subparsers(dest="command", required=True)
    for name, help_text in (
            ("run", "simulate, measure, and print the full report"),
            ("table1", "print Table 1 only"),
            ("figures", "print the figure series"),
            ("ablations", "run the design-choice sensitivity sweeps")):
        command = sub.add_parser(name, help=help_text)
        _add_common(command)
        if name != "ablations":
            _add_reliability(command)
        if name == "run":
            command.add_argument(
                "--follow", action="store_true",
                help="streaming (follow) mode: replay the chain "
                     "through the incremental engine instead of one "
                     "batch pass; bit-identical output")
            command.add_argument(
                "--confirm-depth", type=int, default=3, metavar="K",
                help="blocks behind the head before a streamed block "
                     "is confirmed (default 3)")
            command.add_argument(
                "--blocks", type=int, default=None, metavar="N",
                help="simulate only the first N blocks of the study "
                     "window (default: the whole window)")
            command.add_argument(
                "--epoch-blocks", type=int, default=None, metavar="N",
                help="epoch width in blocks for sealing and segment "
                     "spilling (default: one month)")
            command.add_argument(
                "--max-resident-epochs", type=int, default=2,
                metavar="K",
                help="with --segment-dir: newest epochs kept in "
                     "memory; older ones are served from segment "
                     "files (default 2)")
            command.add_argument(
                "--segment-dir", default=None, metavar="DIR",
                help="spill completed epochs to fingerprinted "
                     "segment files in DIR so peak memory is "
                     "O(epoch), not O(world); required for "
                     "million-block scenarios")
            command.add_argument(
                "--overlap-io", action=argparse.BooleanOptionalAction,
                default=True,
                help="with --segment-dir: write segment files on a "
                     "background thread so the simulation never "
                     "blocks on disk (default on; --no-overlap-io "
                     "spills synchronously — byte-identical files "
                     "either way)")
    stream = sub.add_parser(
        "stream",
        help="follow the chain through a (possibly hostile) block "
             "feed and verify convergence with the batch pipeline")
    _add_common(stream)
    stream.add_argument("--fault-profile", choices=("none", "reorg"),
                        default="reorg",
                        help="feed fault scenario: 'reorg' injects "
                             "seeded head reorgs, delayed/duplicate "
                             "announcements, and an outage window "
                             "(default: reorg)")
    stream.add_argument("--fault-seed", type=int, default=0,
                        help="seed for the injected feed faults "
                             "(default 0)")
    stream.add_argument("--confirm-depth", type=int, default=3,
                        metavar="K",
                        help="blocks behind the head before a streamed "
                             "block is confirmed (default 3)")
    stream.add_argument("--checkpoint", default=None, metavar="PATH",
                        help="checkpoint the watermark and pending "
                             "window to this JSON file")
    stream.add_argument("--resume", action="store_true",
                        help="reuse payloads from an existing stream "
                             "checkpoint instead of recomputing")
    serve = sub.add_parser(
        "serve",
        help="serve the measured MEV dataset over HTTP (per-block and "
             "per-range rows, Table-1 aggregates, leaderboards, "
             "coverage)")
    _add_common(serve)
    serve.add_argument("--follow", action="store_true",
                       help="feed the served store live from the "
                            "streaming engine instead of snapshotting "
                            "a completed batch run")
    serve.add_argument("--fault-profile", choices=("none", "reorg"),
                       default="none",
                       help="with --follow: inject seeded feed faults "
                            "(reorgs, delays, duplicates) while "
                            "serving (default: none)")
    serve.add_argument("--fault-seed", type=int, default=0,
                       help="seed for the injected feed faults "
                            "(default 0)")
    serve.add_argument("--confirm-depth", type=int, default=3,
                       metavar="K",
                       help="with --follow: blocks behind the head "
                            "before a streamed block is confirmed "
                            "(default 3)")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=0,
                       help="bind port (default 0: pick a free port "
                            "and print it)")
    serve.add_argument("--smoke", action="store_true",
                       help="with --follow: ingest the whole feed with "
                            "HTTP probes after every reorg "
                            "retraction, then exit 0 only if the "
                            "stream-built store serves byte-identical "
                            "responses to a batch-built one")
    export = sub.add_parser("export",
                            help="write the detected MEV dataset as "
                                 "JSONL")
    export.add_argument("path", help="output file path")
    _add_common(export)
    _add_reliability(export)
    bench = sub.add_parser("bench",
                           help="benchmark the pipeline (detection, "
                                "joins, end-to-end at several worker "
                                "counts) and write BENCH_pipeline.json")
    _add_common(bench)
    bench.add_argument("--quick", action="store_true",
                       help="small scenario for CI smoke runs")
    bench.add_argument("--workers", type=int, nargs="+",
                       default=None, metavar="N",
                       help="worker counts to sweep (default: 1 2 4)")
    bench.add_argument("--chunk-size", type=int, default=None,
                       metavar="N",
                       help="blocks per chunk (default: range/8)")
    bench.add_argument("--output", default="BENCH_pipeline.json",
                       metavar="PATH",
                       help="where to write the JSON report "
                            "(default: BENCH_pipeline.json)")
    bench.add_argument("--world-cache", default=None, metavar="DIR",
                       help="directory of world snapshots keyed by "
                            "scenario digest; hits skip the expensive "
                            "simulation step (content-verified, falls "
                            "back to a fresh sim on any mismatch)")
    bench.add_argument("--profile", action="store_true",
                       help="wrap each stage in cProfile and write "
                            "top-25 cumulative tables to "
                            "<output>.profile.txt (inflates wall "
                            "times; for attribution, not comparison)")
    bench.add_argument("--serve", action="store_true",
                       help="add the query-service stage: feed a "
                            "store live from the stream engine, gate "
                            "on byte-identical responses vs the "
                            "batch-built store, then replay a seeded "
                            "HTTP load mix (p50/p99/qps)")
    bench.add_argument("--serve-requests", type=int, default=300,
                       metavar="N",
                       help="requests in the serve replay mix "
                            "(default 300)")
    bench.add_argument("--shard", action="store_true",
                       help="add the epoch-shard stage: seal the "
                            "serial world at epoch boundaries, "
                            "re-simulate every epoch independently "
                            "from its seal across workers, splice, "
                            "and gate on a bit-identical block/tx "
                            "hash sequence (shard_identical)")
    bench.add_argument("--shard-workers", type=int, default=2,
                       metavar="N",
                       help="worker count for the epoch "
                            "re-simulation fan-out (default 2)")
    bench.add_argument("--shard-prefix", type=int, default=None,
                       metavar="K",
                       help="re-simulate only the first K epochs "
                            "(sampled-prefix gate for scenarios too "
                            "large to reference in full)")
    lint = sub.add_parser("lint",
                          help="run the domain-invariant linter "
                               "(R001–R006; --deep adds R101–R103) "
                               "over source paths")
    lint.add_argument("paths", nargs="*", default=["src"],
                      help="files or directories to lint "
                           "(default: src)")
    lint.add_argument("--format", choices=("text", "json", "sarif"),
                      default="text", help="report format")
    lint.add_argument("--deep", action="store_true",
                      help="also run the whole-program analyzers")
    lint.add_argument("--baseline", metavar="FILE",
                      help="findings baseline to diff against")
    lint.add_argument("--write-baseline", action="store_true",
                      help="refresh the baseline file and exit 0")
    lint.add_argument("--flow-cache", metavar="DIR",
                      help="summary cache dir for incremental --deep")
    lint.add_argument("--no-config", action="store_true",
                      help="ignore pyproject.toml configuration")
    return parser


def _run_config(args: argparse.Namespace) -> RunConfig:
    """The one :class:`RunConfig` a CLI invocation describes.

    ``cache_key`` is derived from everything that shapes the cached
    artifacts' world — scenario and fault selection — so two CLI runs
    share cache entries exactly when they measure the same world.
    """
    cache_dir = getattr(args, "cache_dir", None)
    cache_key = None
    if cache_dir is not None:
        cache_key = (f"bpm={args.bpm}:seed={args.seed}"
                     f":faults={getattr(args, 'fault_profile', 'none')}"
                     f":fseed={getattr(args, 'fault_seed', 0)}")
    return RunConfig(
        chunk_size=getattr(args, "chunk_size", None),
        checkpoint=getattr(args, "checkpoint", None),
        resume=getattr(args, "resume", False),
        fault_profile=getattr(args, "fault_profile", "none"),
        fault_seed=getattr(args, "fault_seed", 0),
        workers=getattr(args, "workers", 1),
        cache_dir=cache_dir,
        cache_key=cache_key)


def _study(args: argparse.Namespace) -> Study:
    print(f"Simulating 23 months at {args.bpm} blocks/month "
          f"(seed {args.seed}) …", file=sys.stderr)
    config = _run_config(args)
    if config.fault_profile != "none":
        print(f"Injecting '{config.fault_profile}' faults "
              f"(fault seed {config.fault_seed}) …", file=sys.stderr)
    if config.checkpoint and config.resume:
        print(f"Resuming from checkpoint {config.checkpoint} …",
              file=sys.stderr)
    if getattr(args, "follow", False):
        from repro import follow_study
        if getattr(args, "blocks", None) is not None \
                or getattr(args, "segment_dir", None) is not None:
            print("ERROR: --blocks/--segment-dir apply to batch runs, "
                  "not --follow", file=sys.stderr)
            raise SystemExit(2)
        print(f"Following the chain head (streaming mode, "
              f"confirm depth {args.confirm_depth}) …", file=sys.stderr)
        return follow_study(blocks_per_month=args.bpm, seed=args.seed,
                            confirm_depth=args.confirm_depth,
                            checkpoint=config.checkpoint,
                            resume=config.resume, run_config=config)
    if config.workers > 1:
        print(f"Running chunks across {config.workers} workers …",
              file=sys.stderr)
    scenario_overrides = {}
    if getattr(args, "epoch_blocks", None) is not None:
        scenario_overrides["epoch_blocks"] = args.epoch_blocks
    segment_dir = getattr(args, "segment_dir", None)
    if segment_dir is not None:
        print(f"Spilling completed epochs to {segment_dir} "
              f"(max resident epochs "
              f"{getattr(args, 'max_resident_epochs', 2)}) …",
              file=sys.stderr)
    return quick_study(blocks_per_month=args.bpm, seed=args.seed,
                       run_config=config,
                       blocks=getattr(args, "blocks", None),
                       max_resident_epochs=getattr(
                           args, "max_resident_epochs", None),
                       segment_dir=segment_dir,
                       overlap_io=getattr(args, "overlap_io", True),
                       **scenario_overrides)


def print_table1(study: Study) -> None:
    print(render_table(
        ["MEV Strategy", "Extractions", "Via Flashbots",
         "Via Flash Loans", "Via Both"],
        [(r.strategy, r.extractions,
          f"{r.via_flashbots} ({percent(r.share_flashbots())})",
          f"{r.via_flash_loans} ({percent(r.share_flash_loans())})",
          f"{r.via_both} ({percent(r.share_both())})")
         for r in study.table1]))


def print_figures(study: Study) -> None:
    result = study.result
    print(render_series(
        "Figure 3 — Flashbots block ratio",
        fig3_flashbots_block_ratio(result.node, result.flashbots_api,
                                   result.calendar)))
    print()
    print(render_series(
        "Figure 4 — estimated Flashbots hashrate share",
        fig4_hashrate_share(result.node, result.flashbots_api,
                            result.calendar)))
    dist = fig9_private_distribution(study.dataset)
    print("\n" + render_kv(
        "Figure 9 — sandwich privacy in the observation window",
        [("flashbots", f"{dist.flashbots} "
                       f"({percent(dist.share('flashbots'))})"),
         ("other private", f"{dist.private} "
                           f"({percent(dist.share('private'))})"),
         ("public", f"{dist.public} "
                    f"({percent(dist.share('public'))})")]))


def print_full_report(study: Study) -> None:
    result, dataset = study.result, study.dataset
    print_table1(study)
    print()
    print_figures(study)

    stats = bundle_stats(result.flashbots_api)
    print("\n" + render_kv("Section 4.1 — bundle statistics", [
        ("flashbots blocks", stats.total_blocks),
        ("bundles", stats.total_bundles),
        ("bundles/block mean", f"{stats.bundles_per_block_mean:.2f}"),
        ("txs/bundle mean", f"{stats.txs_per_bundle_mean:.2f}"),
        ("largest bundle", stats.largest_bundle_txs)]))

    report = profit_distribution(dataset)
    print("\n" + render_kv("Figure 8 — the profit inversion", [
        ("miner take via FB (ETH/sandwich)",
         f"{report.stats.miners_flashbots.mean:.4f}"),
        ("miner take without FB",
         f"{report.stats.miners_non_flashbots.mean:.4f}"),
        ("miner uplift (paper ~2.6x)",
         f"{report.miner_uplift:.2f}x"),
        ("searcher profit via FB",
         f"{report.stats.searchers_flashbots.mean:.4f}"),
        ("searcher profit without FB",
         f"{report.stats.searchers_non_flashbots.mean:.4f}"),
        ("searcher drop (paper ~84.4%)",
         percent(report.searcher_drop))]))

    losses = negative_profits(dataset)
    print("\n" + render_kv("Section 5.2 — negative profits", [
        ("unprofitable FB sandwiches", losses.unprofitable),
        ("share (paper 1.58%)", percent(losses.unprofitable_share)),
        ("losses (ETH)", f"{losses.loss_total_eth:.3f}")]))

    attribution = attribute_private_pools(dataset)
    print("\n" + render_kv("Section 6.3 — pool attribution", [
        ("miners with private sandwiches", attribution.n_miners),
        ("extractor accounts", attribution.n_accounts),
        ("single-miner extractors",
         len(attribution.single_miner_extractors))]))

    concentration = democratization(result.flashbots_api,
                                    result.calendar)
    print("\n" + render_kv("Goal 2 — (de)centralization", [
        ("max FB miners in a month",
         concentration.max_miners_in_a_month),
        ("top-2 miner share of FB blocks",
         percent(concentration.top2_block_share))]))

    print("\n" + render_quality(dataset.quality))


def print_ablations(bpm: int, seed: int,
                    rng: Optional[random.Random] = None) -> None:
    """Run the sensitivity sweeps; ``rng`` defaults to a fresh seeded
    ``random.Random(seed)`` so repeated invocations replay exactly."""
    from repro.agents.pga import compare_mechanisms
    from repro.analysis.sensitivity import (
        observation_rate_sweep,
        tip_fraction_sweep,
    )
    sweep_bpm = max(10, bpm // 3)
    print(render_table(
        ["Sealed-bid tip mean", "Miner uplift", "Searcher FB mean"],
        [(f"{p.tip_mean:.2f}", f"{p.miner_uplift:.2f}x",
          f"{p.searcher_fb_mean_eth:.4f} ETH")
         for p in tip_fraction_sweep([0.4, 0.8],
                                     blocks_per_month=sweep_bpm,
                                     seed=seed)]))
    print()
    print(render_table(
        ["Observation rate", "Private precision", "Private recall"],
        [(f"{p.observation_rate:.3f}", f"{p.private_precision:.2f}",
          f"{p.private_recall:.2f}")
         for p in observation_rate_sweep([0.995, 0.5],
                                         blocks_per_month=sweep_bpm,
                                         seed=seed)]))
    result = compare_mechanisms(rng or random.Random(seed),
                                opportunities=300)
    print("\n" + render_kv("Auction mechanisms (§8.2)", [
        ("miner share, open PGA", percent(result.pga_miner_share)),
        ("miner share, sealed bid",
         percent(result.sealed_miner_share))]))


def run_stream_command(args: argparse.Namespace) -> int:
    """Follow the chain through a hostile feed; verify convergence.

    The streamed dataset — rows and quality ledger — must be
    bit-identical to the batch pipeline over the final canonical chain
    (modulo checkpoint-resume markers).  Divergence exits nonzero.
    """
    import json

    from repro import ScenarioConfig, build_paper_scenario
    from repro.chain.node import ArchiveNode
    from repro.core import MevInspector, PriceService
    from repro.faults import FaultPlan
    from repro.faults.feed import ChainFeed, FaultyFeed
    from repro.stream import StreamEngine

    print(f"Simulating 23 months at {args.bpm} blocks/month "
          f"(seed {args.seed}) …", file=sys.stderr)
    result = build_paper_scenario(
        ScenarioConfig(blocks_per_month=args.bpm, seed=args.seed)).run()
    first = result.node.earliest_block_number()
    last = result.node.latest_block_number()
    prices = PriceService(result.oracle)
    if args.fault_profile == "none":
        feed: object = ChainFeed(result.blockchain)
    else:
        plan = FaultPlan.from_profile(args.fault_profile,
                                      args.fault_seed, first, last)
        feed = FaultyFeed(result.blockchain, plan)
        print(f"Injecting '{args.fault_profile}' feed faults "
              f"(fault seed {args.fault_seed}) …", file=sys.stderr)
    if args.checkpoint and args.resume:
        print(f"Resuming from checkpoint {args.checkpoint} …",
              file=sys.stderr)
    engine = StreamEngine(prices, first_block=first,
                          confirm_depth=args.confirm_depth,
                          flashbots_api=result.flashbots_api,
                          observer=result.observer,
                          checkpoint=args.checkpoint,
                          resume=args.resume)
    dataset = engine.run(feed)
    report = engine.report
    print(render_kv("Stream report", [
        ("blocks", last - first + 1),
        ("feed events", report.events),
        ("reorgs", f"{report.reorgs} (max depth "
                   f"{report.max_reorg_depth})"),
        ("duplicates", report.duplicates),
        ("out of order", report.out_of_order),
        ("rows retracted", f"{report.retracted_rows} across "
                           f"{report.retracted_blocks} blocks"),
        ("payloads reused", report.payloads_reused)]))

    batch = MevInspector(ArchiveNode(result.blockchain), prices,
                         result.flashbots_api,
                         result.observer).run(
                             config=RunConfig(chunk_size=1))
    stream_quality = dataset.quality.to_dict()
    batch_quality = batch.quality.to_dict()
    for document in (stream_quality, batch_quality):
        document["resumed"] = False
        document["chunks_resumed"] = 0
    identical = (
        json.dumps(dataset.to_rows(), sort_keys=True)
        == json.dumps(batch.to_rows(), sort_keys=True)
        and json.dumps(stream_quality, sort_keys=True)
        == json.dumps(batch_quality, sort_keys=True))
    print("\n" + render_quality(dataset.quality))
    print("\nstreamed identical to batch: "
          + ("yes" if identical else "NO"))
    if not identical:
        print("ERROR: streamed dataset diverged from the batch "
              "pipeline over the canonical chain", file=sys.stderr)
        return 1
    return 0


def run_serve_command(args: argparse.Namespace) -> int:
    """Serve the measured MEV dataset over HTTP.

    Batch mode snapshots a completed pipeline run into the store and
    serves it.  ``--follow`` instead feeds the store live from the
    streaming engine — every indexed block, every reorg retraction,
    and the final label reconcile land in the served rows as they
    happen.  ``--smoke`` drives a follow run to completion, probing
    over HTTP after every retraction, and exits 0 only if the
    stream-built store serves byte-identical responses to a
    batch-built one (the identity rule, end to end over a socket).
    """
    import asyncio

    from repro import ScenarioConfig, build_paper_scenario
    from repro.chain.node import ArchiveNode
    from repro.core import MevInspector, PriceService
    from repro.faults import FaultPlan
    from repro.faults.feed import ChainFeed, FaultyFeed
    from repro.serve import (MevHttpServer, probe_once,
                             responses_identical, service_from_dataset,
                             stream_service)
    from repro.stream import StreamSubscriber

    if (args.smoke or args.fault_profile != "none") and not args.follow:
        print("ERROR: --smoke and --fault-profile require --follow",
              file=sys.stderr)
        return 2

    print(f"Simulating 23 months at {args.bpm} blocks/month "
          f"(seed {args.seed}) …", file=sys.stderr)
    result = build_paper_scenario(
        ScenarioConfig(blocks_per_month=args.bpm, seed=args.seed)).run()
    prices = PriceService(result.oracle)
    first = result.node.earliest_block_number()

    def batch_dataset():
        return MevInspector(
            ArchiveNode(result.blockchain), prices,
            result.flashbots_api, result.observer).run(
                config=RunConfig(chunk_size=1))

    if not args.follow:
        service = service_from_dataset(batch_dataset())
        try:
            return asyncio.run(_serve_until_interrupted(
                MevHttpServer(service, host=args.host,
                              port=args.port)))
        except KeyboardInterrupt:
            return 0

    class RetractionLog(StreamSubscriber):
        """Heights whose served rows a reorg just superseded."""

        def __init__(self) -> None:
            self.heights: List[int] = []

        def block_retracted(self, height, block_hash,
                            rows_retracted) -> None:
            self.heights.append(height)

    config = RunConfig(confirm_depth=args.confirm_depth)
    service, engine = stream_service(
        prices, first, flashbots_api=result.flashbots_api,
        observer=result.observer, config=config)
    retractions = RetractionLog()
    engine.subscribe(retractions)
    if args.fault_profile == "none":
        feed: object = ChainFeed(result.blockchain)
    else:
        last = result.node.latest_block_number()
        plan = FaultPlan.from_profile(args.fault_profile,
                                      args.fault_seed, first, last)
        feed = FaultyFeed(result.blockchain, plan)
        print(f"Injecting '{args.fault_profile}' feed faults "
              f"(fault seed {args.fault_seed}) …", file=sys.stderr)

    async def follow() -> int:
        server = MevHttpServer(service, host=args.host, port=args.port)
        await server.start()
        print(f"serving on {server.base_url}", file=sys.stderr)
        probed = 0
        probe_errors = 0
        try:
            for event in feed:
                engine.ingest(event)
                # Yield so in-flight connections are handled between
                # announcements — the store is shared, not snapshotted.
                await asyncio.sleep(0)
                while probed < len(retractions.heights):
                    height = retractions.heights[probed]
                    probed += 1
                    status, _, _ = await probe_once(
                        args.host, server.port or 0,
                        f"/v1/blocks/{height}/mev")
                    if status != 200:
                        probe_errors += 1
            engine.finalize()
            report = engine.report
            print(f"followed {report.events} feed events: "
                  f"{report.reorgs} reorgs, {report.retracted_rows} "
                  f"rows retracted across {report.retracted_blocks} "
                  f"blocks; {probed} mid-stream retraction probes "
                  f"({probe_errors} errors)", file=sys.stderr)
            if not args.smoke:
                print("finalized; serving (Ctrl-C to stop)",
                      file=sys.stderr)
                await server.serve_forever()
                return 0
            identical = responses_identical(
                service_from_dataset(batch_dataset()), service)
            print("serve responses identical batch vs stream: "
                  + ("yes" if identical else "NO"))
            if probe_errors or not identical:
                print("ERROR: stream-built store diverged from the "
                      "batch-built store", file=sys.stderr)
                return 1
            return 0
        except KeyboardInterrupt:
            return 0
        finally:
            await server.stop()

    try:
        return asyncio.run(follow())
    except KeyboardInterrupt:
        return 0


async def _serve_until_interrupted(server) -> int:
    """Start ``server`` and block until Ctrl-C."""
    await server.start()
    print(f"serving on {server.base_url}", file=sys.stderr)
    print("try: curl " + server.base_url + "/v1/aggregates/table1",
          file=sys.stderr)
    try:
        await server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        await server.stop()
    return 0


def run_bench_command(args: argparse.Namespace) -> int:
    """Run the wall-clock benchmark; nonzero exit on divergence.

    A parallel run that is not bit-identical to the serial one — or an
    optimized simulation whose block/tx hash sequence differs from the
    naive reference paths — is a correctness failure, not a
    performance number.  CI gates on all of them.
    """
    from repro.bench import DEFAULT_WORKERS, render_report, run_bench, \
        write_report
    workers = tuple(args.workers) if args.workers else DEFAULT_WORKERS
    print(f"Benchmarking (bpm={args.bpm}, seed={args.seed}, "
          f"workers={list(workers)}"
          + (", quick" if args.quick else "") + ") …", file=sys.stderr)
    report = run_bench(bpm=args.bpm, seed=args.seed, workers=workers,
                       chunk_size=args.chunk_size, quick=args.quick,
                       world_cache=args.world_cache,
                       profile=args.profile, serve=args.serve,
                       serve_requests=args.serve_requests,
                       shard=args.shard,
                       shard_workers=args.shard_workers,
                       shard_prefix_epochs=args.shard_prefix)
    write_report(report, args.output)
    print(render_report(report))
    print(f"wrote {args.output}")
    if args.profile:
        profile_path = args.output + ".profile.txt"
        with open(profile_path, "w", encoding="utf-8") as stream:
            for stage, table in report.get("profile", {}).items():
                stream.write(f"===== {stage} =====\n{table}\n")
        print(f"wrote {profile_path}")
    if report.get("sim_identical") is False:
        print("ERROR: optimized simulation diverged from the "
              "reference paths", file=sys.stderr)
        return 1
    if not report["parallel_identical"]:
        print("ERROR: parallel run diverged from serial run",
              file=sys.stderr)
        return 1
    if not report["indexed_matches_linear"]:
        print("ERROR: indexed read path diverged from linear scan",
              file=sys.stderr)
        return 1
    if report.get("stream_identical") is False:
        print("ERROR: streamed dataset diverged from the batch "
              "pipeline over the canonical chain", file=sys.stderr)
        return 1
    if report.get("serve_identical") is False:
        print("ERROR: stream-built store served responses that "
              "diverged from the batch-built store", file=sys.stderr)
        return 1
    if report.get("shard_identical") is False:
        print("ERROR: sharded epoch splice diverged from the serial "
              "block/tx hash sequence", file=sys.stderr)
        return 1
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "lint":
        from repro.lint.cli import main as lint_main
        lint_argv = list(args.paths) + ["--format", args.format]
        if args.deep:
            lint_argv.append("--deep")
        if args.baseline:
            lint_argv.extend(["--baseline", args.baseline])
        if args.write_baseline:
            lint_argv.append("--write-baseline")
        if args.flow_cache:
            lint_argv.extend(["--flow-cache", args.flow_cache])
        if args.no_config:
            lint_argv.append("--no-config")
        return lint_main(lint_argv)
    if args.command == "ablations":
        print_ablations(args.bpm, args.seed)
        return 0
    if args.command == "bench":
        return run_bench_command(args)
    if args.command == "stream":
        return run_stream_command(args)
    if args.command == "serve":
        return run_serve_command(args)
    study = _study(args)
    if args.command == "table1":
        print_table1(study)
    elif args.command == "figures":
        print_figures(study)
    elif args.command == "export":
        with open(args.path, "w", encoding="utf-8") as stream:
            study.dataset.dump_jsonl(stream)
        totals = study.dataset.totals()
        print(f"wrote {totals['total']} records "
              f"({totals['sandwich']} sandwiches, "
              f"{totals['arbitrage']} arbitrages, "
              f"{totals['liquidation']} liquidations) to {args.path}")
    else:
        print_full_report(study)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
