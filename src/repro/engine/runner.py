"""The unit of work executors schedule: one chunk's detections.

``ChunkRunner`` owns everything a worker process needs to detect MEV in
one block range: the (possibly fault-wrapped) archive surface, the
price service, and the retry/breaker parameters.  It is picklable by
construction — plain data, no open handles, no lambdas — so the
parallel executor can ship one copy to each worker.

**Chunk isolation.**  Every chunk runs against a *fresh*
``ReliableArchiveNode`` (fresh breaker, fresh stats ledger, the same
frozen retry policy).  Injected faults are pure in ``(seed, source,
op, key)`` and every operation key is chunk-local, so a chunk's result
— rows, flash-loan transactions, resilience counters, or a permanent
failure — is a pure function of ``(world, fault plan, chunk)``.  That
is what makes execution order irrelevant and parallel runs bit-identical
to serial ones; it also scopes a blackout's breaker trips to the chunks
the blackout actually covers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Tuple

from repro.engine.executors import ChunkResult, ChunkStats
from repro.faults.errors import DataSourceError
from repro.reliability.circuit import CircuitBreaker
from repro.reliability.retry import RetryExhaustedError, RetryPolicy
from repro.reliability.sources import ReliableArchiveNode

BlockRange = Tuple[int, int]

#: errors that mark a chunk as permanently failed instead of crashing
CHUNK_FAILURES = (DataSourceError, RetryExhaustedError)


@dataclass
class ChunkRunner:
    """Detect MEV in one chunk with chunk-isolated resilience state.

    ``node`` is the *unshielded* archive surface (real or
    fault-injected); when ``retry`` is set, each chunk wraps it in a
    fresh ``ReliableArchiveNode`` so retries/breaker trips are counted
    per chunk.  ``retry=None`` reproduces the bare-node behaviour of a
    pipeline built without :func:`repro.reliability.shield`.
    """

    node: Any
    prices: Any
    retry: Optional[RetryPolicy] = None
    failure_threshold: int = 5
    cooldown_calls: int = 10

    @classmethod
    def for_pipeline(cls, node: Any, prices: Any) -> "ChunkRunner":
        """A runner matching how the pipeline's node is armored.

        A ``ReliableArchiveNode`` is unwrapped to its inner transport
        plus the retry/breaker parameters it was built with; anything
        else runs bare, exactly as it would have in-process.
        """
        caller = getattr(node, "caller", None)
        inner = getattr(node, "inner", None)
        if caller is None or inner is None:
            return cls(node=node, prices=prices, retry=None)
        breaker = caller.breaker
        return cls(node=inner, prices=prices, retry=caller.retry,
                   failure_threshold=breaker.failure_threshold,
                   cooldown_calls=breaker.cooldown_calls)

    def _chunk_node(self) -> Any:
        if self.retry is None:
            return self.node
        breaker = CircuitBreaker(
            "archive", failure_threshold=self.failure_threshold,
            cooldown_calls=self.cooldown_calls)
        return ReliableArchiveNode(self.node, self.retry, breaker)

    def run_chunk(self, chunk: BlockRange) -> ChunkResult:
        """One chunk's detections as a checkpointable artifact."""
        # Imported here, not at module top: repro.core imports the
        # engine (pipeline → executors/runner), so the runner reaches
        # back into repro.core lazily to keep the import DAG acyclic.
        from repro.core.datasets import MevDataset
        from repro.core.heuristics.arbitrage import detect_arbitrages
        from repro.core.heuristics.flashloan import detect_flash_loan_txs
        from repro.core.heuristics.liquidation import detect_liquidations
        from repro.core.heuristics.sandwich import detect_sandwiches

        node = self._chunk_node()
        lo, hi = chunk
        try:
            partial = MevDataset(
                sandwiches=detect_sandwiches(node, self.prices, lo, hi),
                arbitrages=detect_arbitrages(node, self.prices, lo, hi),
                liquidations=detect_liquidations(node, self.prices,
                                                 lo, hi),
            )
            flash_txs = detect_flash_loan_txs(node, lo, hi)
        except CHUNK_FAILURES:
            return ChunkResult(chunk=chunk, payload=None,
                               stats=self._stats_of(node))
        payload = {"rows": partial.to_rows(),
                   "flash_txs": sorted(flash_txs)}
        return ChunkResult(chunk=chunk, payload=payload,
                           stats=self._stats_of(node))

    @staticmethod
    def _stats_of(node: Any) -> ChunkStats:
        caller = getattr(node, "caller", None)
        if caller is None:
            return ChunkStats()
        stats = caller.stats
        return ChunkStats(
            requests=stats.requests,
            retries=stats.retries,
            failed_attempts=stats.failed_attempts,
            exhausted=stats.exhausted,
            simulated_backoff_s=stats.simulated_backoff_s,
            breaker_trips=caller.breaker_trips)
