"""The unit of work executors schedule: one chunk's detections.

``ChunkRunner`` owns everything a worker process needs to detect MEV in
one block range: the (possibly fault-wrapped) archive surface, the
price service, and the retry/breaker parameters.  It is picklable by
construction — plain data, no open handles, no lambdas — so the
parallel executor can ship one copy to each worker.

**Chunk isolation.**  Every chunk runs against a *fresh*
``ReliableArchiveNode`` (fresh breaker, fresh stats ledger, the same
frozen retry policy).  Injected faults are pure in ``(seed, source,
op, key)`` and every operation key is chunk-local, so a chunk's result
— rows, flash-loan transactions, resilience counters, or a permanent
failure — is a pure function of ``(world, fault plan, chunk)``.  That
is what makes execution order irrelevant and parallel runs bit-identical
to serial ones; it also scopes a blackout's breaker trips to the chunks
the blackout actually covers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Tuple

from repro.engine.executors import ChunkResult, ChunkStats
from repro.faults.errors import DataSourceError
from repro.reliability.circuit import CircuitBreaker
from repro.reliability.retry import RetryExhaustedError, RetryPolicy
from repro.reliability.sources import ReliableArchiveNode

BlockRange = Tuple[int, int]

#: errors that mark a chunk as permanently failed instead of crashing
CHUNK_FAILURES = (DataSourceError, RetryExhaustedError)


@dataclass
class ChunkRunner:
    """Detect MEV in one chunk with chunk-isolated resilience state.

    ``node`` is the *unshielded* archive surface (real or
    fault-injected); when ``retry`` is set, each chunk wraps it in a
    fresh ``ReliableArchiveNode`` so retries/breaker trips are counted
    per chunk.  ``retry=None`` reproduces the bare-node behaviour of a
    pipeline built without :func:`repro.reliability.shield`.
    """

    node: Any
    prices: Any
    retry: Optional[RetryPolicy] = None
    failure_threshold: int = 5
    cooldown_calls: int = 10

    @classmethod
    def for_pipeline(cls, node: Any, prices: Any) -> "ChunkRunner":
        """A runner matching how the pipeline's node is armored.

        A ``ReliableArchiveNode`` is unwrapped to its inner transport
        plus the retry/breaker parameters it was built with; anything
        else runs bare, exactly as it would have in-process.
        """
        caller = getattr(node, "caller", None)
        inner = getattr(node, "inner", None)
        if caller is None or inner is None:
            return cls(node=node, prices=prices, retry=None)
        breaker = caller.breaker
        return cls(node=inner, prices=prices, retry=caller.retry,
                   failure_threshold=breaker.failure_threshold,
                   cooldown_calls=breaker.cooldown_calls)

    def _chunk_node(self) -> Any:
        if self.retry is None:
            return self.node
        breaker = CircuitBreaker(
            "archive", failure_threshold=self.failure_threshold,
            cooldown_calls=self.cooldown_calls)
        return ReliableArchiveNode(self.node, self.retry, breaker)

    def warm_index(self) -> None:
        """Build the chain's read index once, here in the parent,
        before any fan-out: forked workers inherit the built index
        copy-on-write instead of each paying the first-query build.
        Walks wrapper facades (``.inner``) down to whatever exposes
        ``warm_index``; a no-op for surfaces that don't."""
        node = self.node
        while node is not None:
            warm = getattr(node, "warm_index", None)
            if warm is not None:
                warm()
                return
            node = getattr(node, "inner", None)

    def _read_index(self) -> Any:
        """The chain's shared read index, when the underlying archive
        surface is an indexed ``ArchiveNode``; ``None`` for linear
        surfaces (then the scan walks receipts directly).  Wrappers
        (fault transports, facades) are unwrapped via ``.inner``."""
        node = self.node
        while node is not None:
            chain = getattr(node, "chain", None)
            if chain is not None:
                # Segment-backed chains have no in-memory index; their
                # ranged reads bisect the segment manifest instead, so
                # the chunk scan treats them as a linear surface.
                if getattr(node, "segmented", False):
                    return None
                return chain.index if getattr(node, "indexed",
                                              False) else None
            node = getattr(node, "inner", None)
        return None

    def run_chunk(self, chunk: BlockRange) -> ChunkResult:
        """One chunk's detections as a checkpointable artifact.

        Single pass: one ranged block read feeds all four heuristics
        through :class:`~repro.core.scan.BlockScan`, instead of the four
        independent range scans the heuristics historically made.

        **Transport compatibility.**  The historical per-heuristic scans
        produced a fixed archive-op sequence per chunk — three
        ``iter_blocks`` fetches, the sandwich/liquidation receipt
        lookups, one ``get_logs`` — and injected faults, retries, and
        breaker state are all keyed to that sequence.  The fused pass
        replays it exactly (the two extra ``iter_blocks`` fetches are
        issued and discarded; under the chain index they are O(range)
        slices, not rescans), so the rows *and* the resilience ledger —
        the ``DataQualityReport`` — stay bit-identical to the pre-fusion
        pipeline under any fault plan.
        """
        # Imported here, not at module top: repro.core imports the
        # engine (pipeline → executors/runner), so the runner reaches
        # back into repro.core lazily to keep the import DAG acyclic.
        from repro.chain.events import FlashLoanEvent
        from repro.core.datasets import MevDataset
        from repro.core.heuristics.arbitrage import ArbitrageVisitor
        from repro.core.heuristics.flashloan import flash_loan_hashes
        from repro.core.heuristics.liquidation import LiquidationVisitor
        from repro.core.heuristics.sandwich import SandwichVisitor
        from repro.core.scan import BlockScan, views_from_index

        node = self._chunk_node()
        index = self._read_index()
        lo, hi = chunk
        try:
            sandwich = SandwichVisitor(self.prices)
            arbitrage = ArbitrageVisitor(self.prices)
            liquidation = LiquidationVisitor(self.prices)
            scan = BlockScan([sandwich, arbitrage, liquidation])
            if index is not None:
                # Bucket from the shared postings lists: the fetched
                # blocks are the chain's own sealed objects, so the
                # index coordinates address them exactly, and reading
                # the index issues no archive ops — the transport
                # sequence below is unchanged.
                scan.scan_views(views_from_index(
                    index, list(node.iter_blocks(lo, hi))))
            else:
                scan.scan(node.iter_blocks(lo, hi))
            sandwiches = sandwich.finalize(node)
            # Replay the arbitrage and liquidation scans' ranged
            # fetches (results discarded — the single pass above
            # already consumed the data they would have returned).
            node.iter_blocks(lo, hi)
            node.iter_blocks(lo, hi)
            partial = MevDataset(
                sandwiches=sandwiches,
                arbitrages=arbitrage.finalize(),
                liquidations=liquidation.finalize(node),
            )
            flash_txs = flash_loan_hashes(
                node.get_logs(FlashLoanEvent, lo, hi))
        except CHUNK_FAILURES:
            return ChunkResult(chunk=chunk, payload=None,
                               stats=self._stats_of(node))
        payload = {"rows": partial.to_rows(),
                   "flash_txs": sorted(flash_txs)}
        return ChunkResult(chunk=chunk, payload=payload,
                           stats=self._stats_of(node))

    @staticmethod
    def _stats_of(node: Any) -> ChunkStats:
        caller = getattr(node, "caller", None)
        if caller is None:
            return ChunkStats()
        stats = caller.stats
        return ChunkStats(
            requests=stats.requests,
            retries=stats.retries,
            failed_attempts=stats.failed_attempts,
            exhausted=stats.exhausted,
            simulated_backoff_s=stats.simulated_backoff_s,
            breaker_trips=caller.breaker_trips)
