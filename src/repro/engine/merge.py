"""Order-independent merge of per-chunk artifacts.

Executors yield chunk results in whatever order they complete; these
helpers rebuild the run's dataset, flash-loan transaction set, and
resilience ledger by iterating the *planned* chunk list, so the merged
output is identical no matter which executor produced the results or in
which order they landed.  (Integer counters commute anyway; iterating
in chunk order additionally makes the float backoff totals bit-stable.)

The helpers take the target dataset as an argument rather than
importing ``MevDataset`` — ``repro.core`` imports the engine, and the
merge layer staying core-free keeps that edge one-directional.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Set, Tuple

from repro.engine.executors import ChunkStats

BlockRange = Tuple[int, int]


def chunk_key(chunk: BlockRange) -> str:
    """The canonical checkpoint/state key for one chunk."""
    return f"{chunk[0]}-{chunk[1]}"


def merge_rows(dataset: Any, chunks: Iterable[BlockRange],
               state: Dict[str, Any]) -> Any:
    """Append every completed chunk's rows to ``dataset``, block order."""
    for chunk in chunks:
        payload = state.get(chunk_key(chunk))
        if payload is None:
            continue
        for row in payload["rows"]:
            dataset.add_row(row)
    return dataset


def merge_flash_txs(chunks: Iterable[BlockRange],
                    state: Dict[str, Any]) -> Set[str]:
    """Union of every completed chunk's flash-loan transactions."""
    flash_txs: Set[str] = set()
    for chunk in chunks:
        payload = state.get(chunk_key(chunk))
        if payload is not None:
            flash_txs.update(payload["flash_txs"])
    return flash_txs


def sum_chunk_stats(chunks: Iterable[BlockRange],
                    stats: Dict[str, ChunkStats]) -> ChunkStats:
    """Per-chunk resilience ledgers folded together in chunk order."""
    total = ChunkStats()
    for chunk in chunks:
        entry = stats.get(chunk_key(chunk))
        if entry is not None:
            total.add(entry)
    return total


def failed_ranges(results: Iterable[Any]) -> List[BlockRange]:
    """The chunks a batch of results reported as permanently failed."""
    return sorted(result.chunk for result in results if result.failed)
