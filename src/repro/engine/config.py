"""Run configuration: one frozen object instead of a kwarg pile.

``MevInspector.run`` grew a parameter per feature (chunking in PR 2,
workers and caching in PR 3, follow-mode confirmation depth in PR 7);
:class:`RunConfig` freezes the whole execution contract — range,
chunking, checkpointing, fault profile, parallelism, caching,
confirmation depth — into a single value the CLI builds once and every
layer passes through unchanged.

**Canonical construction.**  This is the one documented way to
configure an execution surface — ``MevInspector.run``,
``repro.run_inspector``, ``repro.follow_inspector``,
``repro.follow_study``, ``repro.quick_study``, and the
``repro.serve`` builders all take the same object::

    config = RunConfig(from_block=0, to_block=299, chunk_size=50,
                       workers=4, fault_profile="reorg", fault_seed=1)
    dataset = MevInspector(node, prices, api, observer).run(
        config=config)

The loose keyword arguments on ``MevInspector.run`` remain accepted as
a thin compatibility layer: :func:`resolve_config` folds them into a
``RunConfig`` and emits a :class:`DeprecationWarning`.  A config and
non-default loose kwargs must never be mixed — the run takes exactly
one source of truth, and :func:`ensure_unmixed` rejects the ambiguity
with a :class:`ValueError`.

The cache digest lives here too: a :class:`CachedExecutor` artifact is
only valid for the exact source configuration that produced it, so the
digest folds in the caller-declared ``cache_key`` (world identity), the
fault profile/seed, and the retry/breaker parameters.
"""

from __future__ import annotations

import hashlib
import json
import warnings
from dataclasses import dataclass, field, fields
from pathlib import Path
from typing import Any, Dict, Optional, Union

from repro.reliability.checkpoint import CheckpointStore

#: Bumped whenever the cached chunk-artifact layout changes.
CACHE_VERSION = 1


@dataclass(frozen=True)
class RunConfig:
    """Everything that shapes one pipeline run.

    ``cache_key`` names the *world* the cache artifacts were computed
    from (e.g. ``"bpm=60:seed=7"``); it is required whenever
    ``cache_dir`` is set, because a chunk artifact reused across
    different worlds would be silent data corruption.
    """

    from_block: Optional[int] = None
    to_block: Optional[int] = None
    chunk_size: Optional[int] = None
    checkpoint: Union[CheckpointStore, str, Path, None] = None
    resume: bool = False
    fault_profile: str = "none"
    fault_seed: int = 0
    workers: int = 1
    cache_dir: Union[str, Path, None] = None
    cache_key: Optional[str] = field(default=None)
    #: follow-mode confirmation watermark depth; ``None`` leaves the
    #: streaming engine's default in force (batch runs ignore it)
    confirm_depth: Optional[int] = None

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(
                f"workers must be >= 1, got {self.workers}")
        if self.confirm_depth is not None and self.confirm_depth < 0:
            raise ValueError(
                f"confirm_depth must be >= 0 or None, got "
                f"{self.confirm_depth}")
        if self.chunk_size is not None and self.chunk_size < 0:
            raise ValueError(
                f"chunk_size must be >= 0 or None, got "
                f"{self.chunk_size}")
        if self.cache_dir is not None and not self.cache_key:
            raise ValueError(
                "cache_dir requires an explicit cache_key naming the "
                "world the artifacts belong to (e.g. 'bpm=60:seed=7'); "
                "reusing chunk artifacts across worlds would corrupt "
                "the dataset silently")

    def artifact_digest(self,
                        extra: Optional[Dict[str, Any]] = None) -> str:
        """Digest keying cached chunk artifacts to this configuration.

        ``extra`` carries run-time fingerprints the config cannot know
        statically (the retry policy and breaker parameters actually
        wrapped around the archive source).
        """
        material: Dict[str, Any] = {
            "cache_version": CACHE_VERSION,
            "cache_key": self.cache_key,
            "fault_profile": self.fault_profile,
            "fault_seed": self.fault_seed,
        }
        if extra:
            material.update(extra)
        canonical = json.dumps(material, sort_keys=True)
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


def config_from_kwargs(**overrides: Any) -> RunConfig:
    """A :class:`RunConfig` from the historical loose-kwarg surface."""
    return RunConfig(**overrides)


def ensure_unmixed(config: Optional[RunConfig],
                   **loose: Any) -> None:
    """Reject calls that pass both a config and loose kwargs.

    ``loose`` maps kwarg name → value as the caller received it; any
    non-default value alongside an explicit ``config`` is ambiguous and
    refused rather than silently ignored.
    """
    if config is None:
        return
    defaults = {f.name: f.default for f in fields(RunConfig)}
    clashes = [name for name, value in sorted(loose.items())
               if value != defaults.get(name)]
    if clashes:
        raise ValueError(
            "pass either a RunConfig or loose keyword arguments, not "
            f"both (loose values given for: {', '.join(clashes)})")


def resolve_config(config: Optional[RunConfig], warn: bool = True,
                   stacklevel: int = 3, **loose: Any) -> RunConfig:
    """The single funnel from any call surface to one ``RunConfig``.

    Every execution entry point routes here: an explicit ``config``
    passes through untouched (after :func:`ensure_unmixed` rejects any
    clashing loose values); otherwise the loose kwargs build the
    config.  With ``warn=True`` a non-default loose kwarg draws a
    :class:`DeprecationWarning` — the loose surface is the historical
    compat layer, and ``RunConfig`` (see the module docstring) is the
    canonical construction.  Internal wrappers whose own signatures
    are the supported convenience surface pass ``warn=False``.
    """
    ensure_unmixed(config, **loose)
    if config is not None:
        return config
    if warn:
        defaults = {f.name: f.default for f in fields(RunConfig)}
        given = [name for name, value in sorted(loose.items())
                 if value != defaults.get(name)]
        if given:
            warnings.warn(
                "loose keyword arguments "
                f"({', '.join(given)}) are deprecated; pass "
                "config=RunConfig(...) instead (see "
                "repro.engine.config for the canonical construction)",
                DeprecationWarning, stacklevel=stacklevel)
    return RunConfig(**loose)
