"""``repro.engine`` — the chunk-execution layer of the pipeline.

PR 2 taught ``MevInspector.run`` to chunk, checkpoint, and resume; this
package makes *how those chunks execute* pluggable without touching
what they compute:

* :class:`RunConfig` — one frozen object carrying the whole execution
  contract (range, chunking, checkpointing, faults, workers, caching);
* :class:`ChunkRunner` — the picklable unit of work: one chunk's
  detections under chunk-isolated retry/breaker state;
* :class:`SerialExecutor` / :class:`ParallelExecutor` /
  :class:`CachedExecutor` — in-process, process-pool, and disk-memoized
  execution strategies, all yielding the same :class:`ChunkResult`
  stream;
* :mod:`repro.engine.merge` — order-independent reassembly of rows,
  flash-loan sets, and resilience ledgers.

The invariant the whole package defends: for a fixed world, fault plan,
and chunk plan, every executor produces a bit-identical dataset and an
identical :class:`~repro.reliability.quality.DataQualityReport` —
``--workers 4`` buys wall-clock time, never different numbers.
"""

from repro.engine.config import (
    CACHE_VERSION,
    RunConfig,
    config_from_kwargs,
    ensure_unmixed,
    resolve_config,
)
from repro.engine.executors import (
    CachedExecutor,
    ChunkResult,
    ChunkStats,
    Executor,
    ParallelExecutor,
    SerialExecutor,
    SupportsRunChunk,
    effective_workers,
    make_executor,
)
from repro.engine.merge import (
    chunk_key,
    failed_ranges,
    merge_flash_txs,
    merge_rows,
    sum_chunk_stats,
)
from repro.engine.runner import CHUNK_FAILURES, ChunkRunner

__all__ = [
    "CACHE_VERSION",
    "CHUNK_FAILURES",
    "CachedExecutor",
    "ChunkResult",
    "ChunkRunner",
    "ChunkStats",
    "Executor",
    "ParallelExecutor",
    "RunConfig",
    "SerialExecutor",
    "SupportsRunChunk",
    "chunk_key",
    "config_from_kwargs",
    "effective_workers",
    "ensure_unmixed",
    "failed_ranges",
    "make_executor",
    "merge_flash_txs",
    "merge_rows",
    "resolve_config",
    "sum_chunk_stats",
]
