"""Pluggable chunk executors: serial, process-parallel, cached.

An executor consumes the chunk list ``plan_chunks`` produced and yields
one :class:`ChunkResult` per chunk.  Results may arrive in any order
(the parallel executor yields in completion order); the pipeline merges
them back in *chunk* order, so every executor produces a bit-identical
dataset and quality ledger — ``--workers 4`` is an optimization, never a
semantic change.

* :class:`SerialExecutor` — runs chunks one by one in-process;
* :class:`ParallelExecutor` — fans chunks out over a
  ``ProcessPoolExecutor``; the runner is shipped to each worker once
  (fork-inherited where the platform allows) and only ``(lo, hi)``
  tuples travel per task;
* :class:`CachedExecutor` — memoizes successful chunk artifacts on disk
  keyed by ``(chunk, source-config digest)``; a resumed or ablation run
  with the same digest skips recomputation entirely.  Failed chunks are
  never cached — a failure must be re-attempted, not replayed.

Determinism note: chunk execution is *chunk-isolated* — each chunk runs
against fresh retry/breaker state (see ``ChunkRunner``), so a chunk's
result is a pure function of ``(world, faults, chunk)`` and execution
order cannot leak between chunks.  That is the property that makes the
parallel/serial/cached paths interchangeable.
"""

from __future__ import annotations

import json
import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor as _PoolExecutor
from concurrent.futures import as_completed
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import (
    Any,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Protocol,
    Tuple,
    Union,
)

from repro.engine.config import CACHE_VERSION

BlockRange = Tuple[int, int]


@dataclass
class ChunkStats:
    """Archive-source resilience counters one chunk's detection spent."""

    requests: int = 0
    retries: int = 0
    failed_attempts: int = 0
    exhausted: int = 0
    simulated_backoff_s: float = 0.0
    breaker_trips: int = 0

    def add(self, other: "ChunkStats") -> None:
        """Accumulate ``other`` into this ledger (addition commutes,
        but callers still sum in chunk order so float totals are
        bit-stable)."""
        self.requests += other.requests
        self.retries += other.retries
        self.failed_attempts += other.failed_attempts
        self.exhausted += other.exhausted
        self.simulated_backoff_s += other.simulated_backoff_s
        self.breaker_trips += other.breaker_trips

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, row: Dict[str, Any]) -> "ChunkStats":
        return cls(**row)


@dataclass
class ChunkResult:
    """One chunk's detection outcome.

    ``payload is None`` means the chunk failed permanently (archive
    unusable even through the resilience layer) and must be recorded as
    a failed range.  ``cached`` marks artifacts replayed from a
    :class:`CachedExecutor` store rather than recomputed.
    """

    chunk: BlockRange
    payload: Optional[Dict[str, Any]]
    stats: ChunkStats = field(default_factory=ChunkStats)
    cached: bool = False

    @property
    def failed(self) -> bool:
        return self.payload is None


class SupportsRunChunk(Protocol):
    """The unit of work executors schedule (see ``ChunkRunner``)."""

    def run_chunk(self, chunk: BlockRange) -> ChunkResult: ...


class Executor(Protocol):
    """Strategy for running a batch of chunks."""

    name: str

    def execute(self, runner: SupportsRunChunk,
                chunks: Iterable[BlockRange],
                ) -> Iterator[ChunkResult]: ...


class SerialExecutor:
    """One chunk at a time, in order, in this process."""

    name = "serial"

    def execute(self, runner: SupportsRunChunk,
                chunks: Iterable[BlockRange]) -> Iterator[ChunkResult]:
        for chunk in chunks:
            yield runner.run_chunk(chunk)


# -- process-pool plumbing -------------------------------------------------
#
# The runner reaches workers through the pool initializer: shipped once
# per worker process instead of once per task, which matters because it
# carries the (possibly fault-wrapped) archive node.

_WORKER_RUNNER: Optional[SupportsRunChunk] = None


def _init_worker(runner: SupportsRunChunk) -> None:
    global _WORKER_RUNNER
    _WORKER_RUNNER = runner


def _run_chunk_in_worker(chunk: BlockRange) -> ChunkResult:
    assert _WORKER_RUNNER is not None, "worker initializer did not run"
    return _WORKER_RUNNER.run_chunk(chunk)


def _pool_context() -> multiprocessing.context.BaseContext:
    """Prefer ``fork``: the runner is inherited instead of re-pickled,
    and children share the parent's hash seed, so CI's
    ``PYTHONHASHSEED=random`` cannot skew per-process set hashing."""
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods:
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


class ParallelExecutor:
    """Chunks fanned out across worker processes.

    Results are yielded in *completion* order; callers that need chunk
    order (the pipeline's merge does) must reorder — which is cheap,
    and keeps checkpoints flowing as chunks finish rather than at the
    end.  A worker exception that is not a recorded chunk failure (a
    crash, not a data-source fault) propagates to the caller, but only
    after every successful sibling chunk has been yielded — so a crash
    mid-fan-out still checkpoints all the work that finished, exactly
    as a serial crash preserves the chunks before it.
    """

    def __init__(self, workers: int) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.name = f"parallel[{workers}]"

    def execute(self, runner: SupportsRunChunk,
                chunks: Iterable[BlockRange]) -> Iterator[ChunkResult]:
        pending: List[BlockRange] = list(chunks)
        if not pending:
            return
        if self.workers == 1 or len(pending) == 1:
            yield from SerialExecutor().execute(runner, pending)
            return
        max_workers = min(self.workers, len(pending))
        with _PoolExecutor(max_workers=max_workers,
                           mp_context=_pool_context(),
                           initializer=_init_worker,
                           initargs=(runner,)) as pool:
            futures = [pool.submit(_run_chunk_in_worker, chunk)
                       for chunk in pending]
            crash: Optional[BaseException] = None
            for future in as_completed(futures):
                try:
                    yield future.result()
                except Exception as error:
                    # A worker crash (not a recorded chunk failure);
                    # keep draining so finished chunks still reach the
                    # caller's checkpoint, then re-raise the crash.
                    if crash is None:
                        crash = error
            if crash is not None:
                raise crash


class CachedExecutor:
    """Disk memoization of successful chunk artifacts.

    Artifacts live at ``{cache_dir}/{digest}/{lo}-{hi}.json``; the
    digest (see :meth:`RunConfig.artifact_digest`) pins the artifact to
    the exact world/fault/retry configuration that produced it, so an
    ablation sweep that changes any of those recomputes instead of
    replaying stale data.  Unreadable or stale-format entries count as
    misses (and are reported via ``invalid_entries``), never as errors.
    """

    def __init__(self, inner: Executor,
                 cache_dir: Union[str, Path], digest: str) -> None:
        self.inner = inner
        self.cache_dir = Path(cache_dir)
        self.digest = digest
        self.name = f"cached[{digest}]({inner.name})"
        self.hits = 0
        self.misses = 0
        self.invalid_entries = 0

    def execute(self, runner: SupportsRunChunk,
                chunks: Iterable[BlockRange]) -> Iterator[ChunkResult]:
        misses: List[BlockRange] = []
        for chunk in chunks:
            result = self._load(chunk)
            if result is not None:
                self.hits += 1
                yield result
            else:
                self.misses += 1
                misses.append(chunk)
        for result in self.inner.execute(runner, misses):
            if not result.failed:
                self._store(result)
            yield result

    # -- artifact store ---------------------------------------------------

    def _path(self, chunk: BlockRange) -> Path:
        return self.cache_dir / self.digest / \
            f"{chunk[0]}-{chunk[1]}.json"

    def _load(self, chunk: BlockRange) -> Optional[ChunkResult]:
        path = self._path(chunk)
        try:
            with open(path, "r", encoding="utf-8") as stream:
                document = json.load(stream)
        except FileNotFoundError:
            return None
        except (OSError, ValueError):
            self.invalid_entries += 1
            return None
        if not isinstance(document, dict) or \
                document.get("cache_version") != CACHE_VERSION or \
                document.get("chunk") != [chunk[0], chunk[1]]:
            self.invalid_entries += 1
            return None
        return ChunkResult(
            chunk=chunk,
            payload=document["payload"],
            stats=ChunkStats.from_dict(document["stats"]),
            cached=True)

    def _store(self, result: ChunkResult) -> None:
        path = self._path(result.chunk)
        path.parent.mkdir(parents=True, exist_ok=True)
        document = {
            "cache_version": CACHE_VERSION,
            "chunk": [result.chunk[0], result.chunk[1]],
            "payload": result.payload,
            "stats": result.stats.to_dict(),
        }
        tmp_path = path.with_name(path.name + ".tmp")
        with open(tmp_path, "w", encoding="utf-8") as stream:
            json.dump(document, stream, sort_keys=True)
        os.replace(tmp_path, path)


def _available_cpus() -> int:
    """CPUs the host can actually run worker processes on."""
    return os.cpu_count() or 1


def effective_workers(requested: int) -> int:
    """The worker count a request actually gets on this host.

    The same cap :func:`make_executor` applies — clamped to
    ``[1, cpu_count]`` — exposed so callers (the bench harness, the
    epoch shard runner) can report ``workers_requested`` alongside
    ``workers_effective`` honestly instead of implying parallelism a
    1-CPU box never delivered.
    """
    return max(1, min(requested, _available_cpus()))


def make_executor(workers: int = 1,
                  cache_dir: Union[str, Path, None] = None,
                  digest: Optional[str] = None) -> Executor:
    """The executor stack a run configuration asks for.

    ``workers`` is capped to the host's CPU count: every executor is
    bit-identical, so oversubscribing a small machine buys nothing but
    fork/IPC overhead — ``--workers 4`` on a 1-CPU box quietly runs
    serial.  This is policy, applied here and only here; constructing
    :class:`ParallelExecutor` directly honors the exact count asked
    for.
    """
    effective = effective_workers(workers)
    executor: Executor = ParallelExecutor(effective) if effective > 1 \
        else SerialExecutor()
    if cache_dir is not None:
        executor = CachedExecutor(executor, cache_dir,
                                  digest or "unkeyed")
    return executor
