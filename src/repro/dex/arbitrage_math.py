"""Closed-form MEV sizing math for constant-product pools.

Searchers need two calculations the paper's strategy descriptions assume:

* the profit-maximizing input for a two-pool arbitrage (Definition 2's
  opportunity, sized optimally), and
* the largest sandwich frontrun that still clears the victim's slippage
  limit (Definition 1's attack, sized to the constraint).

Both are derived for Uniswap-V2 style pools.  The arbitrage optimum has a
closed form; the sandwich bound is monotone, so an integer binary search is
exact.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache
from typing import Optional, Tuple

from repro.dex.amm import FEE_DENOMINATOR, get_amount_out


@dataclass(frozen=True)
class ArbitragePlan:
    """Optimal two-pool arbitrage: trade ``amount_in`` of the start token
    through the cheap pool then back through the dear pool."""

    amount_in: int
    expected_out: int

    @property
    def expected_profit(self) -> int:
        return self.expected_out - self.amount_in


# The sizing functions below are pure in their integer arguments and get
# re-evaluated with identical reserves whenever a pool sits untouched
# between blocks (or several searchers size the same opportunity), so an
# argument-keyed LRU returns the exact same plan objects — the plans are
# frozen, never mutated by callers.
@lru_cache(maxsize=16384)
def optimal_two_pool_arbitrage(reserve_in_1: int, reserve_out_1: int,
                               reserve_in_2: int, reserve_out_2: int,
                               fee_bps_1: int = 30, fee_bps_2: int = 30,
                               ) -> Optional[ArbitragePlan]:
    """Profit-maximizing input for: token X → pool1 → token Y → pool2 → X.

    Pool 1 takes X (reserves ``reserve_in_1`` X / ``reserve_out_1`` Y);
    pool 2 takes Y (reserves ``reserve_in_2`` Y / ``reserve_out_2`` X).
    Returns None when no positive-profit input exists (price gap below the
    combined fee).

    Derivation: composing the two swap curves gives another hyperbola
    ``out(a) = A·a / (B + C·a)`` with
    ``A = γ1·γ2·R1out·R2out``, ``B = R1in·R2in``,
    ``C = γ1·(R2in + γ2·R1out)`` (γ = 1 − fee); maximizing ``out(a) − a``
    yields ``a* = (√(A·B) − B) / C``.
    """
    for reserve in (reserve_in_1, reserve_out_1, reserve_in_2,
                    reserve_out_2):
        if reserve <= 0:
            return None
    g1 = FEE_DENOMINATOR - fee_bps_1
    g2 = FEE_DENOMINATOR - fee_bps_2
    a_coeff = g1 * g2 * reserve_out_1 * reserve_out_2
    b_coeff = FEE_DENOMINATOR**2 * reserve_in_1 * reserve_in_2
    c_coeff = g1 * (FEE_DENOMINATOR * reserve_in_2 + g2 * reserve_out_1)
    if a_coeff <= b_coeff:
        return None  # gap does not clear the fees
    amount_in = (math.isqrt(a_coeff * b_coeff) - b_coeff) // c_coeff
    if amount_in <= 0:
        return None
    mid = get_amount_out(amount_in, reserve_in_1, reserve_out_1, fee_bps_1)
    if mid <= 0:
        return None
    out = get_amount_out(mid, reserve_in_2, reserve_out_2, fee_bps_2)
    if out <= amount_in:
        return None
    return ArbitragePlan(amount_in=amount_in, expected_out=out)


def simulate_two_pool_arbitrage(amount_in: int, reserve_in_1: int,
                                reserve_out_1: int, reserve_in_2: int,
                                reserve_out_2: int, fee_bps_1: int = 30,
                                fee_bps_2: int = 30) -> int:
    """Final output of the two-hop cycle for a given input (no state)."""
    if amount_in <= 0:
        return 0
    mid = get_amount_out(amount_in, reserve_in_1, reserve_out_1, fee_bps_1)
    if mid <= 0:
        return 0
    return get_amount_out(mid, reserve_in_2, reserve_out_2, fee_bps_2)


@dataclass(frozen=True)
class SandwichPlan:
    """A sized sandwich: frontrun amount and projected leg outcomes."""

    frontrun_in: int         # token X spent in the frontrun
    frontrun_out: int        # token Y acquired by the frontrun
    victim_out: int          # what the victim still receives
    backrun_out: int         # token X recovered by the backrun

    @property
    def expected_profit(self) -> int:
        """Projected gross profit in token X (before fees and tips)."""
        return self.backrun_out - self.frontrun_in


def _victim_out_after_frontrun(frontrun_in: int, reserve_in: int,
                               reserve_out: int, victim_in: int,
                               fee_bps: int) -> int:
    """Victim's output if the attacker frontruns with ``frontrun_in``."""
    if frontrun_in == 0:
        return get_amount_out(victim_in, reserve_in, reserve_out, fee_bps)
    bought = get_amount_out(frontrun_in, reserve_in, reserve_out, fee_bps)
    return get_amount_out(victim_in, reserve_in + frontrun_in,
                          reserve_out - bought, fee_bps)


@lru_cache(maxsize=16384)
def max_sandwich_frontrun(reserve_in: int, reserve_out: int,
                          victim_in: int, victim_min_out: int,
                          fee_bps: int = 30) -> int:
    """Largest frontrun input that keeps the victim above its slippage
    floor.  Returns 0 when even an untouched pool cannot satisfy the victim
    (the victim's swap would revert anyway).

    The victim's output is strictly decreasing in the frontrun size, so the
    boundary is found by integer binary search (exact, no float error).
    """
    if victim_min_out <= 0:
        # No slippage protection: cap the attack at the pool's own depth so
        # the numbers stay finite (a real attacker is capital-limited too).
        victim_min_out = 1
    untouched = _victim_out_after_frontrun(0, reserve_in, reserve_out,
                                           victim_in, fee_bps)
    if untouched < victim_min_out:
        return 0
    # The predicate body is ``_victim_out_after_frontrun`` with the two
    # ``get_amount_out`` calls inlined (identical integer arithmetic —
    # the frontrun's buy never exhausts ``reserve_out``, so the guard
    # paths of ``get_amount_out`` are unreachable here).
    gamma = FEE_DENOMINATOR - fee_bps
    scaled_reserve_in = reserve_in * FEE_DENOMINATOR
    victim_with_fee = victim_in * gamma

    def clears(frontrun: int) -> bool:
        front_with_fee = frontrun * gamma
        bought = (front_with_fee * reserve_out
                  // (scaled_reserve_in + front_with_fee))
        out = (victim_with_fee * (reserve_out - bought)
               // ((reserve_in + frontrun) * FEE_DENOMINATOR
                   + victim_with_fee))
        return out >= victim_min_out

    low, high = 0, reserve_in * 10
    # Bisecting [0, 10·R_in] directly takes ~77 iterations.  Instead,
    # solve the real-arithmetic slippage boundary in closed form: ignoring
    # floors, ``victim_out(f) = m`` is the quadratic
    #   gD·f² + (D·R_in·(D+g) + g²·v)·f
    #     + D·R_in·(D·R_in + g·v) − D·R_in·R_out·g·v / m = 0
    # (D = fee denominator, g = D − fee, v = victim_in, m = min_out).
    # Multiplying through by m keeps everything integer, and ``isqrt``
    # makes the root exact in real arithmetic.  Floor divisions shift the
    # true integer boundary slightly off this root, so the root is only a
    # *starting point*: gallop outward with the exact predicate until the
    # boundary is bracketed, then bisect the (tiny) bracket.  The answer
    # is decided solely by ``clears`` — the same monotone predicate the
    # full-range bisection used — so the result is bit-identical, just
    # reached in ~a dozen evaluations.
    a2 = 2 * gamma * FEE_DENOMINATOR * victim_min_out
    b_m = (FEE_DENOMINATOR * reserve_in * (FEE_DENOMINATOR + gamma)
           + gamma * victim_with_fee) * victim_min_out
    c_m = scaled_reserve_in * (
        victim_min_out * (scaled_reserve_in + victim_with_fee)
        - reserve_out * victim_with_fee)
    disc = b_m * b_m - 2 * a2 * c_m
    if disc > 0:
        guess = (math.isqrt(disc) - b_m) // a2
    else:
        guess = 0
    guess = min(max(guess, 0), high)
    if clears(guess):
        low = guess
        step = 1
        while low + step <= high and clears(low + step):
            low += step
            step <<= 1
        high = min(high, low + step - 1)
    elif guess > 0:
        high = guess - 1
        step = 1
        while high - step >= low and not clears(high - step + 1):
            high -= step
            step <<= 1
    while low < high:
        mid = (low + high + 1) // 2
        if clears(mid):
            low = mid
        else:
            high = mid - 1
    return low


@lru_cache(maxsize=16384)
def plan_sandwich(reserve_in: int, reserve_out: int, victim_in: int,
                  victim_min_out: int, fee_bps: int = 30,
                  max_capital: Optional[int] = None,
                  ) -> Optional[SandwichPlan]:
    """Size and project a full sandwich against a pending victim swap.

    Returns None when no profitable frontrun exists (tight slippage, tiny
    victim, or fee-dominated pool).
    """
    frontrun = max_sandwich_frontrun(reserve_in, reserve_out, victim_in,
                                     victim_min_out, fee_bps)
    if max_capital is not None:
        frontrun = min(frontrun, max_capital)
    if frontrun <= 0:
        return None
    frontrun_out = get_amount_out(frontrun, reserve_in, reserve_out,
                                  fee_bps)
    if frontrun_out <= 0:
        return None
    r_in_1 = reserve_in + frontrun
    r_out_1 = reserve_out - frontrun_out
    victim_out = get_amount_out(victim_in, r_in_1, r_out_1, fee_bps)
    if victim_out < victim_min_out:
        return None
    r_in_2 = r_in_1 + victim_in
    r_out_2 = r_out_1 - victim_out
    # Backrun: sell the acquired token Y back for X.
    backrun_out = get_amount_out(frontrun_out, r_out_2, r_in_2, fee_bps)
    plan = SandwichPlan(frontrun_in=frontrun, frontrun_out=frontrun_out,
                        victim_out=victim_out, backrun_out=backrun_out)
    if plan.expected_profit <= 0:
        return None
    return plan


def price_gap_ratio(reserve_in_1: int, reserve_out_1: int,
                    reserve_in_2: int, reserve_out_2: int,
                    ) -> Tuple[float, float]:
    """Spot prices of the traded token on both pools (diagnostics)."""
    p1 = reserve_out_1 / reserve_in_1
    p2 = reserve_in_2 / reserve_out_2
    return p1, p2
