"""Constant-product AMM pools (Uniswap-V2 exact integer math).

The pool's reserves are its token balances in world state, so swaps through
the pool are ordinary journaled state mutations and revert cleanly with the
enclosing transaction.  Fees stay in the pool (as on mainnet), which is what
makes sandwich frontrunning *actually* profitable in this simulator rather
than something we merely label.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.chain.events import SwapEvent, SyncEvent
from repro.chain.execution import ExecutionContext, Revert
from repro.chain.state import WorldState
from repro.chain.types import Address, address_from_label

#: Uniswap-V2 fee: 30 bps, expressed over a 10_000 denominator.
DEFAULT_FEE_BPS = 30
FEE_DENOMINATOR = 10_000


def get_amount_out(amount_in: int, reserve_in: int, reserve_out: int,
                   fee_bps: int = DEFAULT_FEE_BPS) -> int:
    """Uniswap-V2 ``getAmountOut``: output for an exact input.

    Integer math identical to the mainnet contract:
    ``out = in*(1-fee)*R_out / (R_in + in*(1-fee))`` with floor division.
    """
    if amount_in <= 0:
        raise ValueError("amount_in must be positive")
    if reserve_in <= 0 or reserve_out <= 0:
        raise ValueError("pool has no liquidity")
    amount_in_with_fee = amount_in * (FEE_DENOMINATOR - fee_bps)
    numerator = amount_in_with_fee * reserve_out
    denominator = reserve_in * FEE_DENOMINATOR + amount_in_with_fee
    return numerator // denominator


def get_amount_in(amount_out: int, reserve_in: int, reserve_out: int,
                  fee_bps: int = DEFAULT_FEE_BPS) -> int:
    """Uniswap-V2 ``getAmountIn``: minimum input for an exact output."""
    if amount_out <= 0:
        raise ValueError("amount_out must be positive")
    if amount_out >= reserve_out:
        raise ValueError("amount_out exceeds reserves")
    numerator = reserve_in * amount_out * FEE_DENOMINATOR
    denominator = (reserve_out - amount_out) * (FEE_DENOMINATOR - fee_bps)
    return numerator // denominator + 1


@dataclass
class ConstantProductPool:
    """A two-token constant-product pool on a named venue."""

    venue: str
    token0: str
    token1: str
    fee_bps: int = DEFAULT_FEE_BPS

    def __post_init__(self) -> None:
        if self.token0 == self.token1:
            raise ValueError("pool tokens must differ")
        if not 0 <= self.fee_bps < FEE_DENOMINATOR:
            raise ValueError("fee out of range")
        # Canonical token ordering keeps pair lookups deterministic.
        if self.token0 > self.token1:
            self.token0, self.token1 = self.token1, self.token0
        self.address: Address = address_from_label(
            f"pool:{self.venue}:{self.token0}/{self.token1}:{self.fee_bps}")
        self._ledger_cache: Optional[Tuple[WorldState, dict, dict]] = None

    # Reserve access ---------------------------------------------------------

    def _ledgers(self, state: WorldState) -> Tuple[dict, dict]:
        """The two token ledgers, cached per state (reserve reads are the
        hottest loop in the simulator and a token's ledger dict is never
        replaced once created — see ``WorldState.token_ledger``)."""
        cached = self._ledger_cache
        if cached is not None and cached[0] is state:
            return cached[1], cached[2]
        ledger0 = state.token_ledger(self.token0)
        ledger1 = state.token_ledger(self.token1)
        self._ledger_cache = (state, ledger0, ledger1)
        return ledger0, ledger1

    def reserves(self, state: WorldState) -> Tuple[int, int]:
        ledger0, ledger1 = self._ledgers(state)
        addr = self.address
        return (ledger0.get(addr, 0), ledger1.get(addr, 0))

    def reserve_of(self, state: WorldState, token: str) -> int:
        ledger0, ledger1 = self._ledgers(state)
        if token == self.token0:
            return ledger0.get(self.address, 0)
        if token == self.token1:
            return ledger1.get(self.address, 0)
        self._require_member(token)
        raise AssertionError("unreachable")

    def other(self, token: str) -> str:
        self._require_member(token)
        return self.token1 if token == self.token0 else self.token0

    def has_token(self, token: str) -> bool:
        # Explicit comparisons: no per-call tuple allocation (this sits
        # under every reserve read the searchers make).
        return token == self.token0 or token == self.token1

    def _require_member(self, token: str) -> None:
        if not self.has_token(token):
            raise ValueError(f"{token} is not in pool "
                             f"{self.token0}/{self.token1}")

    # Liquidity provisioning ---------------------------------------------------

    def add_liquidity(self, state: WorldState, **amounts: int) -> None:
        """Mint reserves directly into the pool (scenario setup).

        Amounts are keyed by token symbol — ``add_liquidity(state,
        WETH=x, DAI=y)`` — so callers never depend on canonical ordering.
        """
        for token, amount in amounts.items():
            self._require_member(token)
            if amount < 0:
                raise ValueError("liquidity amounts cannot be negative")
            state.mint_token(token, self.address, amount)

    # Pricing -----------------------------------------------------------------

    def quote_out(self, state: WorldState, token_in: str,
                  amount_in: int) -> int:
        """Output of swapping ``amount_in`` of ``token_in`` right now."""
        token_out = self.other(token_in)
        return get_amount_out(amount_in,
                              self.reserve_of(state, token_in),
                              self.reserve_of(state, token_out),
                              self.fee_bps)

    def quote_in(self, state: WorldState, token_out: str,
                 amount_out: int) -> int:
        """Input of ``token_in`` needed to receive ``amount_out``."""
        token_in = self.other(token_out)
        return get_amount_in(amount_out,
                             self.reserve_of(state, token_in),
                             self.reserve_of(state, token_out),
                             self.fee_bps)

    def spot_price(self, state: WorldState, token: str) -> float:
        """Marginal price of ``token`` denominated in the other token."""
        other = self.other(token)
        reserve_token = self.reserve_of(state, token)
        if reserve_token == 0:
            raise ValueError("pool has no liquidity")
        return self.reserve_of(state, other) / reserve_token

    # Swapping -----------------------------------------------------------------

    def swap(self, ctx: ExecutionContext, token_in: str, amount_in: int,
             recipient: Address, min_amount_out: int = 0) -> int:
        """Execute a swap inside a transaction; returns the output amount.

        Reverts on insufficient output (the victim's slippage protection),
        which is precisely the state change sandwichers push their victims
        toward — and the cap on how much a sandwich can extract.
        """
        token_out = self.other(token_in)
        try:
            amount_out = self.quote_out(ctx.state, token_in, amount_in)
        except (ValueError, ArithmeticError) as exc:
            raise Revert(str(exc))
        if amount_out <= 0:
            raise Revert("insufficient output amount")
        if amount_out < min_amount_out:
            raise Revert("slippage limit exceeded")
        taker = ctx.tx.sender
        ctx.state.transfer_token(token_in, taker, self.address, amount_in)
        ctx.state.transfer_token(token_out, self.address, recipient,
                                 amount_out)
        ctx.emit(SwapEvent(address=self.address, venue=self.venue,
                           taker=taker, recipient=recipient,
                           token_in=token_in, token_out=token_out,
                           amount_in=amount_in, amount_out=amount_out))
        reserve0, reserve1 = self.reserves(ctx.state)
        ctx.emit(SyncEvent(address=self.address, token0=self.token0,
                           token1=self.token1, reserve0=reserve0,
                           reserve1=reserve1))
        return amount_out
