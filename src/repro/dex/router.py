"""Swap intents: the executable payloads of trading transactions.

These are what traders (victims), sandwichers and arbitrageurs put inside
their transactions.  Each intent resolves pool addresses through the
execution context's contract map, so the same intent object can be simulated
against a scratch state and later executed for real.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.chain.execution import ExecutionContext, ExecutionOutcome, Revert
from repro.chain.gas import GAS_SWAP, GAS_SWAP_PER_EXTRA_HOP
from repro.chain.transaction import TxIntent
from repro.chain.types import Address


@dataclass
class SwapIntent(TxIntent):
    """Swap an exact input on a single pool with slippage protection."""

    pool_address: Address
    token_in: str
    amount_in: int
    min_amount_out: int = 0
    recipient: Optional[Address] = None
    coinbase_tip: int = 0
    base_gas: int = GAS_SWAP

    def execute(self, ctx: ExecutionContext) -> ExecutionOutcome:
        if self.amount_in <= 0:
            raise Revert("swap input must be positive")
        pool = ctx.contract(self.pool_address)
        recipient = self.recipient or ctx.tx.sender
        amount_out = pool.swap(ctx, self.token_in, self.amount_in,
                               recipient, self.min_amount_out)
        if self.coinbase_tip:
            ctx.pay_coinbase(self.coinbase_tip)
        return ExecutionOutcome(success=True, gas_used=self.base_gas,
                                return_data=amount_out)


@dataclass
class MultiHopSwapIntent(TxIntent):
    """Swap through a route of pools; the output of each hop feeds the next.

    ``route`` is a list of pool addresses; ``token_in`` enters the first
    pool, and each pool must share a token with its successor.
    """

    route: List[Address]
    token_in: str
    amount_in: int
    min_amount_out: int = 0
    recipient: Optional[Address] = None
    coinbase_tip: int = 0

    def gas_estimate(self) -> int:
        extra = max(0, len(self.route) - 1)
        return GAS_SWAP + extra * GAS_SWAP_PER_EXTRA_HOP

    def execute(self, ctx: ExecutionContext) -> ExecutionOutcome:
        if not self.route:
            raise Revert("empty route")
        if self.amount_in <= 0:
            raise Revert("swap input must be positive")
        recipient = self.recipient or ctx.tx.sender
        token = self.token_in
        amount = self.amount_in
        for index, pool_address in enumerate(self.route):
            pool = ctx.contract(pool_address)
            hop_recipient = (recipient if index == len(self.route) - 1
                             else ctx.tx.sender)
            amount = pool.swap(ctx, token, amount, hop_recipient, 0)
            token = pool.other(token)
        if amount < self.min_amount_out:
            raise Revert("slippage limit exceeded")
        if self.coinbase_tip:
            ctx.pay_coinbase(self.coinbase_tip)
        return ExecutionOutcome(success=True,
                                gas_used=self.gas_estimate(),
                                return_data=amount)


@dataclass
class ArbitrageIntent(TxIntent):
    """A closed-cycle trade: start and end in the same token, atomically.

    ``route`` must bring the trade back to ``token_in``; the intent reverts
    unless the surplus covers ``min_profit``, so an arbitrage that a
    competitor frontran simply fails instead of taking a loss (the standard
    on-chain arb-contract guard).
    """

    route: List[Address]
    token_in: str
    amount_in: int
    min_profit: int = 1
    coinbase_tip: int = 0

    def gas_estimate(self) -> int:
        return GAS_SWAP * max(1, len(self.route))

    def execute(self, ctx: ExecutionContext) -> ExecutionOutcome:
        if len(self.route) < 2:
            raise Revert("arbitrage needs at least two hops")
        if self.amount_in <= 0:
            raise Revert("arbitrage input must be positive")
        token = self.token_in
        amount = self.amount_in
        for pool_address in self.route:
            pool = ctx.contract(pool_address)
            amount = pool.swap(ctx, token, amount, ctx.tx.sender, 0)
            token = pool.other(token)
        if token != self.token_in:
            raise Revert("route does not close the cycle")
        profit = amount - self.amount_in
        if profit < self.min_profit:
            raise Revert("arbitrage no longer profitable")
        if self.coinbase_tip:
            ctx.pay_coinbase(self.coinbase_tip)
        return ExecutionOutcome(success=True,
                                gas_used=self.gas_estimate(),
                                return_data=profit)


@dataclass
class SwapAllIntent(TxIntent):
    """Swap the sender's *entire current balance* of ``token_in``.

    The amount is resolved at execution time, which is what flash-loan
    liquidations need: the collateral seized a moment earlier (unknown when
    the transaction was crafted) is converted back to the debt token so the
    loan can be repaid.
    """

    pool_address: Address
    token_in: str
    min_amount_out: int = 0
    base_gas: int = GAS_SWAP

    def execute(self, ctx: ExecutionContext) -> ExecutionOutcome:
        pool = ctx.contract(self.pool_address)
        amount_in = ctx.state.token_balance(self.token_in, ctx.tx.sender)
        if amount_in <= 0:
            raise Revert("no balance to swap")
        amount_out = pool.swap(ctx, self.token_in, amount_in,
                               ctx.tx.sender, self.min_amount_out)
        return ExecutionOutcome(success=True, gas_used=self.base_gas,
                                return_data=amount_out)


def route_tokens(route: List[Tuple[str, str]], token_in: str) -> List[str]:
    """Token sequence visited by a route of (token0, token1) pairs."""
    tokens = [token_in]
    current = token_in
    for token0, token1 in route:
        if current == token0:
            current = token1
        elif current == token1:
            current = token0
        else:
            raise ValueError("route hop does not contain current token")
        tokens.append(current)
    return tokens
