"""Exchange registry: the simulated venue universe.

The paper's heuristics are venue-aware (its sandwich script covers Bancor,
SushiSwap and Uniswap V1–V3; its arbitrage script adds 0x, Balancer and
Curve).  The registry records which venue each pool address belongs to so
the measurement layer can report per-venue coverage, and gives searchers a
single lookup surface for cross-venue price comparisons.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

from repro.chain.state import WorldState
from repro.chain.types import Address
from repro.dex.amm import ConstantProductPool
from repro.dex.stableswap import StableSwapPool
from repro.dex.weighted import WeightedPool

Pool = Union[ConstantProductPool, StableSwapPool, WeightedPool]

# Venue names used across the codebase (match the paper's exchange lists).
UNISWAP_V1 = "UniswapV1"
UNISWAP_V2 = "UniswapV2"
UNISWAP_V3 = "UniswapV3"
SUSHISWAP = "SushiSwap"
BANCOR = "Bancor"
BALANCER = "Balancer"
CURVE = "Curve"
ZEROX = "0x"

#: Venues the sandwich heuristic covers (paper Section 3.1.1).
SANDWICH_VENUES = (BANCOR, SUSHISWAP, "UniswapV1", UNISWAP_V2,
                   UNISWAP_V3)

#: Venues the arbitrage heuristic covers (paper Section 3.1.2).
ARBITRAGE_VENUES = (ZEROX, BALANCER, BANCOR, CURVE, SUSHISWAP,
                    UNISWAP_V2, UNISWAP_V3)

#: Default per-venue fee tiers in bps for constant-product venues.
VENUE_FEE_BPS = {
    UNISWAP_V1: 30,
    UNISWAP_V2: 30,
    UNISWAP_V3: 30,
    SUSHISWAP: 30,
    BANCOR: 20,
    BALANCER: 25,
    ZEROX: 15,
}


class ExchangeRegistry:
    """All deployed pools, indexed by address, pair and venue."""

    def __init__(self) -> None:
        self._by_address: Dict[Address, Pool] = {}
        self._by_pair: Dict[Tuple[str, str], List[Pool]] = {}

    @staticmethod
    def _pair_key(token_a: str, token_b: str) -> Tuple[str, str]:
        return (token_a, token_b) if token_a < token_b else (token_b, token_a)

    def add_pool(self, pool: Pool) -> Pool:
        if pool.address in self._by_address:
            raise ValueError(f"pool already registered at {pool.address}")
        self._by_address[pool.address] = pool
        key = self._pair_key(pool.token0, pool.token1)
        self._by_pair.setdefault(key, []).append(pool)
        return pool

    def create_pool(self, venue: str, token_a: str, token_b: str,
                    fee_bps: Optional[int] = None) -> Pool:
        """Deploy a venue-appropriate pool for a token pair."""
        if venue == CURVE:
            pool: Pool = StableSwapPool(venue=venue, token0=token_a,
                                        token1=token_b)
        elif venue == BALANCER:
            # Balancer's signature 80/20 pools, WETH-heavy when WETH is
            # a member (weights are small integer ratios: 4:1).
            weight_a = 4 if token_a == "WETH" else 1
            weight_b = 4 if token_b == "WETH" and weight_a == 1 else 1
            pool = WeightedPool(venue=venue, token0=token_a,
                                token1=token_b, weight0=weight_a,
                                weight1=weight_b,
                                fee_bps=fee_bps if fee_bps is not None
                                else VENUE_FEE_BPS[BALANCER])
        else:
            fee = fee_bps if fee_bps is not None else \
                VENUE_FEE_BPS.get(venue, 30)
            pool = ConstantProductPool(venue=venue, token0=token_a,
                                       token1=token_b, fee_bps=fee)
        return self.add_pool(pool)

    # Lookup ------------------------------------------------------------------

    def get(self, address: Address) -> Optional[Pool]:
        return self._by_address.get(address)

    @property
    def pools(self) -> List[Pool]:
        return list(self._by_address.values())

    @property
    def pool_count(self) -> int:
        """Number of deployed pools.  Pools are only ever added, so this
        doubles as a cheap version stamp for derived pool-list caches."""
        return len(self._by_address)

    @property
    def contracts(self) -> Dict[Address, Pool]:
        """Address → pool map, pluggable into the block builder."""
        return dict(self._by_address)

    def pools_for_pair(self, token_a: str, token_b: str) -> List[Pool]:
        return list(self._by_pair.get(self._pair_key(token_a, token_b), []))

    def pools_with_token(self, token: str) -> List[Pool]:
        return [p for p in self._by_address.values() if p.has_token(token)]

    def venues(self) -> List[str]:
        return sorted({p.venue for p in self._by_address.values()})

    # Cross-venue price views ------------------------------------------------

    def best_price_gap(self, state: WorldState, token_a: str, token_b: str,
                       ) -> Optional[Tuple[Pool, Pool, float]]:
        """The (cheapest, dearest, ratio) venues for ``token_a`` priced in
        ``token_b``; None unless at least two venues trade the pair.

        A ratio meaningfully above 1 + combined fees is an arbitrage
        opportunity (Definition 2's price-gap condition).
        """
        pools = [p for p in self.pools_for_pair(token_a, token_b)
                 if min(p.reserves(state)) > 0]
        if len(pools) < 2:
            return None
        priced = [(p.spot_price(state, token_a), p) for p in pools]
        low_price, cheap = min(priced, key=lambda x: x[0])
        high_price, dear = max(priced, key=lambda x: x[0])
        if low_price <= 0:
            return None
        return cheap, dear, high_price / low_price
