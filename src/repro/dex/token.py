"""Token definitions for the simulated DeFi ecosystem.

Tokens are identified by symbol strings; balances live in the chain's
:class:`~repro.chain.state.WorldState`.  ``WETH`` is the numéraire: profit
accounting values everything in (W)ETH, standing in for the paper's use of
CoinGecko to convert token gains to ether.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

WETH = "WETH"


@dataclass(frozen=True)
class Token:
    """An ERC-20-style token."""

    symbol: str
    decimals: int = 18
    name: str = ""

    @property
    def unit(self) -> int:
        """Smallest-unit multiplier (10 ** decimals)."""
        return 10 ** self.decimals

    def amount(self, human: float) -> int:
        """Convert a human-readable quantity to smallest units."""
        return int(round(human * self.unit))

    def human(self, raw: int) -> float:
        """Convert smallest units to a human-readable quantity."""
        return raw / self.unit


#: The default token universe used by scenarios and examples.
DEFAULT_TOKENS: Dict[str, Token] = {
    token.symbol: token
    for token in (
        Token(WETH, 18, "Wrapped Ether"),
        Token("DAI", 18, "Dai Stablecoin"),
        Token("USDC", 6, "USD Coin"),
        Token("USDT", 6, "Tether USD"),
        Token("WBTC", 8, "Wrapped Bitcoin"),
        Token("LINK", 18, "Chainlink"),
        Token("UNI", 18, "Uniswap"),
        Token("SUSHI", 18, "SushiToken"),
        Token("AAVE", 18, "Aave Token"),
        Token("MKR", 18, "Maker"),
    )
}


def get_token(symbol: str) -> Token:
    """Look up a token in the default universe, defaulting to 18 decimals."""
    return DEFAULT_TOKENS.get(symbol, Token(symbol))
