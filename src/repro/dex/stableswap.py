"""Curve-style stableswap pool (two coins, amplified invariant).

Implements the classic Curve integer math: the invariant
``A·n^n·S + D = A·D·n^n + D^(n+1)/(n^n·Πx)`` solved by Newton iteration.
Exposes the same interface as :class:`~repro.dex.amm.ConstantProductPool`
so routers, searchers and detection heuristics treat venues uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Optional, Tuple

from repro.chain.events import SwapEvent, SyncEvent
from repro.chain.execution import ExecutionContext, Revert
from repro.chain.state import WorldState
from repro.chain.types import Address, address_from_label

N_COINS = 2
FEE_DENOMINATOR = 10_000


def compute_d(amp: int, balances: Tuple[int, int]) -> int:
    """Newton-solve the stableswap invariant for D."""
    x0, x1 = balances
    s = x0 + x1
    if s == 0:
        return 0
    if x0 == 0 or x1 == 0:
        raise ValueError("stableswap pool is one-sided")
    return _d_newton(amp, x0, x1)


# The Newton iterations are pure integer functions of their arguments, and
# searchers probe the same reserve/amount points over and over between
# trades on the pool — an LRU is exact, not approximate.
@lru_cache(maxsize=4096)
def _d_newton(amp: int, x0: int, x1: int) -> int:
    s = x0 + x1
    d = s
    d_prev_prev = -1
    ann = amp * N_COINS**N_COINS
    for _ in range(255):
        d_p = d
        for x in (x0, x1):
            d_p = d_p * d // (N_COINS * x)
        d_prev = d
        d = ((ann * s + d_p * N_COINS) * d
             // ((ann - 1) * d + (N_COINS + 1) * d_p))
        # Integer Newton can orbit the root in a short cycle on extreme
        # imbalances; a relative tolerance (1e-15) ends the iteration with
        # sub-rounding-error accuracy in those cases.
        if abs(d - d_prev) <= max(1, d // 10**15):
            return min(d, d_prev)
        if d == d_prev_prev:
            return min(d, d_prev)
        d_prev_prev = d_prev
    raise ArithmeticError("D did not converge")


@lru_cache(maxsize=4096)
def compute_y(amp: int, d: int, x_new: int) -> int:
    """Given one post-trade balance ``x_new``, solve for the other."""
    ann = amp * N_COINS**N_COINS
    c = d * d // (x_new * N_COINS)
    c = c * d // (ann * N_COINS)
    b = x_new + d // ann
    y = d
    for _ in range(255):
        y_prev = y
        y = (y * y + c) // (2 * y + b - d)
        if abs(y - y_prev) <= 1:
            return y
    raise ArithmeticError("y did not converge")


def stable_amount_out(amount_in: int, reserve_in: int, reserve_out: int,
                      amp: int, fee_bps: int) -> int:
    """Stableswap output for an exact input, net of fee (pure form).

    This is :meth:`StableSwapPool.quote_out` with the reserves passed in
    explicitly — callers that already hold the reserves (the searcher's
    probe ladder) can quote without re-reading world state.
    """
    if amount_in <= 0:
        raise ValueError("amount_in must be positive")
    if reserve_in <= 0 or reserve_out <= 0:
        raise ValueError("pool has no liquidity")
    d = compute_d(amp, (reserve_in, reserve_out))
    y_new = compute_y(amp, d, reserve_in + amount_in)
    dy = reserve_out - y_new - 1  # -1 mirrors Curve's rounding guard
    if dy <= 0:
        return 0
    return dy - dy * fee_bps // FEE_DENOMINATOR


@dataclass
class StableSwapPool:
    """A two-coin amplified pool (Curve-like)."""

    venue: str
    token0: str
    token1: str
    amp: int = 100
    fee_bps: int = 4  # Curve's typical 4 bps

    def __post_init__(self) -> None:
        if self.token0 == self.token1:
            raise ValueError("pool tokens must differ")
        if self.amp <= 0:
            raise ValueError("amplification must be positive")
        if not 0 <= self.fee_bps < FEE_DENOMINATOR:
            raise ValueError("fee out of range")
        if self.token0 > self.token1:
            self.token0, self.token1 = self.token1, self.token0
        self.address: Address = address_from_label(
            f"stable:{self.venue}:{self.token0}/{self.token1}:{self.amp}")
        self._ledger_cache: Optional[Tuple[WorldState, dict, dict]] = None

    # Shared pool interface -----------------------------------------------------

    def _ledgers(self, state: WorldState) -> Tuple[dict, dict]:
        """Per-state ledger cache (see ConstantProductPool._ledgers)."""
        cached = self._ledger_cache
        if cached is not None and cached[0] is state:
            return cached[1], cached[2]
        ledger0 = state.token_ledger(self.token0)
        ledger1 = state.token_ledger(self.token1)
        self._ledger_cache = (state, ledger0, ledger1)
        return ledger0, ledger1

    def reserves(self, state: WorldState) -> Tuple[int, int]:
        ledger0, ledger1 = self._ledgers(state)
        addr = self.address
        return (ledger0.get(addr, 0), ledger1.get(addr, 0))

    def reserve_of(self, state: WorldState, token: str) -> int:
        ledger0, ledger1 = self._ledgers(state)
        if token == self.token0:
            return ledger0.get(self.address, 0)
        if token == self.token1:
            return ledger1.get(self.address, 0)
        self._require_member(token)
        raise AssertionError("unreachable")

    def other(self, token: str) -> str:
        self._require_member(token)
        return self.token1 if token == self.token0 else self.token0

    def has_token(self, token: str) -> bool:
        return token in (self.token0, self.token1)

    def _require_member(self, token: str) -> None:
        if not self.has_token(token):
            raise ValueError(f"{token} is not in pool "
                             f"{self.token0}/{self.token1}")

    def add_liquidity(self, state: WorldState, **amounts: int) -> None:
        """Mint reserves keyed by token symbol (see ConstantProductPool)."""
        for token, amount in amounts.items():
            self._require_member(token)
            if amount < 0:
                raise ValueError("liquidity amounts cannot be negative")
            state.mint_token(token, self.address, amount)

    def quote_out(self, state: WorldState, token_in: str,
                  amount_in: int) -> int:
        """Stableswap output for an exact input, net of fee."""
        token_out = self.other(token_in)
        return stable_amount_out(amount_in,
                                 self.reserve_of(state, token_in),
                                 self.reserve_of(state, token_out),
                                 self.amp, self.fee_bps)

    def spot_price(self, state: WorldState, token: str) -> float:
        """Marginal price via a small probe trade."""
        reserve = self.reserve_of(state, token)
        probe = max(1, reserve // 100_000)
        return self.quote_out(state, token, probe) / probe

    def swap(self, ctx: ExecutionContext, token_in: str, amount_in: int,
             recipient: Address, min_amount_out: int = 0) -> int:
        token_out = self.other(token_in)
        try:
            amount_out = self.quote_out(ctx.state, token_in, amount_in)
        except (ValueError, ArithmeticError) as exc:
            raise Revert(str(exc))
        if amount_out <= 0:
            raise Revert("insufficient output amount")
        if amount_out < min_amount_out:
            raise Revert("slippage limit exceeded")
        taker = ctx.tx.sender
        ctx.state.transfer_token(token_in, taker, self.address, amount_in)
        ctx.state.transfer_token(token_out, self.address, recipient,
                                 amount_out)
        ctx.emit(SwapEvent(address=self.address, venue=self.venue,
                           taker=taker, recipient=recipient,
                           token_in=token_in, token_out=token_out,
                           amount_in=amount_in, amount_out=amount_out))
        reserve0, reserve1 = self.reserves(ctx.state)
        ctx.emit(SyncEvent(address=self.address, token0=self.token0,
                           token1=self.token1, reserve0=reserve0,
                           reserve1=reserve1))
        return amount_out
