"""DEX substrate: AMM pools, venue registry, swap intents, MEV math."""

from repro.dex.amm import (
    DEFAULT_FEE_BPS,
    FEE_DENOMINATOR,
    ConstantProductPool,
    get_amount_in,
    get_amount_out,
)
from repro.dex.arbitrage_math import (
    ArbitragePlan,
    SandwichPlan,
    max_sandwich_frontrun,
    optimal_two_pool_arbitrage,
    plan_sandwich,
    price_gap_ratio,
    simulate_two_pool_arbitrage,
)
from repro.dex.registry import (
    ARBITRAGE_VENUES,
    BALANCER,
    BANCOR,
    CURVE,
    SANDWICH_VENUES,
    SUSHISWAP,
    UNISWAP_V1,
    UNISWAP_V2,
    UNISWAP_V3,
    VENUE_FEE_BPS,
    ZEROX,
    ExchangeRegistry,
    Pool,
)
from repro.dex.router import (
    ArbitrageIntent,
    MultiHopSwapIntent,
    SwapAllIntent,
    SwapIntent,
    route_tokens,
)
from repro.dex.stableswap import StableSwapPool, compute_d, compute_y
from repro.dex.weighted import (
    WeightedPool,
    integer_nth_root,
    weighted_amount_out,
)
from repro.dex.token import DEFAULT_TOKENS, WETH, Token, get_token

__all__ = [
    "ARBITRAGE_VENUES", "ArbitrageIntent", "ArbitragePlan", "BALANCER",
    "BANCOR", "CURVE", "ConstantProductPool", "DEFAULT_FEE_BPS",
    "DEFAULT_TOKENS", "ExchangeRegistry", "FEE_DENOMINATOR",
    "MultiHopSwapIntent", "Pool", "SANDWICH_VENUES", "SUSHISWAP",
    "SandwichPlan", "StableSwapPool", "SwapIntent", "Token",
    "UNISWAP_V1", "UNISWAP_V2",
    "UNISWAP_V3", "VENUE_FEE_BPS", "WETH", "ZEROX", "compute_d",
    "compute_y", "get_amount_in", "get_amount_out", "get_token",
    "max_sandwich_frontrun", "optimal_two_pool_arbitrage", "plan_sandwich",
    "price_gap_ratio", "route_tokens", "simulate_two_pool_arbitrage",
    "WeightedPool", "integer_nth_root", "weighted_amount_out",
    "SwapAllIntent",
]
