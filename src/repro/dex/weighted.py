"""Balancer-style weighted constant-mean pools.

A weighted pool holds reserves ``B_in, B_out`` with weights
``w_in, w_out`` and preserves the value function ``B_in^w_in ·
B_out^w_out``.  The exact-input swap formula is::

    out = B_out · (1 − (B_in / (B_in + in·(1−fee)))^(w_in/w_out))

Weights are kept as small integers (e.g. 4:1 for an 80/20 pool) so the
exponent is a rational ``p/q`` and the whole computation stays in exact
integer arithmetic via ``q``-th roots (floor), preserving the
no-free-money property bit-for-bit like the rest of the DEX layer.
A 1:1 weighting reduces to the constant-product formula exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.chain.events import SwapEvent, SyncEvent
from repro.chain.execution import ExecutionContext, Revert
from repro.chain.state import WorldState
from repro.chain.types import Address, address_from_label

FEE_DENOMINATOR = 10_000


def integer_nth_root(value: int, n: int) -> int:
    """Floor of the n-th root of a non-negative integer (exact)."""
    if value < 0:
        raise ValueError("value must be non-negative")
    if n <= 0:
        raise ValueError("root order must be positive")
    if value in (0, 1) or n == 1:
        return value
    # Newton iteration on x^n = value, seeded from the bit length.
    x = 1 << (value.bit_length() // n + 1)
    while True:
        y = ((n - 1) * x + value // x**(n - 1)) // n
        if y >= x:
            break
        x = y
    return x


def pow_ratio_floor(base_num: int, base_den: int, exp_num: int,
                    exp_den: int, scale: int = 10**18) -> int:
    """Floor of ``scale · (base_num/base_den)^(exp_num/exp_den)``.

    Requires ``base_num ≤ base_den`` (the swap formula only raises
    numbers in (0, 1]), so intermediate powers cannot explode.
    """
    if base_num < 0 or base_den <= 0:
        raise ValueError("invalid base")
    if base_num > base_den:
        raise ValueError("base must be <= 1")
    # (num/den)^(p/q) = q-th root of (num^p / den^p); multiply by
    # scale^q inside the root to keep precision.
    powered_num = base_num ** exp_num
    powered_den = base_den ** exp_num
    return integer_nth_root(powered_num * scale**exp_den // powered_den,
                            exp_den)


#: Balancer's MAX_IN_RATIO: a single swap may consume at most half the
#: input-side reserve, which also bounds the output strictly below the
#: output-side reserve.
MAX_IN_RATIO_DENOM = 2


def weighted_amount_out(amount_in: int, reserve_in: int,
                        reserve_out: int, weight_in: int,
                        weight_out: int,
                        fee_bps: int = 25) -> int:
    """Balancer ``outGivenIn`` in exact integer arithmetic."""
    if amount_in <= 0:
        raise ValueError("amount_in must be positive")
    if reserve_in <= 0 or reserve_out <= 0:
        raise ValueError("pool has no liquidity")
    if weight_in <= 0 or weight_out <= 0:
        raise ValueError("weights must be positive")
    if amount_in > reserve_in // MAX_IN_RATIO_DENOM:
        raise ValueError("swap exceeds Balancer's max-in ratio")
    effective_in = amount_in * (FEE_DENOMINATOR - fee_bps) \
        // FEE_DENOMINATOR
    scale = 10**18
    # Round the retained-balance ratio UP (+1) so the output rounds in
    # the pool's favour — Balancer's fixed-point rounding direction, and
    # what keeps dust-sized round trips from minting a stray wei.
    ratio = pow_ratio_floor(reserve_in, reserve_in + effective_in,
                            weight_in, weight_out, scale) + 1
    out = reserve_out * max(0, scale - ratio) // scale
    return min(out, reserve_out - 1)


@dataclass
class WeightedPool:
    """A two-token weighted pool (Balancer-like).

    ``weight0``/``weight1`` are small integers; an 80/20 WETH pool is
    ``weight(WETH)=4, weight(other)=1``.
    """

    venue: str
    token0: str
    token1: str
    weight0: int = 1
    weight1: int = 1
    fee_bps: int = 25

    def __post_init__(self) -> None:
        if self.token0 == self.token1:
            raise ValueError("pool tokens must differ")
        if self.weight0 <= 0 or self.weight1 <= 0:
            raise ValueError("weights must be positive")
        if not 0 <= self.fee_bps < FEE_DENOMINATOR:
            raise ValueError("fee out of range")
        if self.token0 > self.token1:
            self.token0, self.token1 = self.token1, self.token0
            self.weight0, self.weight1 = self.weight1, self.weight0
        self.address: Address = address_from_label(
            f"weighted:{self.venue}:{self.token0}/{self.token1}:"
            f"{self.weight0}:{self.weight1}:{self.fee_bps}")
        self._ledger_cache: Optional[Tuple[WorldState, dict, dict]] = None

    # Shared pool interface ---------------------------------------------------

    def _ledgers(self, state: WorldState) -> Tuple[dict, dict]:
        """Per-state ledger cache (see ConstantProductPool._ledgers)."""
        cached = self._ledger_cache
        if cached is not None and cached[0] is state:
            return cached[1], cached[2]
        ledger0 = state.token_ledger(self.token0)
        ledger1 = state.token_ledger(self.token1)
        self._ledger_cache = (state, ledger0, ledger1)
        return ledger0, ledger1

    def reserves(self, state: WorldState) -> Tuple[int, int]:
        ledger0, ledger1 = self._ledgers(state)
        addr = self.address
        return (ledger0.get(addr, 0), ledger1.get(addr, 0))

    def reserve_of(self, state: WorldState, token: str) -> int:
        ledger0, ledger1 = self._ledgers(state)
        if token == self.token0:
            return ledger0.get(self.address, 0)
        if token == self.token1:
            return ledger1.get(self.address, 0)
        self._require_member(token)
        raise AssertionError("unreachable")

    def weight_of(self, token: str) -> int:
        self._require_member(token)
        return self.weight0 if token == self.token0 else self.weight1

    def other(self, token: str) -> str:
        self._require_member(token)
        return self.token1 if token == self.token0 else self.token0

    def has_token(self, token: str) -> bool:
        return token in (self.token0, self.token1)

    def _require_member(self, token: str) -> None:
        if not self.has_token(token):
            raise ValueError(f"{token} is not in pool "
                             f"{self.token0}/{self.token1}")

    def add_liquidity(self, state: WorldState, **amounts: int) -> None:
        """Mint reserves keyed by token symbol."""
        for token, amount in amounts.items():
            self._require_member(token)
            if amount < 0:
                raise ValueError("liquidity amounts cannot be negative")
            state.mint_token(token, self.address, amount)

    def quote_out(self, state: WorldState, token_in: str,
                  amount_in: int) -> int:
        token_out = self.other(token_in)
        return weighted_amount_out(
            amount_in, self.reserve_of(state, token_in),
            self.reserve_of(state, token_out),
            self.weight_of(token_in), self.weight_of(token_out),
            self.fee_bps)

    def spot_price(self, state: WorldState, token: str) -> float:
        """Marginal price of ``token`` in the other token:
        (B_other/w_other) / (B_token/w_token)."""
        other = self.other(token)
        reserve_token = self.reserve_of(state, token)
        if reserve_token == 0:
            raise ValueError("pool has no liquidity")
        return ((self.reserve_of(state, other) / self.weight_of(other))
                / (reserve_token / self.weight_of(token)))

    def swap(self, ctx: ExecutionContext, token_in: str, amount_in: int,
             recipient: Address, min_amount_out: int = 0) -> int:
        token_out = self.other(token_in)
        try:
            amount_out = self.quote_out(ctx.state, token_in, amount_in)
        except (ValueError, ArithmeticError) as exc:
            raise Revert(str(exc))
        if amount_out <= 0:
            raise Revert("insufficient output amount")
        if amount_out < min_amount_out:
            raise Revert("slippage limit exceeded")
        taker = ctx.tx.sender
        ctx.state.transfer_token(token_in, taker, self.address,
                                 amount_in)
        ctx.state.transfer_token(token_out, self.address, recipient,
                                 amount_out)
        ctx.emit(SwapEvent(address=self.address, venue=self.venue,
                           taker=taker, recipient=recipient,
                           token_in=token_in, token_out=token_out,
                           amount_in=amount_in, amount_out=amount_out))
        reserve0, reserve1 = self.reserves(ctx.state)
        ctx.emit(SyncEvent(address=self.address, token0=self.token0,
                           token1=self.token1, reserve0=reserve0,
                           reserve1=reserve1))
        return amount_out
