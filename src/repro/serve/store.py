"""The read-optimized columnar snapshot behind every serve endpoint.

:class:`ColumnStore` holds the served copy of the detection rows.  Its
write surface is tiny and block-granular — ``ingest_block`` /
``retract_block`` from the streaming feeder, ``load_dataset`` from a
completed batch run, ``reconcile`` when a stream finalizes — and every
write replaces a whole per-height bucket in one assignment and bumps
the store *generation*, so a reader never observes half a reorg: a
retraction and the canonical re-ingest that supersedes it are two
generation bumps, each atomic.

The read surface is a lazily materialized **columnar snapshot**: on the
first read after a write, the per-height buckets compact into parallel
column arrays (kind, actor, miner, profit, label columns) plus a sorted
``(height, kind_rank, seq)`` key index.  Range scans bisect the key
index; aggregates and leaderboards scan columns without touching row
dicts; row endpoints slice the canonical row list.  Many reads amortize
one compaction — the shape a query service wants.

**Canonical order.**  Rows sort by ``(height, kind_rank, seq)`` where
``seq`` numbers a block's rows of one kind in detection order.  Both
ingest paths produce the same order — a batch dataset's rows group into
the identical per-height buckets the per-block stream payloads arrive
in — which is what makes every endpoint byte-identical between a
batch-built and a stream-built store (the serve identity rule).

**Cursor stability.**  A pagination cursor is the key of the last row
returned, so it addresses a *position in the order*, not an offset.
Rows retracted or superseded underneath a walk cannot duplicate or
skip surviving rows: the walk resumes strictly after the cursor key.
"""

from __future__ import annotations

import hashlib
import json
from bisect import bisect_left, bisect_right
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.core.datasets import MevDataset

__all__ = ["ColumnStore", "CursorError", "StoreReconcileError",
           "decode_cursor", "encode_cursor"]

#: canonical kind order inside one block (matches ``MevDataset.to_rows``)
KIND_RANK: Dict[str, int] = {"sandwich": 0, "arbitrage": 1,
                             "liquidation": 2}

#: fields the post-detection joins may rewrite; everything else is
#: frozen at detection time and must survive a reconcile untouched
LABEL_FIELDS: Tuple[str, ...] = ("via_flashbots", "via_flashloan",
                                 "privacy")

RowKey = Tuple[int, int, int]


class StoreReconcileError(Exception):
    """A finalized dataset contradicted the live-ingested rows.

    Raised when :meth:`ColumnStore.reconcile` finds a height, row
    count, or non-label field that differs between what the stream fed
    block-by-block and what the finalized pipeline computed — the
    serving layer refuses to paper over a convergence failure.
    """


class CursorError(ValueError):
    """A pagination cursor that is not one this store issued."""


def encode_cursor(key: RowKey) -> str:
    """The opaque wire form of a row key."""
    return f"r{key[0]}.{key[1]}.{key[2]}"


def decode_cursor(cursor: str) -> RowKey:
    """Parse a wire cursor back into a row key (raises CursorError)."""
    if not cursor.startswith("r"):
        raise CursorError(f"malformed cursor {cursor!r}")
    parts = cursor[1:].split(".")
    if len(parts) != 3:
        raise CursorError(f"malformed cursor {cursor!r}")
    try:
        height, rank, seq = (int(part) for part in parts)
    except ValueError as exc:
        raise CursorError(f"malformed cursor {cursor!r}") from exc
    if rank < 0 or seq < 0:
        raise CursorError(f"malformed cursor {cursor!r}")
    return (height, rank, seq)


def _canonical_row(row: Dict[str, Any]) -> Dict[str, Any]:
    """A row dict normalized for serving: tuples become lists so the
    in-memory stream payload and a JSON-roundtripped checkpoint payload
    (and a batch dataset's rows) are indistinguishable."""
    return {name: list(value) if isinstance(value, tuple) else value
            for name, value in row.items()}


def _actor_of(row: Dict[str, Any]) -> str:
    """The extracting account a leaderboard charges the row to."""
    if row["kind"] == "liquidation":
        return str(row["liquidator"])
    return str(row["extractor"])


def _profit_of(row: Dict[str, Any]) -> int:
    return int(row["gain_wei"]) - int(row["cost_wei"])


@dataclass
class _Snapshot:
    """One generation's compacted, read-optimized view."""

    #: sorted ``(height, kind_rank, seq)`` — the pagination order
    keys: List[RowKey] = field(default_factory=list)
    #: canonical row dicts, parallel to ``keys``
    rows: List[Dict[str, Any]] = field(default_factory=list)
    #: column arrays, parallel to ``keys``
    kinds: List[str] = field(default_factory=list)
    actors: List[str] = field(default_factory=list)
    miners: List[str] = field(default_factory=list)
    profits: List[int] = field(default_factory=list)
    via_flashbots: List[Optional[bool]] = field(default_factory=list)
    via_flashloan: List[bool] = field(default_factory=list)
    privacy: List[Optional[str]] = field(default_factory=list)
    digest: str = ""


class ColumnStore:
    """Served detection rows: block-granular writes, columnar reads."""

    def __init__(self) -> None:
        #: height → that block's rows, in canonical per-block order
        self._blocks: Dict[int, List[Dict[str, Any]]] = {}
        #: the run's quality ledger, as served by ``/v1/coverage``
        self._quality: Optional[Dict[str, Any]] = None
        #: monotonically increasing write counter; every cached or
        #: conditional response is keyed to it
        self.generation: int = 0
        #: serving metadata the feeder maintains (e.g. the stream
        #: watermark); shown by ``/v1/status``, never cached
        self.meta: Dict[str, Any] = {}
        self._snapshot: Optional[_Snapshot] = None

    # Write surface -------------------------------------------------------

    def _bump(self) -> None:
        self.generation += 1
        self._snapshot = None

    def ingest_block(self, height: int,
                     rows: Iterable[Dict[str, Any]]) -> None:
        """Install (or supersede) one block's rows atomically.

        Re-ingesting a height replaces its bucket wholesale — the
        reorg path is *retract, then ingest the replacement*, and each
        step is one generation.
        """
        bucket = []
        for row in rows:
            canonical = _canonical_row(row)
            if int(canonical["block_number"]) != height:
                raise ValueError(
                    f"row for block {canonical['block_number']} "
                    f"ingested at height {height}")
            bucket.append(canonical)
        self._blocks[height] = bucket
        self._bump()

    def retract_block(self, height: int) -> int:
        """Drop one block's rows (reorg retraction); returns the count."""
        bucket = self._blocks.pop(height, None)
        self._bump()
        return 0 if bucket is None else len(bucket)

    def load_dataset(self, dataset: MevDataset) -> None:
        """Cold-start: snapshot a completed batch run's dataset."""
        blocks: Dict[int, List[Dict[str, Any]]] = {}
        for row in self._dataset_rows(dataset):
            blocks.setdefault(int(row["block_number"]), []).append(row)
        self._blocks = blocks
        if dataset.quality is not None:
            self._quality = dataset.quality.to_dict()
        self._bump()

    def set_quality(self, quality: Optional[Dict[str, Any]]) -> None:
        """Install the quality ledger served by ``/v1/coverage``."""
        self._quality = None if quality is None else \
            json.loads(json.dumps(quality))
        self._bump()

    def reconcile(self, dataset: MevDataset) -> None:
        """Fold a finalized dataset's labels into the live-built store.

        The stream feeds rows block-by-block *before* the joins run, so
        live rows carry detection-time labels; when the stream
        finalizes, this replays the joined dataset over the buckets —
        but only as a **label update**.  Every height, row count, and
        non-label field must already agree with what was served, or the
        store raises :class:`StoreReconcileError` instead of silently
        swapping in different data.  The whole reconcile lands as one
        generation: readers see either the pre-join store or the fully
        labelled one, never a half-labelled mix.
        """
        final: Dict[int, List[Dict[str, Any]]] = {}
        for row in self._dataset_rows(dataset):
            final.setdefault(int(row["block_number"]), []).append(row)
        live_heights = sorted(self._blocks)
        if live_heights != sorted(final):
            raise StoreReconcileError(
                f"finalized dataset covers blocks {sorted(final)[:3]}… "
                f"but the live store holds {live_heights[:3]}…")
        for height in live_heights:
            live, joined = self._blocks[height], final[height]
            if len(live) != len(joined):
                raise StoreReconcileError(
                    f"block {height}: {len(live)} rows served live, "
                    f"{len(joined)} in the finalized dataset")
            for served, labelled in zip(live, joined):
                for name, value in served.items():
                    if name in LABEL_FIELDS:
                        continue
                    if labelled.get(name) != value:
                        raise StoreReconcileError(
                            f"block {height}: finalized row differs "
                            f"from the served row in non-label field "
                            f"{name!r} ({labelled.get(name)!r} != "
                            f"{value!r})")
        self._blocks = final
        if dataset.quality is not None:
            self._quality = dataset.quality.to_dict()
        self._bump()

    @staticmethod
    def _dataset_rows(dataset: MevDataset) -> List[Dict[str, Any]]:
        return [_canonical_row(row) for row in dataset.to_rows()]

    # Snapshot ------------------------------------------------------------

    def _view(self) -> _Snapshot:
        """The current generation's columnar view, compacting if stale."""
        if self._snapshot is not None:
            return self._snapshot
        snapshot = _Snapshot()
        for height in sorted(self._blocks):
            seq: Dict[int, int] = {}
            bucket = sorted(self._blocks[height],
                            key=lambda row: KIND_RANK[row["kind"]])
            for row in bucket:
                rank = KIND_RANK[row["kind"]]
                index = seq.get(rank, 0)
                seq[rank] = index + 1
                snapshot.keys.append((height, rank, index))
                snapshot.rows.append(row)
                snapshot.kinds.append(row["kind"])
                snapshot.actors.append(_actor_of(row))
                snapshot.miners.append(str(row.get("miner", "")))
                snapshot.profits.append(_profit_of(row))
                snapshot.via_flashbots.append(row["via_flashbots"])
                snapshot.via_flashloan.append(
                    bool(row["via_flashloan"]))
                snapshot.privacy.append(row["privacy"])
        material = json.dumps(
            {"rows": snapshot.rows, "quality": self._quality},
            sort_keys=True)
        snapshot.digest = hashlib.sha256(
            material.encode("utf-8")).hexdigest()[:16]
        self._snapshot = snapshot
        return snapshot

    # Read surface --------------------------------------------------------

    @property
    def row_count(self) -> int:
        return len(self._view().rows)

    @property
    def block_count(self) -> int:
        return len(self._blocks)

    def bounds(self) -> Tuple[Optional[int], Optional[int]]:
        """Lowest and highest held height (``(None, None)`` if empty)."""
        if not self._blocks:
            return (None, None)
        heights = sorted(self._blocks)
        return (heights[0], heights[-1])

    def digest(self) -> str:
        """Content digest of the current generation's rows + quality."""
        return self._view().digest

    def has_block(self, height: int) -> bool:
        return height in self._blocks

    def rows_at(self, height: int) -> List[Dict[str, Any]]:
        """One block's rows in canonical order (empty if not held)."""
        view = self._view()
        lo = bisect_left(view.keys, (height, 0, 0))
        hi = bisect_right(view.keys, (height + 1, 0, -1))
        return view.rows[lo:hi]

    def page(self, lo: Optional[int] = None, hi: Optional[int] = None,
             cursor: Optional[str] = None, limit: int = 100,
             ) -> Tuple[List[Dict[str, Any]], Optional[str]]:
        """One page of rows in ``[lo, hi]``, resuming after ``cursor``.

        Returns ``(rows, next_cursor)``; ``next_cursor`` is ``None``
        exactly when the walk is exhausted.  A full cursor walk visits
        the same rows as the one-shot range read, in the same order,
        with no duplicates and no gaps (the pagination identity the
        property tests pin).
        """
        if limit < 1:
            raise ValueError(f"limit must be >= 1, got {limit}")
        view = self._view()
        start = 0 if lo is None else \
            bisect_left(view.keys, (lo, 0, 0))
        if cursor is not None:
            key = decode_cursor(cursor)
            start = max(start, bisect_right(view.keys, key))
        end = len(view.keys) if hi is None else \
            bisect_right(view.keys, (hi + 1, 0, -1))
        rows = view.rows[start:start + limit]
        if start + limit >= end:
            rows = view.rows[start:end]
            return (rows, None)
        return (rows, encode_cursor(view.keys[start + limit - 1]))

    # Analytics (column scans) --------------------------------------------

    def table1(self) -> List[Dict[str, Any]]:
        """Table-1-style aggregate rows (per strategy plus a total)."""
        view = self._view()
        counts: Dict[str, Dict[str, int]] = {
            kind: {"extractions": 0, "via_flashbots": 0,
                   "via_flash_loans": 0, "via_both": 0}
            for kind in KIND_RANK}
        for index, kind in enumerate(view.kinds):
            entry = counts[kind]
            entry["extractions"] += 1
            fb = bool(view.via_flashbots[index])
            fl = view.via_flashloan[index]
            entry["via_flashbots"] += 1 if fb else 0
            entry["via_flash_loans"] += 1 if fl else 0
            entry["via_both"] += 1 if (fb and fl) else 0
        rows = []
        total = {"extractions": 0, "via_flashbots": 0,
                 "via_flash_loans": 0, "via_both": 0}
        for kind in sorted(KIND_RANK, key=KIND_RANK.get):
            entry = counts[kind]
            for name in total:
                total[name] += entry[name]
            rows.append({"strategy": kind, **entry,
                         **_shares(entry)})
        rows.append({"strategy": "total", **total, **_shares(total)})
        return rows

    def leaderboard(self, by: str, limit: int = 20,
                    ) -> List[Dict[str, Any]]:
        """Top accounts by total profit: ``by`` is 'searchers'/'miners'.

        Searchers are the extracting accounts (the liquidator for
        liquidation rows); miners are the block producers who included
        them.  Ties break by extraction count, then address, so the
        ranking is total and deterministic.
        """
        view = self._view()
        if by == "searchers":
            accounts = view.actors
        elif by == "miners":
            accounts = view.miners
        else:
            raise ValueError(
                f"leaderboard must rank 'searchers' or 'miners', "
                f"got {by!r}")
        if limit < 1:
            raise ValueError(f"limit must be >= 1, got {limit}")
        totals: Dict[str, Dict[str, int]] = {}
        for index, account in enumerate(accounts):
            entry = totals.setdefault(
                account, {"extractions": 0, "profit_wei": 0,
                          "via_flashbots": 0})
            entry["extractions"] += 1
            entry["profit_wei"] += view.profits[index]
            entry["via_flashbots"] += \
                1 if view.via_flashbots[index] else 0
        ranked = sorted(
            totals.items(),
            key=lambda item: (-item[1]["profit_wei"],
                              -item[1]["extractions"], item[0]))
        return [{"rank": rank + 1, "account": account, **entry}
                for rank, (account, entry)
                in enumerate(ranked[:limit])]

    def coverage(self) -> Dict[str, Any]:
        """Quality/coverage document: the run's ledger plus the served
        rows' degraded-label counts (tri-state ``via_flashbots=None``
        gaps and ``privacy='unobserved'`` collector downtime)."""
        view = self._view()
        return {
            "quality": self._quality,
            "labels": {
                "rows": len(view.rows),
                "flashbots_unknown": sum(
                    1 for value in view.via_flashbots
                    if value is None),
                "privacy_unobserved": sum(
                    1 for value in view.privacy
                    if value == "unobserved"),
            },
        }


def _shares(entry: Dict[str, int]) -> Dict[str, Any]:
    total = entry["extractions"]
    if not total:
        return {"share_flashbots": 0.0, "share_flash_loans": 0.0,
                "share_both": 0.0}
    return {
        "share_flashbots": round(entry["via_flashbots"] / total, 6),
        "share_flash_loans": round(entry["via_flash_loans"] / total, 6),
        "share_both": round(entry["via_both"] / total, 6),
    }
