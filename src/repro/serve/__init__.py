"""``repro.serve`` — the async MEV query service over the pipeline.

The original study's deliverable was not a batch script but a query
surface: a MongoDB-backed analysis layer over the public Flashbots
blocks API that let the authors slice privacy and extraction
measurements per block, per searcher, and per miner.  This package is
that surface for the reproduction, engineered as a serving system:

* :class:`~repro.serve.store.ColumnStore` — a read-optimized columnar
  snapshot of detection rows with stable cursor pagination, a content
  digest per generation, and atomic supersede semantics across
  streaming reorg retractions;
* :class:`~repro.serve.service.MevQueryService` — the endpoint layer
  (per-block and per-range MEV rows, Table-1-style aggregates,
  searcher/miner leaderboards, coverage/quality) with ETag
  conditional-request caching and per-endpoint counters;
* :class:`~repro.serve.http.MevHttpServer` — an asyncio HTTP/1.1
  front end over stdlib streams (no third-party dependencies);
* :mod:`repro.serve.loadgen` — a seeded heavy-traffic replay harness
  feeding the ``serve`` stage of ``repro bench``;
* :mod:`repro.serve.builders` — the two ingest paths sharing one
  store: cold-start from a completed batch run, and live follow via
  :meth:`repro.stream.StreamEngine.ingest`.

The package's standing contract is the **identity rule**: every
endpoint's response over the final canonical chain is byte-identical
whether the store was built from a batch dataset or fed live by the
streaming engine through reorgs — enforced by
:func:`~repro.serve.service.responses_identical`, the serve test
suite, and the ``serve_identical`` gate of ``repro bench --serve``.
"""

from repro.serve.builders import (
    StoreFeeder,
    batch_service,
    service_from_dataset,
    store_from_dataset,
    stream_service,
)
from repro.serve.http import MevHttpServer
from repro.serve.loadgen import (
    LoadReport,
    build_mix,
    probe_once,
    serve_and_replay,
)
from repro.serve.service import (
    MevQueryService,
    ServeResponse,
    probe_targets,
    responses_identical,
)
from repro.serve.store import ColumnStore, StoreReconcileError

__all__ = [
    "ColumnStore",
    "LoadReport",
    "MevHttpServer",
    "MevQueryService",
    "ServeResponse",
    "StoreFeeder",
    "StoreReconcileError",
    "batch_service",
    "build_mix",
    "probe_once",
    "probe_targets",
    "responses_identical",
    "serve_and_replay",
    "service_from_dataset",
    "store_from_dataset",
    "stream_service",
]
