"""Stdlib-asyncio HTTP/1.1 front end for :class:`MevQueryService`.

One reader/writer pair per connection via :func:`asyncio.start_server`
— no third-party web framework, because the serving layer must run in
the same no-new-dependencies envelope as the rest of the repo.  The
server speaks the minimum of HTTP/1.1 the load harness and ``curl``
need: GET only, ``Content-Length`` framing, keep-alive by default,
``If-None-Match`` pass-through for the service's conditional caching.

Responses deliberately omit the ``Date`` header: every header byte is
part of the serve identity surface, and a wall-clock header would make
byte-identity meaningless.
"""

from __future__ import annotations

import asyncio
from typing import Dict, Optional, Tuple

from repro.serve.service import MevQueryService, ServeResponse

__all__ = ["MevHttpServer"]

#: refuse request heads larger than this (one line + headers)
MAX_HEAD_BYTES = 16384

_REASONS = {200: "OK", 304: "Not Modified", 400: "Bad Request",
            404: "Not Found", 405: "Method Not Allowed",
            431: "Request Header Fields Too Large",
            505: "HTTP Version Not Supported"}


class MevHttpServer:
    """Serve one :class:`MevQueryService` over a TCP socket.

    >>> server = MevHttpServer(service)          # doctest: +SKIP
    >>> await server.start()                     # doctest: +SKIP
    >>> server.port                              # doctest: +SKIP
    41873
    """

    def __init__(self, service: MevQueryService,
                 host: str = "127.0.0.1", port: int = 0) -> None:
        self.service = service
        self.host = host
        #: requested port; ``0`` asks the OS for an ephemeral one —
        #: read :attr:`port` after :meth:`start` for the bound value
        self._requested_port = port
        self.port: Optional[int] = None
        self._server: Optional[asyncio.AbstractServer] = None
        #: connections accepted / requests served over this lifetime
        self.connections = 0
        self.requests = 0

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, host=self.host,
            port=self._requested_port)
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    @property
    def base_url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # Connection handling -------------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        self.connections += 1
        try:
            while True:
                head = await self._read_head(reader)
                if head is None:
                    break
                method, target, version, headers = head
                keep_alive = self._serve_one(
                    writer, method, target, version, headers)
                await writer.drain()
                self.requests += 1
                if not keep_alive:
                    break
        except (ConnectionResetError, asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _read_head(self, reader: asyncio.StreamReader,
                         ) -> Optional[Tuple[str, str, str,
                                             Dict[str, str]]]:
        """One request head, or ``None`` on a clean EOF."""
        try:
            raw = await reader.readuntil(b"\r\n\r\n")
        except asyncio.IncompleteReadError as exc:
            if not exc.partial:
                return None
            raise
        except asyncio.LimitOverrunError:
            return ("GET", "/", "HTTP/1.1",
                    {"x-repro-overrun": "1"})
        if len(raw) > MAX_HEAD_BYTES:
            return ("GET", "/", "HTTP/1.1", {"x-repro-overrun": "1"})
        lines = raw.decode("latin-1").split("\r\n")
        request_line = lines[0].split(" ")
        if len(request_line) != 3:
            return ("BAD", "/", "HTTP/1.1", {})
        method, target, version = request_line
        headers: Dict[str, str] = {}
        for line in lines[1:]:
            if not line:
                continue
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        return (method, target, version, headers)

    def _serve_one(self, writer: asyncio.StreamWriter, method: str,
                   target: str, version: str,
                   headers: Dict[str, str]) -> bool:
        """Render one response onto the wire; returns keep-alive."""
        if "x-repro-overrun" in headers:
            response = _plain_error(431, "request head too large")
        elif version not in ("HTTP/1.1", "HTTP/1.0"):
            response = _plain_error(505, f"unsupported {version}")
        elif method != "GET":
            response = _plain_error(
                405, f"method {method} not allowed; the API is "
                "read-only")
        else:
            response = self.service.handle(
                target, if_none_match=headers.get("if-none-match"))
        keep_alive = (
            version == "HTTP/1.1"
            and headers.get("connection", "").lower() != "close"
            and response.status not in (431, 505))
        writer.write(_wire_bytes(response, keep_alive))
        return keep_alive


def _plain_error(status: int, message: str) -> ServeResponse:
    body = ('{"error":"' + message + '","status":'
            + str(status) + "}").encode("utf-8")
    return ServeResponse(status, body, None, "transport_error")


def _wire_bytes(response: ServeResponse, keep_alive: bool) -> bytes:
    """Serialize status line + headers + body.

    Header set and order are fixed (and hold no wall-clock ``Date``)
    so identical :class:`ServeResponse` objects put identical bytes on
    the wire — the transport preserves the serve identity rule.
    """
    reason = _REASONS.get(response.status, "Error")
    head = [f"HTTP/1.1 {response.status} {reason}",
            f"Content-Type: {response.content_type}",
            f"Content-Length: {len(response.body)}"]
    if response.etag is not None:
        head.append(f"ETag: {response.etag}")
    head.append("Connection: "
                + ("keep-alive" if keep_alive else "close"))
    return ("\r\n".join(head) + "\r\n\r\n").encode("ascii") \
        + response.body
