"""Endpoint layer: routes, response caching, and the identity probes.

:class:`MevQueryService` maps request targets onto
:class:`~repro.serve.store.ColumnStore` reads and renders canonical
JSON bodies (sorted keys, compact separators) so equal data is equal
bytes.  Responses carry a strong ETag — the SHA-256 of the body — and
a conditional request with a matching ``If-None-Match`` gets a
``304 Not Modified``.  The body cache is keyed to the store
*generation*: any write (including a reorg retraction) invalidates
every cached body at once, so a retraction is immediately visible as a
fresh body under a fresh ETag.

The service is transport-free — :mod:`repro.serve.http` puts it behind
a socket, the tests and the ``serve_identical`` gate call
:meth:`MevQueryService.handle` directly.  ``/v1/status`` is the one
deliberately non-deterministic endpoint (generation counts and traffic
counters differ between a batch-built and a stream-built store), so it
is never cached and never probed by :func:`responses_identical`.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.serve.store import ColumnStore, CursorError

__all__ = ["MevQueryService", "ServeResponse", "probe_targets",
           "responses_identical"]

#: hard ceiling on one page of rows, whatever ``limit=`` asks for
MAX_PAGE = 500
DEFAULT_PAGE = 100
#: most leaderboard entries one response will rank
MAX_LEADERBOARD = 100

JSON_TYPE = "application/json"


@dataclass(frozen=True)
class ServeResponse:
    """One rendered response, transport-agnostic."""

    status: int
    body: bytes
    etag: Optional[str]
    endpoint: str
    content_type: str = JSON_TYPE

    @property
    def json(self) -> Any:
        """The decoded body (test convenience)."""
        return json.loads(self.body) if self.body else None


def _render(payload: Any) -> bytes:
    """Canonical JSON bytes: equal payloads are equal bodies."""
    return json.dumps(payload, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")


def _etag_of(body: bytes) -> str:
    return '"' + hashlib.sha256(body).hexdigest()[:24] + '"'


class MevQueryService:
    """The query API over one :class:`ColumnStore`.

    Routes::

        /v1/blocks/{n}/mev                  one block's MEV rows
        /v1/mev?from=&to=&limit=&cursor=    range scan with pagination
        /v1/aggregates/table1               Table-1-style aggregates
        /v1/leaderboards/searchers?limit=   top extracting accounts
        /v1/leaderboards/miners?limit=      top including miners
        /v1/coverage                        quality ledger + label gaps
        /v1/status                          generation/digest/counters
    """

    def __init__(self, store: ColumnStore) -> None:
        self.store = store
        #: per-endpoint traffic accounting, served by ``/v1/status``
        self.counters: Dict[str, Dict[str, int]] = {}
        #: target → (generation, etag, body) — valid while the store
        #: generation is unchanged
        self._cache: Dict[str, Tuple[int, str, bytes]] = {}

    # Entry point ---------------------------------------------------------

    def handle(self, target: str,
               if_none_match: Optional[str] = None) -> ServeResponse:
        """Serve one GET target (path plus query string)."""
        split = urlsplit(target)
        query = {name: values[-1] for name, values
                 in parse_qs(split.query).items()}
        try:
            endpoint, payload = self._route(split.path, query)
        except _BadRequest as exc:
            return self._error(400, str(exc), exc.endpoint)
        except _NotFound as exc:
            return self._error(404, str(exc), "not_found")
        if endpoint == "status":
            # never cached: generation/counters are serving-instance
            # facts, not data facts
            self._count(endpoint, "requests")
            body = _render(payload)
            return ServeResponse(200, body, None, endpoint)
        generation = self.store.generation
        cached = self._cache.get(target)
        if cached is not None and cached[0] == generation:
            etag, body = cached[1], cached[2]
        else:
            body = _render(payload)
            etag = _etag_of(body)
            self._cache[target] = (generation, etag, body)
        self._count(endpoint, "requests")
        if if_none_match is not None and if_none_match == etag:
            self._count(endpoint, "not_modified")
            return ServeResponse(304, b"", etag, endpoint)
        return ServeResponse(200, body, etag, endpoint)

    # Routing -------------------------------------------------------------

    def _route(self, path: str,
               query: Dict[str, str]) -> Tuple[str, Any]:
        parts = [part for part in path.split("/") if part]
        if len(parts) >= 1 and parts[0] == "v1":
            if len(parts) == 3 and parts[1] == "blocks" \
                    and parts[2].isdigit():
                # tolerate the trailing /mev being implied
                raise _NotFound(f"no route for {path}")
            if len(parts) == 4 and parts[1] == "blocks" \
                    and parts[3] == "mev":
                return ("block_mev",
                        self._block_mev(_int_of(parts[2], "block")))
            if parts[1:] == ["mev"]:
                return ("range_mev", self._range_mev(query))
            if parts[1:] == ["aggregates", "table1"]:
                return ("table1", {"rows": self.store.table1()})
            if len(parts) == 3 and parts[1] == "leaderboards" \
                    and parts[2] in ("searchers", "miners"):
                return (f"leaderboard_{parts[2]}",
                        self._leaderboard(parts[2], query))
            if parts[1:] == ["coverage"]:
                return ("coverage", self._coverage())
            if parts[1:] == ["status"]:
                return ("status", self._status())
        raise _NotFound(f"no route for {path}")

    # Endpoints -----------------------------------------------------------

    def _block_mev(self, height: int) -> Dict[str, Any]:
        rows = self.store.rows_at(height)
        return {"block": height, "count": len(rows), "rows": rows}

    def _range_mev(self, query: Dict[str, str]) -> Dict[str, Any]:
        lo = _int_of(query["from"], "from") if "from" in query else None
        hi = _int_of(query["to"], "to") if "to" in query else None
        limit = DEFAULT_PAGE
        if "limit" in query:
            limit = _int_of(query["limit"], "limit")
            if limit < 1:
                raise _BadRequest("limit must be >= 1", "range_mev")
            limit = min(limit, MAX_PAGE)
        cursor = query.get("cursor")
        try:
            rows, next_cursor = self.store.page(
                lo=lo, hi=hi, cursor=cursor, limit=limit)
        except CursorError as exc:
            raise _BadRequest(str(exc), "range_mev") from exc
        return {"count": len(rows), "rows": rows,
                "next_cursor": next_cursor}

    def _leaderboard(self, by: str,
                     query: Dict[str, str]) -> Dict[str, Any]:
        limit = 20
        if "limit" in query:
            limit = _int_of(query["limit"], "limit")
            if limit < 1:
                raise _BadRequest("limit must be >= 1",
                                  f"leaderboard_{by}")
            limit = min(limit, MAX_LEADERBOARD)
        return {"by": by,
                "entries": self.store.leaderboard(by, limit=limit)}

    def _coverage(self) -> Dict[str, Any]:
        lo, hi = self.store.bounds()
        document = self.store.coverage()
        document["bounds"] = {"first_block": lo, "last_block": hi,
                              "blocks_with_mev":
                              self.store.block_count}
        return document

    def _status(self) -> Dict[str, Any]:
        return {"generation": self.store.generation,
                "digest": self.store.digest(),
                "rows": self.store.row_count,
                "counters": self.counters,
                "meta": self.store.meta}

    # Bookkeeping ---------------------------------------------------------

    def _count(self, endpoint: str, event: str) -> None:
        entry = self.counters.setdefault(
            endpoint, {"requests": 0, "not_modified": 0, "errors": 0})
        entry[event] += 1

    def _error(self, status: int, message: str,
               endpoint: str) -> ServeResponse:
        self._count(endpoint, "requests")
        self._count(endpoint, "errors")
        body = _render({"error": message, "status": status})
        return ServeResponse(status, body, None, endpoint)


class _BadRequest(Exception):
    def __init__(self, message: str, endpoint: str) -> None:
        super().__init__(message)
        self.endpoint = endpoint


class _NotFound(Exception):
    pass


def _int_of(raw: str, name: str) -> int:
    try:
        return int(raw)
    except ValueError as exc:
        raise _BadRequest(f"{name} must be an integer, got {raw!r}",
                          "bad_request") from exc


# Identity gate -----------------------------------------------------------

def probe_targets(store: ColumnStore) -> List[str]:
    """Deterministic targets covering every data endpoint.

    Built from the store's own bounds so the probe set is identical for
    any two stores holding the same canonical chain.  ``/v1/status`` is
    deliberately absent — it reports instance facts (generation,
    counters) that legitimately differ between builds.
    """
    targets = ["/v1/aggregates/table1",
               "/v1/leaderboards/searchers",
               "/v1/leaderboards/miners",
               "/v1/leaderboards/searchers?limit=3",
               "/v1/coverage",
               "/v1/mev"]
    lo, hi = store.bounds()
    if lo is not None and hi is not None:
        mid = (lo + hi) // 2
        for height in sorted({lo, mid, hi, hi + 1}):
            targets.append(f"/v1/blocks/{height}/mev")
        targets.append(f"/v1/mev?from={lo}&to={mid}")
        # a small page size forces a multi-step cursor walk
        targets.append(f"/v1/mev?from={lo}&to={hi}&limit=3")
    return targets


def responses_identical(left: "MevQueryService",
                        right: "MevQueryService",
                        targets: Optional[List[str]] = None,
                        ) -> bool:
    """The serve identity rule, checked byte-for-byte.

    Every probe target — and every page of every cursor walk the
    probes open — must come back with the same status and the same
    body bytes from both services.  Used with a batch-built ``left``
    and a stream-built ``right`` over the final canonical chain.
    """
    if targets is None:
        targets = probe_targets(left.store)
        if targets != probe_targets(right.store):
            return False
    pending = list(targets)
    seen = set(pending)
    while pending:
        target = pending.pop(0)
        a = left.handle(target)
        b = right.handle(target)
        if (a.status, a.body) != (b.status, b.body):
            return False
        if a.status != 200 or a.endpoint != "range_mev":
            continue
        cursor = a.json.get("next_cursor")
        if cursor is None:
            continue
        joiner = "&" if "?" in target else "?"
        base = target.split("cursor=")[0].rstrip("?&")
        follow = f"{base}{joiner}cursor={cursor}"
        if follow not in seen:
            seen.add(follow)
            pending.append(follow)
    return True
