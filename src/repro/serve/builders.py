"""The two ingest paths that share one :class:`ColumnStore`.

* **Cold start** — :func:`store_from_dataset` /
  :func:`service_from_dataset` snapshot a completed batch run, and
  :func:`batch_service` runs the batch pipeline itself (under one
  :class:`~repro.engine.RunConfig`, like every other execution
  surface) and serves the result.
* **Live follow** — :func:`stream_service` builds a store that is
  *subscribed* to a :class:`~repro.stream.StreamEngine` through
  :class:`StoreFeeder`: every indexed block lands in the store the
  moment detection finishes, every reorg retraction atomically
  supersedes the served rows, and finalize reconciles the
  post-join labels in.

The dependency points one way — serve imports stream, never the
reverse (R003) — so the engine stays ignorant of who consumes its
hooks.  And the serving layer is measurement-side code: it accepts
nodes, prices and datasets, never a ``SimulationResult``, so it can
no more peek at simulator ground truth than the detectors can.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.chain.node import ArchiveNode
from repro.chain.p2p import MempoolObserver
from repro.chain.types import Hash32
from repro.core.datasets import MevDataset
from repro.core.pipeline import MevInspector
from repro.core.profit import PriceService
from repro.engine.config import RunConfig
from repro.flashbots.api import FlashbotsBlocksApi
from repro.serve.service import MevQueryService
from repro.serve.store import ColumnStore
from repro.stream.engine import StreamEngine, StreamSubscriber

__all__ = ["StoreFeeder", "batch_service", "service_from_dataset",
           "store_from_dataset", "stream_service"]


class StoreFeeder(StreamSubscriber):
    """Mirror a :class:`StreamEngine`'s block events into a store.

    Blocks with no detection rows are not ingested — a batch dataset
    only materializes heights that hold rows, and the identity rule
    needs both build paths to hold the same heights.  Retractions are
    forwarded unconditionally (retracting an empty height is a no-op
    with a generation bump, which correctly invalidates caches that
    may have served the emptiness).
    """

    def __init__(self, store: ColumnStore) -> None:
        self.store = store

    def block_indexed(self, height: int, block_hash: Hash32,
                      rows: List[Dict[str, Any]]) -> None:
        if rows:
            self.store.ingest_block(height, rows)
        self.store.meta["head"] = height

    def block_retracted(self, height: int, block_hash: Hash32,
                        rows_retracted: int) -> None:
        self.store.retract_block(height)

    def watermark_advanced(self, height: int) -> None:
        self.store.meta["watermark"] = height

    def stream_finalized(self, dataset: MevDataset) -> None:
        self.store.reconcile(dataset)
        self.store.meta["finalized"] = True


def store_from_dataset(dataset: MevDataset) -> ColumnStore:
    """Cold-start store over a completed run's dataset."""
    store = ColumnStore()
    store.load_dataset(dataset)
    return store


def service_from_dataset(dataset: MevDataset) -> MevQueryService:
    """Cold-start service over a completed run's dataset."""
    return MevQueryService(store_from_dataset(dataset))


def batch_service(node: ArchiveNode, prices: PriceService,
                  flashbots_api: Optional[FlashbotsBlocksApi] = None,
                  observer: Optional[MempoolObserver] = None,
                  config: Optional[RunConfig] = None,
                  ) -> MevQueryService:
    """Run the batch pipeline over ``node`` and serve its dataset."""
    inspector = MevInspector(node, prices, flashbots_api, observer)
    dataset = inspector.run(
        config=config if config is not None else RunConfig())
    return service_from_dataset(dataset)


def stream_service(prices: PriceService, first_block: int,
                   flashbots_api: Optional[FlashbotsBlocksApi] = None,
                   observer: Optional[MempoolObserver] = None,
                   config: Optional[RunConfig] = None,
                   ) -> Tuple[MevQueryService, StreamEngine]:
    """A service whose store follows a streaming engine live.

    Returns ``(service, engine)``; the caller drives
    ``engine.ingest`` / ``engine.finalize`` and the service's store
    tracks every append, retraction, and the final reconcile through
    the subscribed :class:`StoreFeeder`.  ``config`` supplies the
    confirmation depth and checkpoint/resume switches exactly as it
    does for ``repro.follow_inspector``.
    """
    if config is None:
        config = RunConfig()
    depth = 3 if config.confirm_depth is None else config.confirm_depth
    engine = StreamEngine(prices, first_block, confirm_depth=depth,
                          flashbots_api=flashbots_api,
                          observer=observer,
                          checkpoint=config.checkpoint,
                          resume=config.resume)
    service = MevQueryService(ColumnStore())
    engine.subscribe(StoreFeeder(service.store))
    return (service, engine)
