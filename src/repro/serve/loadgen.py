"""Seeded heavy-traffic replay for the ``serve`` bench stage.

:func:`build_mix` expands a seed into a deterministic request mix —
point reads, range scans, aggregates, leaderboards, paginated walks,
and conditional re-reads — shaped like the traffic an analysis
front end sends: mostly cheap point/range reads, a steady trickle of
expensive aggregates, and cache-revalidation round trips.

:func:`serve_and_replay` puts a :class:`MevQueryService` behind a real
socket (:class:`~repro.serve.http.MevHttpServer`) and drives the mix
over a handful of persistent keep-alive connections, timing each
request wall-to-wall (write → full body read).  The resulting
:class:`LoadReport` (p50/p99 latency, qps, per-endpoint counts) is
what ``repro bench --serve`` folds into ``BENCH_pipeline.json``.

The *mix* is bit-deterministic per seed; the *latencies* are honest
wall-clock measurements and are the one sanctioned nondeterminism in
this package (``_clock`` is on the R101 sanction list next to the
bench harness's clock).
"""

from __future__ import annotations

import asyncio
import random
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.serve.http import MevHttpServer
from repro.serve.service import MevQueryService

__all__ = ["LoadReport", "build_mix", "probe_once", "replay",
           "serve_and_replay"]

#: (kind, weight) — the traffic shape of the replay mix
MIX_WEIGHTS: Tuple[Tuple[str, int], ...] = (
    ("point", 35), ("range", 20), ("aggregate", 10),
    ("leaderboard", 10), ("coverage", 5), ("walk", 10),
    ("conditional", 10),
)

#: a paginated walk stops after this many pages even if more remain
MAX_WALK_PAGES = 8


def _clock() -> float:
    """Wall-clock latency source — sanctioned via R101.

    Latency is the *measurement output* of the serve bench stage, so
    unlike everywhere else in the repo it is allowed to read the real
    clock; the request mix itself stays seed-deterministic.
    """
    return time.perf_counter()  # repro-lint: disable=R002


@dataclass
class LoadReport:
    """What the replay measured."""

    seed: int
    requests: int = 0
    duration_s: float = 0.0
    qps: float = 0.0
    p50_ms: float = 0.0
    p99_ms: float = 0.0
    max_ms: float = 0.0
    connections: int = 0
    not_modified: int = 0
    errors: int = 0
    by_kind: Dict[str, int] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {"seed": self.seed, "requests": self.requests,
                "duration_s": round(self.duration_s, 6),
                "qps": round(self.qps, 3),
                "p50_ms": round(self.p50_ms, 6),
                "p99_ms": round(self.p99_ms, 6),
                "max_ms": round(self.max_ms, 6),
                "connections": self.connections,
                "not_modified": self.not_modified,
                "errors": self.errors,
                "by_kind": dict(sorted(self.by_kind.items()))}


def build_mix(first_block: int, last_block: int, requests: int = 200,
              seed: int = 0) -> List[Dict[str, Any]]:
    """A deterministic request mix over ``[first_block, last_block]``.

    Returns entries ``{"kind": ..., "target": ...}``; ``walk`` entries
    open a cursor walk the replay follows live, ``conditional``
    entries are read twice — the second time with ``If-None-Match`` —
    to exercise the 304 path.
    """
    if last_block < first_block:
        raise ValueError("empty block range for the load mix")
    rng = random.Random(seed)
    kinds = [kind for kind, _ in MIX_WEIGHTS]
    weights = [weight for _, weight in MIX_WEIGHTS]
    span = last_block - first_block
    mix: List[Dict[str, Any]] = []
    for kind in rng.choices(kinds, weights=weights, k=requests):
        if kind == "point":
            height = first_block + rng.randint(0, span)
            target = f"/v1/blocks/{height}/mev"
        elif kind in ("range", "walk"):
            lo = first_block + rng.randint(0, span)
            hi = min(lo + rng.randint(0, max(span // 4, 1)),
                     last_block)
            limit = rng.choice((2, 3, 5, 25, 100)) \
                if kind == "walk" else rng.choice((50, 100, 250))
            target = f"/v1/mev?from={lo}&to={hi}&limit={limit}"
        elif kind == "aggregate":
            target = "/v1/aggregates/table1"
        elif kind == "leaderboard":
            board = rng.choice(("searchers", "miners"))
            limit = rng.choice((5, 10, 20))
            target = f"/v1/leaderboards/{board}?limit={limit}"
        elif kind == "coverage":
            target = "/v1/coverage"
        else:  # conditional: revalidate a point read
            height = first_block + rng.randint(0, span)
            target = f"/v1/blocks/{height}/mev"
        mix.append({"kind": kind, "target": target})
    return mix


async def serve_and_replay(service: MevQueryService,
                           mix: List[Dict[str, Any]], seed: int = 0,
                           connections: int = 4,
                           host: str = "127.0.0.1") -> LoadReport:
    """Start a server around ``service``, replay ``mix``, tear down."""
    server = MevHttpServer(service, host=host, port=0)
    await server.start()
    try:
        return await replay(host, server.port or 0, mix, seed=seed,
                            connections=connections)
    finally:
        await server.stop()


async def probe_once(host: str, port: int, target: str,
                     if_none_match: Optional[str] = None,
                     ) -> Tuple[int, Optional[str], bytes]:
    """One ad-hoc GET against a live server, on its own connection.

    Returns ``(status, etag, body)`` — the building block for
    mid-stream probes (``repro serve --smoke``) and for tests that
    want a single request without standing up a full replay mix.
    """
    client = _Client(host, port)
    await client.connect()
    try:
        return await client.get(target, if_none_match)
    finally:
        await client.close()


async def replay(host: str, port: int, mix: List[Dict[str, Any]],
                 seed: int = 0, connections: int = 4) -> LoadReport:
    """Drive the mix against a live server over keep-alive sockets."""
    report = LoadReport(seed=seed, connections=connections)
    latencies: List[float] = []
    queue: List[Dict[str, Any]] = list(mix)
    cursor = {"next": 0}

    async def worker() -> None:
        client = _Client(host, port)
        await client.connect()
        try:
            while True:
                index = cursor["next"]
                if index >= len(queue):
                    return
                cursor["next"] = index + 1
                await _one_entry(client, queue[index], report,
                                 latencies)
        finally:
            await client.close()

    started = _clock()
    await asyncio.gather(*(worker()
                           for _ in range(max(1, connections))))
    report.duration_s = max(_clock() - started, 1e-9)
    report.requests = len(latencies)
    report.qps = report.requests / report.duration_s
    if latencies:
        ordered = sorted(latencies)
        report.p50_ms = _nearest_rank(ordered, 50) * 1000.0
        report.p99_ms = _nearest_rank(ordered, 99) * 1000.0
        report.max_ms = ordered[-1] * 1000.0
    return report


async def _one_entry(client: "_Client", entry: Dict[str, Any],
                     report: LoadReport,
                     latencies: List[float]) -> None:
    kind = entry["kind"]
    report.by_kind[kind] = report.by_kind.get(kind, 0) + 1
    status, etag, body = await _timed(client, entry["target"], None,
                                      report, latencies)
    if kind == "conditional" and status == 200 and etag:
        status, _, _ = await _timed(client, entry["target"], etag,
                                    report, latencies)
        if status == 304:
            report.not_modified += 1
    elif kind == "walk":
        pages = 1
        while pages < MAX_WALK_PAGES and status == 200:
            next_cursor = _cursor_in(body)
            if next_cursor is None:
                break
            target = entry["target"] + f"&cursor={next_cursor}"
            status, _, body = await _timed(client, target, None,
                                           report, latencies)
            pages += 1


async def _timed(client: "_Client", target: str, etag: Optional[str],
                 report: LoadReport, latencies: List[float],
                 ) -> Tuple[int, Optional[str], bytes]:
    before = _clock()
    status, got_etag, body = await client.get(target, etag)
    latencies.append(_clock() - before)
    if status >= 400:
        report.errors += 1
    return (status, got_etag, body)


def _cursor_in(body: bytes) -> Optional[str]:
    """Pull ``next_cursor`` out of a range response without a full
    JSON parse (the cursor grammar has no quotes or escapes)."""
    marker = b'"next_cursor":"'
    start = body.find(marker)
    if start < 0:
        return None
    start += len(marker)
    end = body.index(b'"', start)
    return body[start:end].decode("ascii")


def _nearest_rank(ordered: List[float], pct: int) -> float:
    """Nearest-rank percentile over an already-sorted sample."""
    rank = max(1, -(-len(ordered) * pct // 100))
    return ordered[min(rank, len(ordered)) - 1]


class _Client(object):
    """A minimal keep-alive HTTP/1.1 GET client over asyncio streams."""

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None

    async def connect(self) -> None:
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port)

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
            self._writer = None
            self._reader = None

    async def get(self, target: str, if_none_match: Optional[str],
                  ) -> Tuple[int, Optional[str], bytes]:
        assert self._reader is not None and self._writer is not None
        head = [f"GET {target} HTTP/1.1",
                f"Host: {self.host}:{self.port}"]
        if if_none_match is not None:
            head.append(f"If-None-Match: {if_none_match}")
        self._writer.write(
            ("\r\n".join(head) + "\r\n\r\n").encode("ascii"))
        await self._writer.drain()
        raw = await self._reader.readuntil(b"\r\n\r\n")
        lines = raw.decode("latin-1").split("\r\n")
        status = int(lines[0].split(" ")[1])
        etag: Optional[str] = None
        length = 0
        for line in lines[1:]:
            name, _, value = line.partition(":")
            name = name.strip().lower()
            if name == "etag":
                etag = value.strip()
            elif name == "content-length":
                length = int(value.strip())
        body = await self._reader.readexactly(length) if length \
            else b""
        return (status, etag, body)
