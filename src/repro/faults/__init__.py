"""``repro.faults`` — deterministic fault injection for the data sources.

The paper's measurement ran against three imperfect sources: a
go-ethereum archive node, a lossy ``pendingTransactions`` trace
(Section 6.1 explicitly models missed transactions), and the public
Flashbots blocks dataset, which the authors note has gaps.  This package
reproduces those failure modes *on purpose*: transport facades wrap each
source and inject transient errors, timeouts, truncated/malformed
responses, dataset gaps, and observer downtime according to a seeded
:class:`FaultPlan`.

Every injected fault is a pure function of ``(seed, source, operation,
key)``, so a chaos run replays bit-for-bit — the same property the rest
of the simulator guarantees (lint rule R002).  The defenses live in
:mod:`repro.reliability`; this package only breaks things.
"""

from repro.faults.errors import (
    DataSourceError,
    MalformedResponseError,
    SourceGapError,
    TransportError,
    TransportTimeout,
)
from repro.faults.feed import (
    ChainFeed,
    FaultyFeed,
    FeedEvent,
    fork_block,
)
from repro.faults.plan import (
    FAULT_PROFILES,
    FaultDecision,
    FaultPlan,
    FaultSpec,
    FeedDecision,
    FeedFaultSpec,
)
from repro.faults.transports import (
    FaultyArchiveNode,
    FaultyFlashbotsApi,
    FaultyMempoolObserver,
)

__all__ = [
    "ChainFeed",
    "DataSourceError",
    "FAULT_PROFILES",
    "FaultDecision",
    "FaultPlan",
    "FaultSpec",
    "FaultyArchiveNode",
    "FaultyFeed",
    "FaultyFlashbotsApi",
    "FaultyMempoolObserver",
    "FeedDecision",
    "FeedEvent",
    "FeedFaultSpec",
    "MalformedResponseError",
    "SourceGapError",
    "TransportError",
    "TransportTimeout",
    "fork_block",
]
