"""Seeded fault plans: *what* fails, *where*, and *how often*.

A :class:`FaultPlan` is the single source of truth for a chaos run.  It
is pure data plus a deterministic decision function: for every
``(source, operation, key)`` triple it answers "how many attempts fail
before one succeeds, and with which error".  The decision is derived by
seeding a private ``random.Random`` with the string
``"{seed}:{source}:{op}:{key}"`` — CPython seeds string inputs through
SHA-512, so the answer is stable across processes and hash seeds, and
independent of the order in which the pipeline happens to ask.

Unrecoverable conditions are expressed as *ranges*, matching how they
occurred in the real study: the Flashbots dataset has gap block ranges,
the pending-transaction observer had downtime windows, and an archive
node can lose a span of history (used by the crash/resume tests).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

BlockRange = Tuple[int, int]

#: injected error kinds, in the order specs carve up their probability
KIND_ERROR = "error"
KIND_TIMEOUT = "timeout"
KIND_MALFORMED = "malformed"

#: CLI-facing preset names (see :meth:`FaultPlan.from_profile`).
FAULT_PROFILES = ("none", "transient", "gaps", "outage", "chaos")

#: the three sources the paper's pipeline depends on
SOURCE_ARCHIVE = "archive"
SOURCE_MEMPOOL = "mempool"
SOURCE_FLASHBOTS = "flashbots"


@dataclass(frozen=True)
class FaultDecision:
    """Outcome of the plan for one ``(source, op, key)`` triple."""

    #: attempts that fail before the first success (0 = healthy)
    failures: int = 0
    #: which error class the failing attempts raise
    kind: str = KIND_ERROR

    @property
    def faulty(self) -> bool:
        return self.failures > 0


#: the no-fault decision, shared to avoid allocation on the hot path
NO_FAULT = FaultDecision()


@dataclass(frozen=True)
class FaultSpec:
    """Per-source transient-fault behaviour.

    ``fault_rate`` is the share of *operation keys* that misbehave at
    all; a faulty key fails its first 1..``max_failures`` attempts and
    then recovers — the shape a retry policy is designed to absorb.
    ``timeout_share`` and ``malformed_share`` carve the faulty mass into
    error kinds; the remainder raises plain transport errors.
    """

    fault_rate: float = 0.0
    max_failures: int = 2
    timeout_share: float = 0.25
    malformed_share: float = 0.25

    def __post_init__(self) -> None:
        if not 0.0 <= self.fault_rate <= 1.0:
            raise ValueError("fault_rate must be within [0, 1]")
        if self.max_failures < 1:
            raise ValueError("max_failures must be >= 1")
        if self.timeout_share + self.malformed_share > 1.0:
            raise ValueError("error-kind shares must sum to <= 1")


def _normalise_ranges(ranges: Iterable[BlockRange]) -> \
        Tuple[BlockRange, ...]:
    """Sorted, validated ``(lo, hi)`` inclusive block ranges."""
    cleaned: List[BlockRange] = []
    for lo, hi in ranges:
        if hi < lo:
            raise ValueError(f"bad block range ({lo}, {hi})")
        cleaned.append((int(lo), int(hi)))
    return tuple(sorted(cleaned))


def _in_ranges(block_number: int,
               ranges: Tuple[BlockRange, ...]) -> bool:
    return any(lo <= block_number <= hi for lo, hi in ranges)


@dataclass(frozen=True)
class FaultPlan:
    """A complete, seeded description of a chaos scenario."""

    seed: int = 0
    archive: FaultSpec = field(default_factory=FaultSpec)
    mempool: FaultSpec = field(default_factory=FaultSpec)
    flashbots: FaultSpec = field(default_factory=FaultSpec)
    #: blocks missing from the Flashbots public dataset (inclusive)
    flashbots_gaps: Tuple[BlockRange, ...] = ()
    #: blocks during which the pending-tx observer was down
    observer_downtime: Tuple[BlockRange, ...] = ()
    #: block spans the archive node cannot serve at all (unrecoverable)
    archive_blackouts: Tuple[BlockRange, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "flashbots_gaps",
                           _normalise_ranges(self.flashbots_gaps))
        object.__setattr__(self, "observer_downtime",
                           _normalise_ranges(self.observer_downtime))
        object.__setattr__(self, "archive_blackouts",
                           _normalise_ranges(self.archive_blackouts))

    # Transient-fault decisions -------------------------------------------

    def spec_for(self, source: str) -> FaultSpec:
        specs: Dict[str, FaultSpec] = {SOURCE_ARCHIVE: self.archive,
                                       SOURCE_MEMPOOL: self.mempool,
                                       SOURCE_FLASHBOTS: self.flashbots}
        try:
            return specs[source]
        except KeyError:
            raise ValueError(f"unknown fault source {source!r}")

    def decide(self, source: str, op: str, key: str) -> FaultDecision:
        """Deterministic verdict for one operation key.

        Independent of call order and process: the verdict is a pure
        function of ``(seed, source, op, key)``.
        """
        spec = self.spec_for(source)
        if spec.fault_rate <= 0.0:
            return NO_FAULT
        rng = random.Random(f"{self.seed}:{source}:{op}:{key}")
        if rng.random() >= spec.fault_rate:
            return NO_FAULT
        failures = 1 + rng.randrange(spec.max_failures)
        roll = rng.random()
        if roll < spec.timeout_share:
            kind = KIND_TIMEOUT
        elif roll < spec.timeout_share + spec.malformed_share:
            kind = KIND_MALFORMED
        else:
            kind = KIND_ERROR
        return FaultDecision(failures=failures, kind=kind)

    # Unrecoverable-range queries -----------------------------------------

    def in_flashbots_gap(self, block_number: int) -> bool:
        return _in_ranges(block_number, self.flashbots_gaps)

    def in_observer_downtime(self, block_number: int) -> bool:
        return _in_ranges(block_number, self.observer_downtime)

    def in_archive_blackout(self, block_number: int) -> bool:
        return _in_ranges(block_number, self.archive_blackouts)

    def blackout_overlap(self, from_block: Optional[int],
                         to_block: Optional[int]) -> Optional[BlockRange]:
        """First blackout range intersecting ``[from_block, to_block]``."""
        for lo, hi in self.archive_blackouts:
            if (from_block is None or from_block <= hi) and \
                    (to_block is None or to_block >= lo):
                return (lo, hi)
        return None

    # Presets ----------------------------------------------------------------

    @classmethod
    def quiet(cls, seed: int = 0) -> "FaultPlan":
        """No faults at all (useful as the resume-after-outage plan)."""
        return cls(seed=seed)

    @classmethod
    def transient(cls, seed: int, fault_rate: float = 0.08,
                  max_failures: int = 2) -> "FaultPlan":
        """Flaky-but-recoverable sources: retries fully mask the faults."""
        spec = FaultSpec(fault_rate=fault_rate, max_failures=max_failures)
        return cls(seed=seed, archive=spec, mempool=spec, flashbots=spec)

    @classmethod
    def from_profile(cls, profile: str, seed: int,
                     first_block: int, last_block: int) -> "FaultPlan":
        """Build a named scenario over a concrete block span.

        Range-shaped faults (gaps, downtime) are carved out of the span
        deterministically from the seed, each roughly a tenth of it.
        """
        if profile not in FAULT_PROFILES:
            raise ValueError(f"unknown fault profile {profile!r}; "
                             f"expected one of {FAULT_PROFILES}")
        if profile == "none":
            return cls.quiet(seed)
        if profile == "transient":
            return cls.transient(seed)
        span = max(1, last_block - first_block + 1)
        width = max(1, span // 10)
        rng = random.Random(f"{seed}:profile:{profile}")

        def carve() -> BlockRange:
            lo = first_block + rng.randrange(max(1, span - width))
            return (lo, min(last_block, lo + width - 1))

        if profile == "gaps":
            return cls(seed=seed, flashbots_gaps=(carve(),))
        if profile == "outage":
            return cls(seed=seed, observer_downtime=(carve(),))
        # chaos: everything at once
        spec = FaultSpec(fault_rate=0.08, max_failures=2)
        return cls(seed=seed, archive=spec, mempool=spec,
                   flashbots=spec, flashbots_gaps=(carve(),),
                   observer_downtime=(carve(),))
