"""Seeded fault plans: *what* fails, *where*, and *how often*.

A :class:`FaultPlan` is the single source of truth for a chaos run.  It
is pure data plus a deterministic decision function: for every
``(source, operation, key)`` triple it answers "how many attempts fail
before one succeeds, and with which error".  The decision is derived by
seeding a private ``random.Random`` with the string
``"{seed}:{source}:{op}:{key}"`` — CPython seeds string inputs through
SHA-512, so the answer is stable across processes and hash seeds, and
independent of the order in which the pipeline happens to ask.

Unrecoverable conditions are expressed as *ranges*, matching how they
occurred in the real study: the Flashbots dataset has gap block ranges,
the pending-transaction observer had downtime windows, and an archive
node can lose a span of history (used by the crash/resume tests).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

BlockRange = Tuple[int, int]

#: injected error kinds, in the order specs carve up their probability
KIND_ERROR = "error"
KIND_TIMEOUT = "timeout"
KIND_MALFORMED = "malformed"

#: CLI-facing preset names (see :meth:`FaultPlan.from_profile`).
FAULT_PROFILES = ("none", "transient", "gaps", "outage", "chaos",
                  "reorg")

#: the three sources the paper's pipeline depends on
SOURCE_ARCHIVE = "archive"
SOURCE_MEMPOOL = "mempool"
SOURCE_FLASHBOTS = "flashbots"


@dataclass(frozen=True)
class FaultDecision:
    """Outcome of the plan for one ``(source, op, key)`` triple."""

    #: attempts that fail before the first success (0 = healthy)
    failures: int = 0
    #: which error class the failing attempts raise
    kind: str = KIND_ERROR

    @property
    def faulty(self) -> bool:
        return self.failures > 0


#: the no-fault decision, shared to avoid allocation on the hot path
NO_FAULT = FaultDecision()


@dataclass(frozen=True)
class FaultSpec:
    """Per-source transient-fault behaviour.

    ``fault_rate`` is the share of *operation keys* that misbehave at
    all; a faulty key fails its first 1..``max_failures`` attempts and
    then recovers — the shape a retry policy is designed to absorb.
    ``timeout_share`` and ``malformed_share`` carve the faulty mass into
    error kinds; the remainder raises plain transport errors.
    """

    fault_rate: float = 0.0
    max_failures: int = 2
    timeout_share: float = 0.25
    malformed_share: float = 0.25

    def __post_init__(self) -> None:
        if not 0.0 <= self.fault_rate <= 1.0:
            raise ValueError("fault_rate must be within [0, 1]")
        if self.max_failures < 1:
            raise ValueError("max_failures must be >= 1")
        if self.timeout_share + self.malformed_share > 1.0:
            raise ValueError("error-kind shares must sum to <= 1")


@dataclass(frozen=True)
class FeedFaultSpec:
    """Head-feed misbehaviour: reorgs, delivery delays, duplicates.

    Unlike :class:`FaultSpec` (request/retry shaped), these faults
    distort the *announcement stream* a chain follower consumes.  Each
    rate is the per-block probability of the corresponding event;
    ``max_reorg_depth`` bounds how many tip blocks a fork replaces and
    ``max_delay`` how many heights an announcement can arrive late.
    """

    reorg_rate: float = 0.0
    max_reorg_depth: int = 3
    delay_rate: float = 0.0
    max_delay: int = 3
    duplicate_rate: float = 0.0

    def __post_init__(self) -> None:
        for name in ("reorg_rate", "delay_rate", "duplicate_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be within [0, 1]")
        if self.max_reorg_depth < 1:
            raise ValueError("max_reorg_depth must be >= 1")
        if self.max_delay < 1:
            raise ValueError("max_delay must be >= 1")

    @property
    def quiet(self) -> bool:
        return (self.reorg_rate <= 0.0 and self.delay_rate <= 0.0
                and self.duplicate_rate <= 0.0)


@dataclass(frozen=True)
class FeedDecision:
    """Feed-fault verdict for one block height's announcement."""

    #: heights the announcement arrives late (0 = on time)
    delay: int = 0
    #: announce the same block a second time
    duplicate: bool = False
    #: depth of the fork the feed emits at this height before the
    #: canonical re-delivery (0 = no reorg)
    reorg_depth: int = 0

    @property
    def faulty(self) -> bool:
        return bool(self.delay or self.duplicate or self.reorg_depth)


#: the clean-announcement decision, shared to avoid allocation
NO_FEED_FAULT = FeedDecision()


def _normalise_ranges(ranges: Iterable[BlockRange]) -> \
        Tuple[BlockRange, ...]:
    """Sorted, validated ``(lo, hi)`` inclusive block ranges."""
    cleaned: List[BlockRange] = []
    for lo, hi in ranges:
        if hi < lo:
            raise ValueError(f"bad block range ({lo}, {hi})")
        cleaned.append((int(lo), int(hi)))
    return tuple(sorted(cleaned))


def _in_ranges(block_number: int,
               ranges: Tuple[BlockRange, ...]) -> bool:
    return any(lo <= block_number <= hi for lo, hi in ranges)


@dataclass(frozen=True)
class FaultPlan:
    """A complete, seeded description of a chaos scenario."""

    seed: int = 0
    archive: FaultSpec = field(default_factory=FaultSpec)
    mempool: FaultSpec = field(default_factory=FaultSpec)
    flashbots: FaultSpec = field(default_factory=FaultSpec)
    #: blocks missing from the Flashbots public dataset (inclusive)
    flashbots_gaps: Tuple[BlockRange, ...] = ()
    #: blocks during which the pending-tx observer was down
    observer_downtime: Tuple[BlockRange, ...] = ()
    #: block spans the archive node cannot serve at all (unrecoverable)
    archive_blackouts: Tuple[BlockRange, ...] = ()
    #: head-feed misbehaviour (reorgs, delays, duplicates)
    feed: FeedFaultSpec = field(default_factory=FeedFaultSpec)
    #: block spans during which the head feed announces nothing; the
    #: queued announcements flush when the outage ends
    feed_outages: Tuple[BlockRange, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "flashbots_gaps",
                           _normalise_ranges(self.flashbots_gaps))
        object.__setattr__(self, "observer_downtime",
                           _normalise_ranges(self.observer_downtime))
        object.__setattr__(self, "archive_blackouts",
                           _normalise_ranges(self.archive_blackouts))
        object.__setattr__(self, "feed_outages",
                           _normalise_ranges(self.feed_outages))

    # Transient-fault decisions -------------------------------------------

    def spec_for(self, source: str) -> FaultSpec:
        specs: Dict[str, FaultSpec] = {SOURCE_ARCHIVE: self.archive,
                                       SOURCE_MEMPOOL: self.mempool,
                                       SOURCE_FLASHBOTS: self.flashbots}
        try:
            return specs[source]
        except KeyError:
            raise ValueError(f"unknown fault source {source!r}")

    def decide(self, source: str, op: str, key: str) -> FaultDecision:
        """Deterministic verdict for one operation key.

        Independent of call order and process: the verdict is a pure
        function of ``(seed, source, op, key)``.
        """
        spec = self.spec_for(source)
        if spec.fault_rate <= 0.0:
            return NO_FAULT
        rng = random.Random(f"{self.seed}:{source}:{op}:{key}")
        if rng.random() >= spec.fault_rate:
            return NO_FAULT
        failures = 1 + rng.randrange(spec.max_failures)
        roll = rng.random()
        if roll < spec.timeout_share:
            kind = KIND_TIMEOUT
        elif roll < spec.timeout_share + spec.malformed_share:
            kind = KIND_MALFORMED
        else:
            kind = KIND_ERROR
        return FaultDecision(failures=failures, kind=kind)

    # Feed-fault decisions -------------------------------------------------

    def feed_decision(self, height: int) -> FeedDecision:
        """Deterministic feed verdict for one block height.

        Pure in ``(seed, height)``: the rng is seeded with
        ``"{seed}:feed:announce:{height}"`` and the draws happen in a
        fixed order (delay roll, delay value, duplicate roll, reorg
        roll, reorg depth), so the verdict never depends on which other
        heights were asked about, or in what order.
        """
        spec = self.feed
        if spec.quiet:
            return NO_FEED_FAULT
        rng = random.Random(f"{self.seed}:feed:announce:{height}")
        delay = 0
        if rng.random() < spec.delay_rate:
            delay = 1 + rng.randrange(spec.max_delay)
        duplicate = rng.random() < spec.duplicate_rate
        reorg_depth = 0
        if rng.random() < spec.reorg_rate:
            reorg_depth = 1 + rng.randrange(spec.max_reorg_depth)
        if not (delay or duplicate or reorg_depth):
            return NO_FEED_FAULT
        return FeedDecision(delay=delay, duplicate=duplicate,
                            reorg_depth=reorg_depth)

    def in_feed_outage(self, block_number: int) -> bool:
        return _in_ranges(block_number, self.feed_outages)

    # Unrecoverable-range queries -----------------------------------------

    def in_flashbots_gap(self, block_number: int) -> bool:
        return _in_ranges(block_number, self.flashbots_gaps)

    def in_observer_downtime(self, block_number: int) -> bool:
        return _in_ranges(block_number, self.observer_downtime)

    def in_archive_blackout(self, block_number: int) -> bool:
        return _in_ranges(block_number, self.archive_blackouts)

    def blackout_overlap(self, from_block: Optional[int],
                         to_block: Optional[int]) -> Optional[BlockRange]:
        """First blackout range intersecting ``[from_block, to_block]``."""
        for lo, hi in self.archive_blackouts:
            if (from_block is None or from_block <= hi) and \
                    (to_block is None or to_block >= lo):
                return (lo, hi)
        return None

    # Presets ----------------------------------------------------------------

    @classmethod
    def quiet(cls, seed: int = 0) -> "FaultPlan":
        """No faults at all (useful as the resume-after-outage plan)."""
        return cls(seed=seed)

    @classmethod
    def transient(cls, seed: int, fault_rate: float = 0.08,
                  max_failures: int = 2) -> "FaultPlan":
        """Flaky-but-recoverable sources: retries fully mask the faults."""
        spec = FaultSpec(fault_rate=fault_rate, max_failures=max_failures)
        return cls(seed=seed, archive=spec, mempool=spec, flashbots=spec)

    @classmethod
    def from_profile(cls, profile: str, seed: int,
                     first_block: int, last_block: int) -> "FaultPlan":
        """Build a named scenario over a concrete block span.

        Range-shaped faults (gaps, downtime) are carved out of the span
        deterministically from the seed, each roughly a tenth of it.
        """
        if profile not in FAULT_PROFILES:
            raise ValueError(f"unknown fault profile {profile!r}; "
                             f"expected one of {FAULT_PROFILES}")
        if profile == "none":
            return cls.quiet(seed)
        if profile == "transient":
            return cls.transient(seed)
        span = max(1, last_block - first_block + 1)
        width = max(1, span // 10)
        rng = random.Random(f"{seed}:profile:{profile}")

        def carve() -> BlockRange:
            lo = first_block + rng.randrange(max(1, span - width))
            return (lo, min(last_block, lo + width - 1))

        if profile == "gaps":
            return cls(seed=seed, flashbots_gaps=(carve(),))
        if profile == "outage":
            return cls(seed=seed, observer_downtime=(carve(),))
        if profile == "reorg":
            # Everything a chain follower must absorb: head reorgs,
            # late/duplicate announcements, and one feed-outage window.
            feed = FeedFaultSpec(reorg_rate=0.15, max_reorg_depth=3,
                                 delay_rate=0.15, max_delay=3,
                                 duplicate_rate=0.15)
            return cls(seed=seed, feed=feed, feed_outages=(carve(),))
        # chaos: everything at once
        spec = FaultSpec(fault_rate=0.08, max_failures=2)
        return cls(seed=seed, archive=spec, mempool=spec,
                   flashbots=spec, flashbots_gaps=(carve(),),
                   observer_downtime=(carve(),))
