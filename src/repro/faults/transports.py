"""Transport facades that inject the plan's faults in front of sources.

Each facade presents the same query surface as the source it wraps, so
the measurement pipeline cannot tell it apart from the real thing —
exactly like the network sat between the paper's scripts and their data
sources.  Faults come in two flavours:

* **transient** — the first N attempts of an operation key raise a
  transport error / timeout / malformed-response error, then the
  operation heals.  Retrying (see :mod:`repro.reliability`) recovers
  the identical answer, so a retried chaos run is bit-identical to a
  fault-free run.
* **unrecoverable** — block ranges the source simply does not have:
  Flashbots dataset gaps, observer downtime, archive blackouts.  These
  are never masked; the pipeline must degrade visibly (``unknown`` /
  ``unobserved`` labels, a populated :class:`DataQualityReport`).

Facades never mutate the wrapped source and never corrupt returned
data — a malformed response is modelled as a *detected* validation
failure (an exception), the way a checksum mismatch surfaces in a real
client.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple, Type, TypeVar

from repro.chain.block import Block
from repro.chain.events import EventLog
from repro.chain.node import ArchiveNode
from repro.chain.p2p import MempoolObserver
from repro.chain.receipt import Receipt
from repro.chain.transaction import Transaction
from repro.chain.types import Address, Hash32
from repro.faults.errors import (
    MalformedResponseError,
    SourceGapError,
    TransportError,
    TransportTimeout,
)
from repro.faults.plan import (
    KIND_MALFORMED,
    KIND_TIMEOUT,
    BlockRange,
    FaultPlan,
)
from repro.flashbots.api import ApiBlock, ApiTransaction, FlashbotsBlocksApi

E = TypeVar("E", bound=EventLog)

_ERROR_CLASSES = {
    KIND_TIMEOUT: TransportTimeout,
    KIND_MALFORMED: MalformedResponseError,
}


class _FaultGate:
    """Per-key attempt counter that enforces the plan's decisions."""

    def __init__(self, plan: FaultPlan, source: str) -> None:
        self.plan = plan
        self.source = source
        self._attempts: Dict[Tuple[str, str], int] = {}

    def check(self, op: str, key: str) -> None:
        """Raise the planned fault for this attempt, or pass."""
        decision = self.plan.decide(self.source, op, key)
        if not decision.faulty:
            return
        counter = (op, key)
        attempt = self._attempts.get(counter, 0) + 1
        self._attempts[counter] = attempt
        if attempt <= decision.failures:
            error_cls = _ERROR_CLASSES.get(decision.kind, TransportError)
            raise error_cls(
                f"injected {decision.kind} on {self.source}.{op}({key}) "
                f"[attempt {attempt}/{decision.failures}]")


def _merge_ranges(*groups: Iterable[BlockRange]) -> Tuple[BlockRange, ...]:
    merged: List[BlockRange] = []
    for group in groups:
        merged.extend(group)
    return tuple(sorted(set(merged)))


class FaultyArchiveNode:
    """Archive-node facade: flaky RPC plus optional history blackouts."""

    def __init__(self, inner: ArchiveNode, plan: FaultPlan) -> None:
        self.inner = inner
        self.plan = plan
        self._gate = _FaultGate(plan, "archive")

    def _check_blackout(self, from_block: Optional[int],
                        to_block: Optional[int]) -> None:
        overlap = self.plan.blackout_overlap(from_block, to_block)
        if overlap is not None:
            raise SourceGapError(
                f"archive node has no history for blocks "
                f"{overlap[0]}-{overlap[1]}")

    # Block-level queries -----------------------------------------------------

    def latest_block_number(self) -> Optional[int]:
        self._gate.check("latest_block_number", "-")
        return self.inner.latest_block_number()

    def earliest_block_number(self) -> Optional[int]:
        self._gate.check("earliest_block_number", "-")
        return self.inner.earliest_block_number()

    def get_block(self, number: int) -> Optional[Block]:
        self._gate.check("get_block", str(number))
        self._check_blackout(number, number)
        return self.inner.get_block(number)

    def iter_blocks(self, from_block: Optional[int] = None,
                    to_block: Optional[int] = None) -> List[Block]:
        self._gate.check("iter_blocks", f"{from_block}-{to_block}")
        self._check_blackout(from_block, to_block)
        return list(self.inner.iter_blocks(from_block, to_block))

    # Transaction-level queries -----------------------------------------------

    def get_transaction(self, tx_hash: Hash32) -> Optional[Transaction]:
        self._gate.check("get_transaction", tx_hash)
        return self.inner.get_transaction(tx_hash)

    def get_receipt(self, tx_hash: Hash32) -> Optional[Receipt]:
        self._gate.check("get_receipt", tx_hash)
        return self.inner.get_receipt(tx_hash)

    # Log queries ---------------------------------------------------------

    def get_logs(self, event_type: Type[E],
                 from_block: Optional[int] = None,
                 to_block: Optional[int] = None) -> List[E]:
        self._gate.check("get_logs",
                         f"{event_type.__name__}:{from_block}-{to_block}")
        self._check_blackout(from_block, to_block)
        return self.inner.get_logs(event_type, from_block, to_block)

    def iter_receipts(self, from_block: Optional[int] = None,
                      to_block: Optional[int] = None) -> List[Receipt]:
        self._gate.check("iter_receipts", f"{from_block}-{to_block}")
        self._check_blackout(from_block, to_block)
        return list(self.inner.iter_receipts(from_block, to_block))


class FaultyMempoolObserver:
    """Pending-trace facade: flaky lookups plus downtime windows.

    Downtime hides observations *after the fact*: a transaction first
    seen inside a downtime window is reported as never observed, because
    the real collector was offline when it would have arrived.
    """

    def __init__(self, inner: MempoolObserver, plan: FaultPlan) -> None:
        self.inner = inner
        self.plan = plan
        self._gate = _FaultGate(plan, "mempool")

    # Window / downtime metadata (cheap, local — never faulted) -----------

    def in_window(self, block_number: int) -> bool:
        return self.inner.in_window(block_number)

    def was_down(self, block_number: int) -> bool:
        return self.plan.in_observer_downtime(block_number) or \
            self.inner.was_down(block_number)

    @property
    def downtime_ranges(self) -> Tuple[BlockRange, ...]:
        return _merge_ranges(self.plan.observer_downtime,
                             self.inner.downtime_ranges)

    # Trace queries -------------------------------------------------------

    def _hidden(self, tx_hash: Hash32) -> bool:
        first = self.inner.first_seen(tx_hash)
        return first is not None and self.was_down(first)

    def was_observed(self, tx_hash: Hash32) -> bool:
        self._gate.check("was_observed", tx_hash)
        if self._hidden(tx_hash):
            return False
        return self.inner.was_observed(tx_hash)

    def first_seen(self, tx_hash: Hash32) -> Optional[int]:
        self._gate.check("first_seen", tx_hash)
        if self._hidden(tx_hash):
            return None
        return self.inner.first_seen(tx_hash)

    @property
    def observed_hashes(self) -> Set[Hash32]:
        return {tx_hash for tx_hash in self.inner.observed_hashes
                if not self._hidden(tx_hash)}

    def __len__(self) -> int:
        return len(self.observed_hashes)

    # Coverage accounting -------------------------------------------------

    def _hidden_count(self) -> int:
        return sum(1 for tx_hash in self.inner.observed_hashes
                   if self._hidden(tx_hash))

    @property
    def observed_count(self) -> int:
        return len(self.observed_hashes)

    @property
    def missed_count(self) -> int:
        """Inner misses plus observations hidden by injected downtime."""
        return self.inner.missed_count + self._hidden_count()

    @property
    def gossiped_total(self) -> int:
        return self.inner.gossiped_total

    def observed_coverage(self) -> float:
        total = self.gossiped_total
        return 1.0 if total == 0 else self.observed_count / total


class FaultyFlashbotsApi:
    """Flashbots blocks-API facade: flaky HTTP plus dataset gaps.

    Blocks inside a gap range are absent from every query — the facade
    answers exactly as the real API would for data it never ingested.
    ``has_block_data`` is the honest coverage signal: ``False`` means
    "cannot distinguish a non-Flashbots block from a missing row".
    """

    def __init__(self, inner: FlashbotsBlocksApi, plan: FaultPlan) -> None:
        self.inner = inner
        self.plan = plan
        self._gate = _FaultGate(plan, "flashbots")
        self._tx_blocks: Optional[Dict[Hash32, int]] = None

    def _tx_block(self, tx_hash: Hash32) -> Optional[int]:
        if self._tx_blocks is None:
            self._tx_blocks = {
                row.tx_hash: block.block_number
                for block in self.inner.all_blocks()
                for row in block.transactions}
        return self._tx_blocks.get(tx_hash)

    def _gapped_tx(self, tx_hash: Hash32) -> bool:
        block_number = self._tx_block(tx_hash)
        return block_number is not None and \
            self.plan.in_flashbots_gap(block_number)

    # Coverage ------------------------------------------------------------

    def has_block_data(self, block_number: int) -> bool:
        return not self.plan.in_flashbots_gap(block_number) and \
            self.inner.has_block_data(block_number)

    def coverage_gaps(self) -> List[BlockRange]:
        return list(_merge_ranges(self.plan.flashbots_gaps,
                                  self.inner.coverage_gaps()))

    # Public dataset queries ---------------------------------------------------

    def all_blocks(self) -> List[ApiBlock]:
        self._gate.check("all_blocks", "-")
        return [block for block in self.inner.all_blocks()
                if not self.plan.in_flashbots_gap(block.block_number)]

    def blocks_until(self, block_number: int) -> List[ApiBlock]:
        self._gate.check("blocks_until", str(block_number))
        return [block for block in self.inner.blocks_until(block_number)
                if not self.plan.in_flashbots_gap(block.block_number)]

    def get_block(self, block_number: int) -> Optional[ApiBlock]:
        self._gate.check("get_block", str(block_number))
        if self.plan.in_flashbots_gap(block_number):
            return None
        return self.inner.get_block(block_number)

    def is_flashbots_block(self, block_number: int) -> bool:
        self._gate.check("is_flashbots_block", str(block_number))
        if self.plan.in_flashbots_gap(block_number):
            return False
        return self.inner.is_flashbots_block(block_number)

    def is_flashbots_tx(self, tx_hash: Hash32) -> bool:
        self._gate.check("is_flashbots_tx", tx_hash)
        if self._gapped_tx(tx_hash):
            return False
        return self.inner.is_flashbots_tx(tx_hash)

    def tx_label(self, tx_hash: Hash32) -> Optional[ApiTransaction]:
        self._gate.check("tx_label", tx_hash)
        if self._gapped_tx(tx_hash):
            return None
        return self.inner.tx_label(tx_hash)

    def flashbots_tx_hashes(self) -> Set[Hash32]:
        self._gate.check("flashbots_tx_hashes", "-")
        return {tx_hash for tx_hash in self.inner.flashbots_tx_hashes()
                if not self._gapped_tx(tx_hash)}

    def block_count(self) -> int:
        self._gate.check("block_count", "-")
        return len(self.all_blocks())

    def bundle_count(self) -> int:
        self._gate.check("bundle_count", "-")
        return sum(block.bundle_count for block in self.all_blocks())
