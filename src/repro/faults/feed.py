"""Block-announcement feeds: the transport a chain follower consumes.

A *feed* is the ordered sequence of :class:`FeedEvent` announcements a
head-following client receives — the stand-in for the paper's live
``newHeads`` subscription plus the Flashbots blocks collector's
continuous import.  :class:`ChainFeed` replays a finished canonical
chain in order (the fault-free reference); :class:`FaultyFeed` distorts
that replay according to the plan's :class:`~repro.faults.plan.FeedFaultSpec`:

* **delays** push an announcement later in the stream (out-of-order
  delivery relative to higher blocks announced on time);
* **duplicates** re-announce the same block object a second time;
* **reorgs** emit a synthesized fork — up to ``max_reorg_depth``
  replacement blocks with different hashes — and then re-deliver the
  canonical blocks, exactly the fork/rejoin shape an execution client
  reports around an uncle event;
* **outages** silence a block-range window; announcements scheduled
  inside it flush, still ordered, once the window ends.

The whole schedule is a pure function of ``(plan.seed, heights)``:
event generation draws only from :meth:`FaultPlan.feed_decision`, so
the same plan replays the identical event sequence in any process
(the property the feed-determinism tests pin down).

Crucially, every fault here is *survivable*: the last announcement the
feed makes for any height is always the canonical block, so a correct
follower converges to the canonical chain no matter the seed.  The
convergence gate in :mod:`repro.bench` is built on that guarantee.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from repro.chain.block import Block
from repro.chain.node import Blockchain
from repro.chain.types import Address, Hash32
from repro.faults.plan import FaultPlan

__all__ = ["FeedEvent", "ChainFeed", "FaultyFeed", "fork_block"]

#: event notes, the feed's own label for why an announcement exists
NOTE_ANNOUNCE = "announce"
NOTE_DUPLICATE = "duplicate"
NOTE_FORK = "fork"
NOTE_REDELIVER = "redeliver"


@dataclass(frozen=True)
class FeedEvent:
    """One block announcement as delivered to a follower.

    ``note`` records why the feed emitted it (clean announcement,
    duplicate, synthesized fork block, or canonical re-delivery after a
    fork); followers must not need it for correctness — it exists for
    tests and diagnostics.
    """

    index: int
    block: Block
    note: str = NOTE_ANNOUNCE

    @property
    def number(self) -> int:
        return self.block.number

    @property
    def hash(self) -> Hash32:
        return self.block.hash


class ChainFeed:
    """Fault-free feed: canonical blocks, in order, exactly once."""

    def __init__(self, chain: Blockchain,
                 from_block: Optional[int] = None,
                 to_block: Optional[int] = None) -> None:
        self.chain = chain
        self.from_block = from_block
        self.to_block = to_block

    def events(self) -> List[FeedEvent]:
        return list(iter(self))

    def __iter__(self) -> Iterator[FeedEvent]:
        index = 0
        for block in self.chain.blocks:
            if self.from_block is not None and \
                    block.number < self.from_block:
                continue
            if self.to_block is not None and block.number > self.to_block:
                break
            yield FeedEvent(index=index, block=block)
            index += 1


def fork_block(canonical: Block, parent_hash: Optional[Hash32],
               miner: Address) -> Block:
    """Synthesize a same-height fork of ``canonical``.

    The fork is a plausible competing block: the canonical transaction
    list minus its last entry (a miner that saw one fewer transaction),
    gas accounting recomputed, a different miner — which guarantees a
    different block hash — and explicit parent linkage so followers can
    validate the fork chain like any other.  Receipts are shared with
    the canonical block (sealed, read-only), so detection over a fork
    block is meaningful and later retractable.
    """
    keep = max(0, len(canonical.transactions) - 1)
    transactions = list(canonical.transactions[:keep])
    receipts = list(canonical.receipts[:keep])
    return Block(
        number=canonical.number,
        timestamp=canonical.timestamp,
        miner=miner,
        base_fee=canonical.base_fee,
        gas_limit=canonical.gas_limit,
        transactions=transactions,
        receipts=receipts,
        gas_used=sum(receipt.gas_used for receipt in receipts),
        block_reward=canonical.block_reward,
        parent_hash=parent_hash,
    )


class FaultyFeed:
    """Feed facade injecting the plan's reorg/delay/duplicate faults.

    The schedule is computed once per iteration, deterministically:
    every height draws its :class:`FeedDecision`, each resulting event
    is assigned a *slot* (the height at which it becomes visible, pushed
    past any feed-outage window), and the stream is the stable sort of
    all events by ``(slot, emission order)``.  Delayed announcements
    therefore arrive after higher on-time blocks, duplicates follow
    their originals, and a fork is always followed — in the same slot —
    by the canonical re-delivery, so the final announcement per height
    is canonical.
    """

    def __init__(self, chain: Blockchain, plan: FaultPlan,
                 from_block: Optional[int] = None,
                 to_block: Optional[int] = None) -> None:
        self.chain = chain
        self.plan = plan
        self.from_block = from_block
        self.to_block = to_block

    # Scheduling ----------------------------------------------------------

    def _slot_for(self, height: int) -> int:
        """The earliest slot at-or-after ``height`` outside any outage."""
        pushed = height
        for lo, hi in self.plan.feed_outages:
            if lo <= pushed <= hi:
                pushed = hi + 1
        return pushed

    def _fork_chain(self, anchor: int, depth: int,
                    first: int) -> List[Block]:
        """Fork blocks replacing ``anchor - depth + 1 .. anchor``."""
        depth = min(depth, anchor - first)
        if depth <= 0:
            return []
        start = anchor - depth + 1
        parent = self.chain.block_by_number(start - 1)
        parent_hash = parent.hash if parent is not None else None
        forks: List[Block] = []
        for height in range(start, anchor + 1):
            canonical = self.chain.block_by_number(height)
            assert canonical is not None
            miner = f"0x{'fe' * 18}{anchor % 256:02x}{height % 256:02x}"
            fork = fork_block(canonical, parent_hash, miner)
            forks.append(fork)
            parent_hash = fork.hash
        return forks

    def schedule(self) -> List[FeedEvent]:
        """The full, deterministic event stream for the range."""
        first, last = self._bounds()
        if first is None or last is None:
            return []
        scheduled: List[Tuple[int, int, Block, str]] = []
        seq = 0

        def emit(slot: int, block: Block, note: str) -> None:
            nonlocal seq
            scheduled.append((slot, seq, block, note))
            seq += 1

        for height in range(first, last + 1):
            block = self.chain.block_by_number(height)
            assert block is not None
            decision = self.plan.feed_decision(height)
            base_slot = self._slot_for(height)
            if decision.reorg_depth and height > first:
                forks = self._fork_chain(height, decision.reorg_depth,
                                         first)
                for fork in forks:
                    emit(base_slot, fork, NOTE_FORK)
                for redo in range(height - len(forks) + 1, height + 1):
                    canonical = self.chain.block_by_number(redo)
                    assert canonical is not None
                    emit(base_slot, canonical, NOTE_REDELIVER)
            else:
                emit(self._slot_for(height + decision.delay), block,
                     NOTE_ANNOUNCE)
                if decision.duplicate:
                    emit(self._slot_for(height + decision.delay + 1),
                         block, NOTE_DUPLICATE)
        scheduled.sort(key=lambda item: (item[0], item[1]))
        return [FeedEvent(index=index, block=block, note=note)
                for index, (_, _, block, note)
                in enumerate(scheduled)]

    def _bounds(self) -> Tuple[Optional[int], Optional[int]]:
        if not self.chain.blocks:
            return None, None
        first = self.chain.blocks[0].number
        last = self.chain.blocks[-1].number
        if self.from_block is not None:
            first = max(first, self.from_block)
        if self.to_block is not None:
            last = min(last, self.to_block)
        if first > last:
            return None, None
        return first, last

    def events(self) -> List[FeedEvent]:
        return self.schedule()

    def __iter__(self) -> Iterator[FeedEvent]:
        return iter(self.schedule())
