"""Exception taxonomy for data-source failures.

The split that matters operationally is *retryable* versus not: a
dropped connection or a garbled response is worth retrying, a block the
source permanently lacks is not.  :mod:`repro.reliability` keys its
retry decisions off the ``retryable`` flag rather than off concrete
classes, so new failure modes slot in without touching the retry layer.
"""

from __future__ import annotations


class DataSourceError(Exception):
    """Base class for transport-level failures of a measurement source."""

    #: whether a retry can plausibly succeed
    retryable = True


class TransportError(DataSourceError):
    """Transient connection failure (reset, refused, 5xx)."""


class TransportTimeout(DataSourceError):
    """The source did not answer within the request deadline."""


class MalformedResponseError(DataSourceError):
    """The response arrived truncated or failed payload validation.

    The paper's crawlers saw these as half-written JSON from the
    Flashbots API and RPC responses cut mid-stream; detection happens at
    the client, so the request is safely retryable.
    """


class SourceGapError(DataSourceError):
    """The source permanently lacks the requested data (no retry helps)."""

    retryable = False
