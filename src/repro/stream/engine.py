"""The incremental detection engine behind ``repro stream``.

:class:`StreamEngine` follows an appending chain head the way the
paper's collectors did, one announcement at a time, and is robust — by
construction, not by luck — to everything a real feed does:

* **out-of-order delivery** — blocks above ``head + 1`` wait in a
  future buffer (last announcement wins per height) and drain once the
  gap fills;
* **duplicates** — a re-announcement of a block the follower already
  holds (same height, same hash) is counted and dropped;
* **reorgs** — a different block at-or-below the head retracts every
  pending payload from the fork point up (into a retraction ledger),
  rolls the follower chain back through the
  :meth:`~repro.chain.node.Blockchain.rollback` seam, and replays;
  a fork that reaches at-or-below the confirmation watermark raises
  :class:`StreamDivergenceError`, because confirmed rows are immutable;
* **crashes** — the watermark and the per-height payload window are
  checkpointed through :class:`~repro.reliability.checkpoint.CheckpointStore`;
  a resumed run replays the feed and reuses every payload whose
  ``(height, hash)`` still matches, reproducing the uninterrupted run's
  rows bit-for-bit.

Detection itself is *not* reimplemented: every appended block runs
through the batch pipeline's own :class:`~repro.engine.runner.ChunkRunner`
as a single-block chunk, and :meth:`StreamEngine.finalize` assembles the
dataset with the batch pipeline's own merge/join/quality functions over
per-height chunks.  Convergence with ``MevInspector.run(chunk_size=1)``
over the final canonical chain is therefore structural: both paths
execute the same code over the same blocks — the stream just found out
about them the hard way.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.chain.block import Block
from repro.chain.node import ArchiveNode, Blockchain
from repro.chain.p2p import MempoolObserver
from repro.chain.types import Hash32
from repro.core.datasets import MevDataset
from repro.core.pipeline import apply_joins, finish_quality
from repro.core.profit import PriceService
from repro.engine.merge import (
    chunk_key,
    merge_flash_txs,
    merge_rows,
    sum_chunk_stats,
)
from repro.engine.runner import ChunkRunner
from repro.faults.feed import FeedEvent
from repro.flashbots.api import FlashbotsBlocksApi
from repro.reliability.checkpoint import CheckpointError, CheckpointStore
from repro.reliability.quality import DataQualityReport

__all__ = ["RetractionEntry", "StreamDivergenceError", "StreamEngine",
           "StreamReport", "StreamSubscriber"]


class StreamSubscriber:
    """Downstream observer of the engine's block-level state changes.

    The hook a serving layer (or any other consumer) attaches through
    :meth:`StreamEngine.subscribe` instead of re-running batches.  The
    engine calls these synchronously from :meth:`StreamEngine.ingest`
    / :meth:`StreamEngine.finalize`; the stream package stays blind to
    who is listening (it must never import ``repro.serve`` — the R003
    layering edge points the other way).

    Every method is a no-op here so subscribers override only what
    they consume.
    """

    def block_indexed(self, height: int, block_hash: Hash32,
                      rows: List[Dict[str, Any]]) -> None:
        """``height`` joined the follower chain with these detection
        rows (detection-time labels; joins happen at finalize)."""

    def block_retracted(self, height: int, block_hash: Hash32,
                        rows_retracted: int) -> None:
        """A reorg retracted ``height``; its rows are no longer part
        of any servable view."""

    def watermark_advanced(self, height: int) -> None:
        """The confirmation watermark moved up to ``height``."""

    def stream_finalized(self, dataset: MevDataset) -> None:
        """The engine assembled the final joined dataset."""


class StreamDivergenceError(Exception):
    """A reorg reached at-or-below the confirmation watermark.

    Rows behind the watermark have been emitted as final; a fork deep
    enough to touch them means ``confirm_depth`` was smaller than the
    chain's actual reorg depth, and the stream's output can no longer
    converge on the canonical chain.  The engine fails loudly instead
    of silently keeping stale rows.
    """


@dataclass(frozen=True)
class RetractionEntry:
    """One reorged-away block's accounting in the retraction ledger."""

    height: int
    block_hash: Hash32
    rows_retracted: int


@dataclass
class StreamReport:
    """Live counters describing what the feed did to the follower."""

    #: announcements ingested (every event, good or degenerate)
    events: int = 0
    #: blocks accepted onto the follower chain (including fork blocks
    #: that were later retracted)
    appended: int = 0
    #: re-announcements of a block already on the follower chain
    duplicates: int = 0
    #: announcements buffered because they arrived above ``head + 1``
    out_of_order: int = 0
    #: announcements below the stream window, dropped unexamined
    ignored: int = 0
    #: reorg events (each fork-in and each rejoin counts once)
    reorgs: int = 0
    #: deepest single reorg observed, in blocks
    max_reorg_depth: int = 0
    #: blocks whose pending payloads were retracted
    retracted_blocks: int = 0
    #: detection rows retracted with them
    retracted_rows: int = 0
    #: heights promoted behind the watermark
    confirmed: int = 0
    #: payloads reused from a checkpoint instead of recomputed
    payloads_reused: int = 0
    #: per-confirmation lag samples, in blocks (head height at the
    #: moment of confirmation minus the confirmed height)
    confirmation_lags: List[int] = field(default_factory=list)
    #: every retraction, in the order it happened
    ledger: List[RetractionEntry] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "events": self.events,
            "appended": self.appended,
            "duplicates": self.duplicates,
            "out_of_order": self.out_of_order,
            "ignored": self.ignored,
            "reorgs": self.reorgs,
            "max_reorg_depth": self.max_reorg_depth,
            "retracted_blocks": self.retracted_blocks,
            "retracted_rows": self.retracted_rows,
            "confirmed": self.confirmed,
            "payloads_reused": self.payloads_reused,
            "confirmation_lags": list(self.confirmation_lags),
            "retractions": [
                {"height": entry.height,
                 "block_hash": entry.block_hash,
                 "rows_retracted": entry.rows_retracted}
                for entry in self.ledger],
        }


class StreamEngine:
    """Incremental MEV detection over a block-announcement feed.

    The engine owns a private *follower* :class:`Blockchain` — its view
    of the canonical chain, grown one validated announcement at a time
    and rolled back across reorgs — plus one detection payload per
    appended height, computed by the batch pipeline's
    :class:`ChunkRunner` as the single-block chunk ``(h, h)`` the moment
    the block lands.  Heights at-or-below ``head - confirm_depth`` are
    *confirmed*: their payloads are immutable (a reorg reaching them is
    a :class:`StreamDivergenceError`) and checkpointed.
    """

    def __init__(self, prices: PriceService, first_block: int,
                 confirm_depth: int = 3,
                 flashbots_api: Optional[FlashbotsBlocksApi] = None,
                 observer: Optional[MempoolObserver] = None,
                 checkpoint: Union[CheckpointStore, str, Path,
                                   None] = None,
                 resume: bool = False) -> None:
        if confirm_depth < 0:
            raise ValueError("confirm_depth must be >= 0")
        self.prices = prices
        self.first_block = first_block
        self.confirm_depth = confirm_depth
        self.flashbots_api = flashbots_api
        self.observer = observer
        self.report = StreamReport()
        self.follower = Blockchain()
        self.node = ArchiveNode(self.follower, indexed=True)
        self._runner = ChunkRunner(node=self.node, prices=self.prices)
        #: per appended height: the block's detection payload + hash
        self._payloads: Dict[int, Dict[str, Any]] = {}
        self._hashes: Dict[int, Hash32] = {}
        #: announcements above ``head + 1``, last-wins per height
        self._future: Dict[int, Block] = {}
        self._watermark = first_block - 1
        self._subscribers: List[StreamSubscriber] = []
        self._store = self._make_store(checkpoint)
        self._resumed = False
        self._saved: Dict[int, Dict[str, Any]] = {}
        if resume and self._store is not None:
            self._saved = self._load_saved()
            self._resumed = bool(self._saved)

    # Construction helpers ------------------------------------------------

    @staticmethod
    def _make_store(checkpoint: Union[CheckpointStore, str, Path, None],
                    ) -> Optional[CheckpointStore]:
        if checkpoint is None or isinstance(checkpoint, CheckpointStore):
            return checkpoint
        return CheckpointStore(checkpoint)

    def _load_saved(self) -> Dict[int, Dict[str, Any]]:
        assert self._store is not None
        document = self._store.load()
        if document is None:
            return {}
        expected = {"stream": True, "first_block": self.first_block,
                    "confirm_depth": self.confirm_depth}
        actual = {key: document.get(key) for key in expected}
        if actual != expected:
            raise CheckpointError(
                f"checkpoint {self._store.path} was written for "
                f"{actual}, cannot resume a stream over {expected}")
        return {int(height): entry for height, entry
                in (document.get("blocks") or {}).items()}

    def _save(self) -> None:
        if self._store is None:
            return
        self._store.save({
            "stream": True,
            "first_block": self.first_block,
            "confirm_depth": self.confirm_depth,
            "watermark": self._watermark,
            "blocks": {str(height): {"hash": self._hashes[height],
                                     "payload": payload}
                       for height, payload
                       in sorted(self._payloads.items())},
        })

    # Subscribers ---------------------------------------------------------

    def subscribe(self, subscriber: StreamSubscriber) -> None:
        """Attach a :class:`StreamSubscriber` to this engine's feed."""
        self._subscribers.append(subscriber)

    # Introspection -------------------------------------------------------

    @property
    def head(self) -> Optional[int]:
        """The follower chain's current tip height."""
        return self.follower.height

    @property
    def watermark(self) -> int:
        """Highest confirmed height (``first_block - 1`` before any)."""
        return self._watermark

    # Ingestion -----------------------------------------------------------

    def ingest(self, announcement: Union[Block, FeedEvent]) -> None:
        """Fold one block announcement into the follower state."""
        block = announcement.block \
            if isinstance(announcement, FeedEvent) else announcement
        self.report.events += 1
        number = block.number
        if number < self.first_block:
            self.report.ignored += 1
            return
        head = self.follower.height
        next_height = self.first_block if head is None else head + 1
        if number > next_height:
            if number not in self._future:
                self.report.out_of_order += 1
            self._future[number] = block
            return
        if number < next_height:
            if block.hash == self._hashes.get(number):
                self.report.duplicates += 1
                return
            self._reorg(block)
        else:
            self._append(block)
        self._drain_future()
        self._advance_watermark()
        self._save()

    def _append(self, block: Block) -> None:
        self.follower.append(block)
        self.report.appended += 1
        number = block.number
        saved = self._saved.get(number)
        if saved is not None and saved.get("hash") == block.hash:
            payload = saved["payload"]
            self.report.payloads_reused += 1
        else:
            result = self._runner.run_chunk((number, number))
            payload = result.payload
            if payload is None:  # pragma: no cover - bare node never fails
                raise StreamDivergenceError(
                    f"detection failed for streamed block {number}")
        self._payloads[number] = payload
        self._hashes[number] = block.hash
        for subscriber in self._subscribers:
            subscriber.block_indexed(number, block.hash,
                                     payload["rows"])

    def _reorg(self, block: Block) -> None:
        """Replace the follower's suffix from ``block.number`` up."""
        number = block.number
        head = self.follower.height
        assert head is not None
        if number <= self._watermark:
            raise StreamDivergenceError(
                f"reorg to height {number} reaches below the "
                f"confirmation watermark {self._watermark} "
                f"(confirm_depth={self.confirm_depth} is smaller than "
                f"the chain's actual reorg depth)")
        depth = head - number + 1
        self.report.reorgs += 1
        self.report.max_reorg_depth = max(self.report.max_reorg_depth,
                                          depth)
        for height in range(number, head + 1):
            payload = self._payloads.pop(height, None)
            stale_hash = self._hashes.pop(height, "")
            rows = len(payload["rows"]) if payload is not None else 0
            self.report.retracted_blocks += 1
            self.report.retracted_rows += rows
            self.report.ledger.append(RetractionEntry(
                height=height, block_hash=stale_hash,
                rows_retracted=rows))
            for subscriber in self._subscribers:
                subscriber.block_retracted(height, stale_hash, rows)
        if number <= self.follower.blocks[0].number:
            # The fork replaces the entire streamed window: start the
            # follower over (the chain store cannot hold zero blocks
            # once started).
            self.follower = Blockchain()
            self.node = ArchiveNode(self.follower, indexed=True)
            self._runner = ChunkRunner(node=self.node,
                                       prices=self.prices)
        else:
            self.follower.rollback(number - 1)
        self._append(block)

    def _drain_future(self) -> None:
        head = self.follower.height
        while head is not None and head + 1 in self._future:
            block = self._future[head + 1]
            tip = self.follower.blocks[-1]
            if block.parent_hash is not None and \
                    block.parent_hash != tip.hash:
                # The buffered block belongs to the other side of a
                # reorg (a stale fork block, or a canonical block while
                # a fork is the current tip).  Leave it buffered: the
                # feed's re-delivery sequence reconciles the branch, and
                # either this entry drains cleanly afterwards or a
                # later announcement for its height supersedes it.
                return
            self._append(self._future.pop(head + 1))
            head = self.follower.height

    def _advance_watermark(self) -> None:
        head = self.follower.height
        if head is None:
            return
        target = head - self.confirm_depth
        advanced = self._watermark < target
        while self._watermark < target:
            self._watermark += 1
            self.report.confirmed += 1
            self.report.confirmation_lags.append(head - self._watermark)
        if advanced:
            for subscriber in self._subscribers:
                subscriber.watermark_advanced(self._watermark)

    # Completion ----------------------------------------------------------

    def run(self, feed: Any) -> MevDataset:
        """Ingest every announcement from ``feed``, then finalize."""
        for event in feed:
            self.ingest(event)
        return self.finalize()

    def finalize(self) -> MevDataset:
        """Confirm the pending window and assemble the final dataset.

        Assembly is the batch pipeline, verbatim, over per-height
        chunks: ``merge_rows`` in height order, then the shared
        :func:`~repro.core.pipeline.apply_joins` and
        :func:`~repro.core.pipeline.finish_quality` — which is why a
        converged stream's dataset is bit-identical to
        ``MevInspector.run(chunk_size=1)`` over the canonical chain.
        """
        head = self.follower.height
        if head is None:
            dataset = MevDataset()
            dataset.quality = DataQualityReport()
            for subscriber in self._subscribers:
                subscriber.stream_finalized(dataset)
            return dataset
        advanced = self._watermark < head
        while self._watermark < head:
            self._watermark += 1
            self.report.confirmed += 1
            self.report.confirmation_lags.append(head - self._watermark)
        if advanced:
            for subscriber in self._subscribers:
                subscriber.watermark_advanced(self._watermark)
        self._save()
        first = self.follower.blocks[0].number
        chunks = [(height, height) for height in range(first, head + 1)]
        state = {chunk_key(chunk): self._payloads[chunk[0]]
                 for chunk in chunks}
        quality = DataQualityReport(
            from_block=first, to_block=head, chunk_size=1,
            chunks_total=len(chunks))
        if self._resumed:
            quality.resumed = True
            quality.chunks_resumed = self.report.payloads_reused
        dataset = merge_rows(MevDataset(), chunks, state)
        apply_joins(dataset, merge_flash_txs(chunks, state), quality,
                    self.flashbots_api, self.observer)
        finish_quality(quality, chunks, state, [],
                       sum_chunk_stats(chunks, {}), self.node,
                       self.flashbots_api, self.observer)
        dataset.quality = quality
        for subscriber in self._subscribers:
            subscriber.stream_finalized(dataset)
        return dataset
