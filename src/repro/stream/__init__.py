"""``repro.stream`` — incremental, reorg-robust MEV detection.

The paper's apparatus was *live*: a continuously-importing Flashbots
blocks collector and an always-on mempool observer, following the chain
head as it grew (and occasionally shrank).  This package is that mode
of operation for the reproduction: :class:`StreamEngine` consumes block
announcements one at a time, folds the detection heuristics
incrementally, buffers an unconfirmed window behind a confirmation-depth
watermark, retracts and replays rows across reorgs, and checkpoints so
a crash-killed follower resumes bit-identically.

The engine's standing contract is **convergence**: streaming over any
faulted feed (reorgs, duplicates, out-of-order delivery, outages) must
produce rows and a quality ledger bit-identical to the batch pipeline
run over the final canonical chain — enforced by the ``stream`` stage
of ``repro bench`` (schema v5, ``stream_identical`` gate).
"""

from repro.stream.engine import (
    RetractionEntry,
    StreamDivergenceError,
    StreamEngine,
    StreamReport,
    StreamSubscriber,
)

__all__ = [
    "RetractionEntry",
    "StreamDivergenceError",
    "StreamEngine",
    "StreamReport",
    "StreamSubscriber",
]
