"""Retry with exponential backoff and seeded jitter.

Backoff delays are *simulated*: the policy computes and records the
schedule (so the :class:`DataQualityReport` can state how much waiting a
real deployment would have done) but does not sleep by default — a
deterministic reproduction has no wall clock to burn (lint rule R002).
A production deployment injects a real ``sleeper`` callable.

Jitter is drawn from a ``random.Random`` seeded with
``"retry:{seed}:{key}"``, never from ambient entropy, so the exact
backoff schedule — like everything else in a seeded run — replays
bit-for-bit.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.faults.errors import DataSourceError


class RetryExhaustedError(Exception):
    """Every attempt failed; carries the final underlying error."""

    def __init__(self, key: str, attempts: int,
                 last_error: Optional[BaseException]) -> None:
        super().__init__(
            f"operation {key!r} failed after {attempts} attempts: "
            f"{last_error!r}")
        self.key = key
        self.attempts = attempts
        self.last_error = last_error


def is_retryable(error: BaseException) -> bool:
    """Whether a retry can plausibly succeed for this failure."""
    if isinstance(error, DataSourceError):
        return error.retryable
    return False


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff: ``base_delay * multiplier**n``, jittered.

    ``jitter`` is the +/- fraction applied to each delay; the draw is
    seeded per operation key, keeping retried runs deterministic.
    """

    max_attempts: int = 4
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 5.0
    jitter: float = 0.25
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be within [0, 1]")

    def backoff_delays(self, key: str) -> List[float]:
        """The full jittered backoff schedule for one operation key.

        ``len(result) == max_attempts - 1`` — one delay between each
        pair of consecutive attempts.
        """
        rng = random.Random(f"retry:{self.seed}:{key}")
        delays: List[float] = []
        for attempt in range(self.max_attempts - 1):
            raw = min(self.max_delay,
                      self.base_delay * (self.multiplier ** attempt))
            spread = raw * self.jitter
            delays.append(raw + rng.uniform(-spread, spread))
        return delays

    def call(self, key: str, operation: Callable[[], object],
             on_retry: Optional[Callable[[BaseException, float], None]]
             = None,
             sleeper: Optional[Callable[[float], None]] = None) -> object:
        """Run ``operation`` under this policy.

        Non-retryable errors propagate immediately; retryable ones are
        re-attempted along the backoff schedule.  ``on_retry(error,
        delay)`` fires before each re-attempt (stats hooks);
        ``sleeper(delay)`` actually waits, when provided.
        """
        # The schedule is pure in (seed, key), so computing it lazily —
        # only once a first attempt has actually failed — changes no
        # delay; it just keeps the seeded-jitter setup cost off the
        # success path, which is nearly every call.
        delays: Optional[List[float]] = None
        last_error: Optional[BaseException] = None
        for attempt in range(self.max_attempts):
            try:
                return operation()
            except DataSourceError as error:
                if not is_retryable(error):
                    raise
                last_error = error
            if delays is None:
                delays = self.backoff_delays(key)
            if attempt < len(delays):
                delay = delays[attempt]
                if on_retry is not None:
                    on_retry(last_error, delay)
                if sleeper is not None:
                    sleeper(delay)
        raise RetryExhaustedError(key, self.max_attempts, last_error)
