"""``repro.reliability`` — the defenses against imperfect data sources.

Where :mod:`repro.faults` breaks the pipeline's three data sources the
way the real study's sources broke, this package makes the pipeline
survive it:

* :class:`RetryPolicy` — exponential backoff with *seeded* jitter
  (determinism rule R002: no ambient entropy), so a retried run replays
  bit-for-bit;
* :class:`CircuitBreaker` — per-source breaker with half-open probing,
  cooled down in call counts rather than wall-clock time (again R002);
* :class:`CheckpointStore` — atomic JSON checkpoints of completed
  block-range chunks, enabling ``repro run --resume`` after a crash;
* :class:`DataQualityReport` — per-source coverage, retries, breaker
  trips and gap ranges, attached to every :class:`MevDataset` so
  degraded runs are *visibly* degraded, never silently wrong;
* ``Reliable*`` source wrappers — the retry/breaker plumbing applied to
  the archive node, mempool observer and Flashbots API surfaces;
* :class:`DataSource` — the unified protocol (``name``, ``fetch(op,
  key)``, ``coverage_gaps()``) all three sources adapt to, so the armor
  above composes against one surface via :class:`ReliableSource`
  instead of three ad-hoc ones.
"""

from repro.reliability.checkpoint import CheckpointError, CheckpointStore
from repro.reliability.circuit import (
    CircuitBreaker,
    CircuitOpenError,
    STATE_CLOSED,
    STATE_HALF_OPEN,
    STATE_OPEN,
)
from repro.reliability.datasource import (
    ArchiveNodeSource,
    DataSource,
    FlashbotsApiSource,
    MempoolObserverSource,
    OpKey,
    ReliableSource,
    ResilientCaller,
    SourceStats,
    adapt,
    render_key,
)
from repro.reliability.quality import DataQualityReport, SourceQuality
from repro.reliability.retry import RetryExhaustedError, RetryPolicy
from repro.reliability.sources import (
    ReliableArchiveNode,
    ReliableFlashbotsApi,
    ReliableMempoolObserver,
    shield,
)

__all__ = [
    "ArchiveNodeSource",
    "CheckpointError",
    "CheckpointStore",
    "CircuitBreaker",
    "CircuitOpenError",
    "DataQualityReport",
    "DataSource",
    "FlashbotsApiSource",
    "MempoolObserverSource",
    "OpKey",
    "ReliableArchiveNode",
    "ReliableFlashbotsApi",
    "ReliableMempoolObserver",
    "ReliableSource",
    "ResilientCaller",
    "RetryExhaustedError",
    "RetryPolicy",
    "STATE_CLOSED",
    "STATE_HALF_OPEN",
    "STATE_OPEN",
    "SourceQuality",
    "SourceStats",
    "adapt",
    "render_key",
    "shield",
]
