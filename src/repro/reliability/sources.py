"""Typed facades applying :class:`ReliableSource` armor to the sources.

The retry/breaker/stats composition lives in one place —
:class:`~repro.reliability.datasource.ReliableSource`, wrapped around a
:class:`~repro.reliability.datasource.DataSource` adapter.  The classes
here only restore the *typed* query surface the pipeline and the
detection heuristics program against: every remote-shaped method is a
one-line ``fetch(op, key)`` delegation, while cheap local metadata
(observation windows, downtime ranges, coverage queries) forwards
directly — there is no transport to fail.

``shield`` wraps the pipeline's three sources at once.  (Its PR 2
spelling lived through a two-release deprecation shim and was removed
in 1.5.0; the R007 banned-api lint rule keeps the old name from
creeping back in.)
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple, Type, TypeVar

from repro.chain.block import Block
from repro.chain.events import EventLog
from repro.chain.receipt import Receipt
from repro.chain.transaction import Transaction
from repro.chain.types import Hash32
from repro.flashbots.api import ApiBlock, ApiTransaction
from repro.reliability.circuit import CircuitBreaker
from repro.reliability.datasource import (
    ArchiveNodeSource,
    FlashbotsApiSource,
    MempoolObserverSource,
    ReliableSource,
    ResilientCaller,
    SourceStats,
)
from repro.reliability.retry import RetryPolicy

E = TypeVar("E", bound=EventLog)

BlockRange = Tuple[int, int]

__all__ = [
    "ReliableArchiveNode",
    "ReliableFlashbotsApi",
    "ReliableMempoolObserver",
    "ResilientCaller",
    "SourceStats",
    "shield",
]


class ReliableArchiveNode:
    """Archive-node surface with retries and a circuit breaker."""

    def __init__(self, inner: object,
                 retry: Optional[RetryPolicy] = None,
                 breaker: Optional[CircuitBreaker] = None) -> None:
        self.inner = inner
        self.source = ReliableSource(ArchiveNodeSource(inner),
                                     retry, breaker)
        self.caller = self.source.caller

    # Block-level queries -----------------------------------------------------

    def latest_block_number(self) -> Optional[int]:
        return self.source.fetch("latest_block_number")

    def earliest_block_number(self) -> Optional[int]:
        return self.source.fetch("earliest_block_number")

    def get_block(self, number: int) -> Optional[Block]:
        return self.source.fetch("get_block", (number,))

    def iter_blocks(self, from_block: Optional[int] = None,
                    to_block: Optional[int] = None) -> List[Block]:
        return self.source.fetch("iter_blocks", (from_block, to_block))

    # Transaction-level queries -----------------------------------------------

    def get_transaction(self, tx_hash: Hash32) -> Optional[Transaction]:
        return self.source.fetch("get_transaction", (tx_hash,))

    def get_receipt(self, tx_hash: Hash32) -> Optional[Receipt]:
        return self.source.fetch("get_receipt", (tx_hash,))

    # Log queries ---------------------------------------------------------

    def get_logs(self, event_type: Type[E],
                 from_block: Optional[int] = None,
                 to_block: Optional[int] = None) -> List[E]:
        return self.source.fetch("get_logs",
                                 (event_type, from_block, to_block))

    def iter_receipts(self, from_block: Optional[int] = None,
                      to_block: Optional[int] = None) -> List[Receipt]:
        return self.source.fetch("iter_receipts",
                                 (from_block, to_block))


class ReliableMempoolObserver:
    """Pending-trace surface with retries and a circuit breaker."""

    def __init__(self, inner: object,
                 retry: Optional[RetryPolicy] = None,
                 breaker: Optional[CircuitBreaker] = None) -> None:
        self.inner = inner
        self.source = ReliableSource(MempoolObserverSource(inner),
                                     retry, breaker)
        self.caller = self.source.caller

    # Window / downtime metadata (local, never faulted) -------------------

    def in_window(self, block_number: int) -> bool:
        return self.inner.in_window(block_number)

    def was_down(self, block_number: int) -> bool:
        return self.inner.was_down(block_number)

    @property
    def downtime_ranges(self) -> Tuple[BlockRange, ...]:
        return tuple(self.inner.downtime_ranges)

    # Trace queries -------------------------------------------------------

    def was_observed(self, tx_hash: Hash32) -> bool:
        return self.source.fetch("was_observed", (tx_hash,))

    def first_seen(self, tx_hash: Hash32) -> Optional[int]:
        return self.source.fetch("first_seen", (tx_hash,))

    @property
    def observed_hashes(self) -> Set[Hash32]:
        return set(self.inner.observed_hashes)

    def __len__(self) -> int:
        return len(self.inner)

    # Coverage accounting -------------------------------------------------

    @property
    def observed_count(self) -> int:
        return self.inner.observed_count

    @property
    def missed_count(self) -> int:
        return self.inner.missed_count

    @property
    def gossiped_total(self) -> int:
        return self.inner.gossiped_total

    def observed_coverage(self) -> float:
        return self.inner.observed_coverage()


class ReliableFlashbotsApi:
    """Flashbots blocks-API surface with retries and a breaker."""

    def __init__(self, inner: object,
                 retry: Optional[RetryPolicy] = None,
                 breaker: Optional[CircuitBreaker] = None) -> None:
        self.inner = inner
        self.source = ReliableSource(FlashbotsApiSource(inner),
                                     retry, breaker)
        self.caller = self.source.caller

    # Coverage (local metadata) -------------------------------------------

    def has_block_data(self, block_number: int) -> bool:
        return self.inner.has_block_data(block_number)

    def coverage_gaps(self) -> List[BlockRange]:
        return list(self.source.coverage_gaps())

    # Public dataset queries ---------------------------------------------------

    def all_blocks(self) -> List[ApiBlock]:
        return list(self.source.fetch("all_blocks"))

    def blocks_until(self, block_number: int) -> List[ApiBlock]:
        return list(self.source.fetch("blocks_until", (block_number,)))

    def get_block(self, block_number: int) -> Optional[ApiBlock]:
        return self.source.fetch("get_block", (block_number,))

    def is_flashbots_block(self, block_number: int) -> bool:
        return self.source.fetch("is_flashbots_block", (block_number,))

    def is_flashbots_tx(self, tx_hash: Hash32) -> bool:
        return self.source.fetch("is_flashbots_tx", (tx_hash,))

    def tx_label(self, tx_hash: Hash32) -> Optional[ApiTransaction]:
        return self.source.fetch("tx_label", (tx_hash,))

    def flashbots_tx_hashes(self) -> Set[Hash32]:
        return set(self.source.fetch("flashbots_tx_hashes"))

    def block_count(self) -> int:
        return self.source.fetch("block_count")

    def bundle_count(self) -> int:
        return self.source.fetch("bundle_count")


def shield(node: object,
           observer: Optional[object] = None,
           flashbots_api: Optional[object] = None,
           retry: Optional[RetryPolicy] = None,
           failure_threshold: int = 5,
           cooldown_calls: int = 10,
           ) -> Tuple[ReliableArchiveNode,
                      Optional[ReliableMempoolObserver],
                      Optional[ReliableFlashbotsApi]]:
    """Wrap the pipeline's sources in retry/breaker armor.

    Each source gets its *own* breaker (one flaky source must not trip
    the others) but shares the retry policy, so one seed governs every
    backoff schedule.
    """
    retry = retry or RetryPolicy()

    def breaker(name: str) -> CircuitBreaker:
        return CircuitBreaker(name, failure_threshold=failure_threshold,
                              cooldown_calls=cooldown_calls)

    shielded_node = ReliableArchiveNode(node, retry, breaker("archive"))
    shielded_observer = None if observer is None else \
        ReliableMempoolObserver(observer, retry, breaker("mempool"))
    shielded_api = None if flashbots_api is None else \
        ReliableFlashbotsApi(flashbots_api, retry, breaker("flashbots"))
    return shielded_node, shielded_observer, shielded_api
