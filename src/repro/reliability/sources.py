"""Retry/breaker plumbing applied to the three measurement sources.

``Reliable*`` wrappers present the exact query surface of the source
they guard (real or fault-injected — the pipeline cannot tell), routing
every remote-shaped call through a :class:`ResilientCaller`: a seeded
:class:`RetryPolicy` absorbs transient faults, a per-source
:class:`CircuitBreaker` stops retry storms when a source is down hard,
and a :class:`SourceStats` ledger feeds the run's
:class:`~repro.reliability.quality.DataQualityReport`.

Cheap, local metadata (observation windows, downtime ranges, coverage
queries) is forwarded directly — there is no transport to fail.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Callable,
    List,
    Optional,
    Set,
    Tuple,
    Type,
    TypeVar,
)

from repro.chain.block import Block
from repro.chain.events import EventLog
from repro.chain.receipt import Receipt
from repro.chain.transaction import Transaction
from repro.chain.types import Hash32
from repro.faults.errors import DataSourceError
from repro.flashbots.api import ApiBlock, ApiTransaction
from repro.reliability.circuit import CircuitBreaker
from repro.reliability.retry import RetryPolicy

E = TypeVar("E", bound=EventLog)
T = TypeVar("T")

BlockRange = Tuple[int, int]


@dataclass
class SourceStats:
    """Raw resilience counters for one source."""

    requests: int = 0
    retries: int = 0
    failed_attempts: int = 0
    exhausted: int = 0
    simulated_backoff_s: float = 0.0


class ResilientCaller:
    """Retry + breaker + stats around one source's operations."""

    def __init__(self, source: str,
                 retry: Optional[RetryPolicy] = None,
                 breaker: Optional[CircuitBreaker] = None) -> None:
        self.source = source
        self.retry = retry or RetryPolicy()
        self.breaker = breaker or CircuitBreaker(source)
        self.stats = SourceStats()

    def call(self, op: str, key: str, operation: Callable[[], T]) -> T:
        """Run one operation under retry + breaker discipline."""
        self.stats.requests += 1

        def attempt() -> T:
            self.breaker.before_call()
            try:
                result = operation()
            except DataSourceError:
                self.breaker.record_failure()
                self.stats.failed_attempts += 1
                raise
            self.breaker.record_success()
            return result

        def on_retry(error: BaseException, delay: float) -> None:
            self.stats.retries += 1
            self.stats.simulated_backoff_s += delay

        try:
            return attempt() if self.retry.max_attempts == 1 else \
                self.retry.call(f"{self.source}.{op}:{key}", attempt,
                                on_retry=on_retry)
        except Exception:
            self.stats.exhausted += 1
            raise

    @property
    def breaker_trips(self) -> int:
        return self.breaker.trip_count


class ReliableArchiveNode:
    """Archive-node surface with retries and a circuit breaker."""

    def __init__(self, inner: object,
                 retry: Optional[RetryPolicy] = None,
                 breaker: Optional[CircuitBreaker] = None) -> None:
        self.inner = inner
        self.caller = ResilientCaller("archive", retry, breaker)

    def _call(self, op: str, key: str,
              operation: Callable[[], T]) -> T:
        return self.caller.call(op, key, operation)

    # Block-level queries -----------------------------------------------------

    def latest_block_number(self) -> Optional[int]:
        return self._call("latest_block_number", "-",
                          self.inner.latest_block_number)

    def earliest_block_number(self) -> Optional[int]:
        return self._call("earliest_block_number", "-",
                          self.inner.earliest_block_number)

    def get_block(self, number: int) -> Optional[Block]:
        return self._call("get_block", str(number),
                          lambda: self.inner.get_block(number))

    def iter_blocks(self, from_block: Optional[int] = None,
                    to_block: Optional[int] = None) -> List[Block]:
        return self._call(
            "iter_blocks", f"{from_block}-{to_block}",
            lambda: list(self.inner.iter_blocks(from_block, to_block)))

    # Transaction-level queries -----------------------------------------------

    def get_transaction(self, tx_hash: Hash32) -> Optional[Transaction]:
        return self._call("get_transaction", tx_hash,
                          lambda: self.inner.get_transaction(tx_hash))

    def get_receipt(self, tx_hash: Hash32) -> Optional[Receipt]:
        return self._call("get_receipt", tx_hash,
                          lambda: self.inner.get_receipt(tx_hash))

    # Log queries ---------------------------------------------------------

    def get_logs(self, event_type: Type[E],
                 from_block: Optional[int] = None,
                 to_block: Optional[int] = None) -> List[E]:
        return self._call(
            "get_logs",
            f"{event_type.__name__}:{from_block}-{to_block}",
            lambda: list(self.inner.get_logs(event_type, from_block,
                                             to_block)))

    def iter_receipts(self, from_block: Optional[int] = None,
                      to_block: Optional[int] = None) -> List[Receipt]:
        return self._call(
            "iter_receipts", f"{from_block}-{to_block}",
            lambda: list(self.inner.iter_receipts(from_block, to_block)))


class ReliableMempoolObserver:
    """Pending-trace surface with retries and a circuit breaker."""

    def __init__(self, inner: object,
                 retry: Optional[RetryPolicy] = None,
                 breaker: Optional[CircuitBreaker] = None) -> None:
        self.inner = inner
        self.caller = ResilientCaller("mempool", retry, breaker)

    # Window / downtime metadata (local, never faulted) -------------------

    def in_window(self, block_number: int) -> bool:
        return self.inner.in_window(block_number)

    def was_down(self, block_number: int) -> bool:
        return self.inner.was_down(block_number)

    @property
    def downtime_ranges(self) -> Tuple[BlockRange, ...]:
        return tuple(self.inner.downtime_ranges)

    # Trace queries -------------------------------------------------------

    def was_observed(self, tx_hash: Hash32) -> bool:
        return self.caller.call(
            "was_observed", tx_hash,
            lambda: self.inner.was_observed(tx_hash))

    def first_seen(self, tx_hash: Hash32) -> Optional[int]:
        return self.caller.call(
            "first_seen", tx_hash,
            lambda: self.inner.first_seen(tx_hash))

    @property
    def observed_hashes(self) -> Set[Hash32]:
        return set(self.inner.observed_hashes)

    def __len__(self) -> int:
        return len(self.inner)

    # Coverage accounting -------------------------------------------------

    @property
    def observed_count(self) -> int:
        return self.inner.observed_count

    @property
    def missed_count(self) -> int:
        return self.inner.missed_count

    @property
    def gossiped_total(self) -> int:
        return self.inner.gossiped_total

    def observed_coverage(self) -> float:
        return self.inner.observed_coverage()


class ReliableFlashbotsApi:
    """Flashbots blocks-API surface with retries and a breaker."""

    def __init__(self, inner: object,
                 retry: Optional[RetryPolicy] = None,
                 breaker: Optional[CircuitBreaker] = None) -> None:
        self.inner = inner
        self.caller = ResilientCaller("flashbots", retry, breaker)

    # Coverage (local metadata) -------------------------------------------

    def has_block_data(self, block_number: int) -> bool:
        return self.inner.has_block_data(block_number)

    def coverage_gaps(self) -> List[BlockRange]:
        return list(self.inner.coverage_gaps())

    # Public dataset queries ---------------------------------------------------

    def all_blocks(self) -> List[ApiBlock]:
        return self.caller.call("all_blocks", "-",
                                lambda: list(self.inner.all_blocks()))

    def blocks_until(self, block_number: int) -> List[ApiBlock]:
        return self.caller.call(
            "blocks_until", str(block_number),
            lambda: list(self.inner.blocks_until(block_number)))

    def get_block(self, block_number: int) -> Optional[ApiBlock]:
        return self.caller.call(
            "get_block", str(block_number),
            lambda: self.inner.get_block(block_number))

    def is_flashbots_block(self, block_number: int) -> bool:
        return self.caller.call(
            "is_flashbots_block", str(block_number),
            lambda: self.inner.is_flashbots_block(block_number))

    def is_flashbots_tx(self, tx_hash: Hash32) -> bool:
        return self.caller.call(
            "is_flashbots_tx", tx_hash,
            lambda: self.inner.is_flashbots_tx(tx_hash))

    def tx_label(self, tx_hash: Hash32) -> Optional[ApiTransaction]:
        return self.caller.call(
            "tx_label", tx_hash,
            lambda: self.inner.tx_label(tx_hash))

    def flashbots_tx_hashes(self) -> Set[Hash32]:
        return self.caller.call(
            "flashbots_tx_hashes", "-",
            lambda: set(self.inner.flashbots_tx_hashes()))

    def block_count(self) -> int:
        return self.caller.call("block_count", "-",
                                self.inner.block_count)

    def bundle_count(self) -> int:
        return self.caller.call("bundle_count", "-",
                                self.inner.bundle_count)


def shield_sources(node: object,
                   observer: Optional[object] = None,
                   flashbots_api: Optional[object] = None,
                   retry: Optional[RetryPolicy] = None,
                   failure_threshold: int = 5,
                   cooldown_calls: int = 10,
                   ) -> Tuple[ReliableArchiveNode,
                              Optional[ReliableMempoolObserver],
                              Optional[ReliableFlashbotsApi]]:
    """Wrap the pipeline's sources in retry/breaker armor.

    Each source gets its *own* breaker (one flaky source must not trip
    the others) but shares the retry policy, so one seed governs every
    backoff schedule.
    """
    retry = retry or RetryPolicy()

    def breaker(name: str) -> CircuitBreaker:
        return CircuitBreaker(name, failure_threshold=failure_threshold,
                              cooldown_calls=cooldown_calls)

    shielded_node = ReliableArchiveNode(node, retry, breaker("archive"))
    shielded_observer = None if observer is None else \
        ReliableMempoolObserver(observer, retry, breaker("mempool"))
    shielded_api = None if flashbots_api is None else \
        ReliableFlashbotsApi(flashbots_api, retry, breaker("flashbots"))
    return shielded_node, shielded_observer, shielded_api
