"""Data-quality accounting: what the run actually covered.

The paper's totals are only as good as its sources — a lossy pending-tx
trace, a Flashbots dataset with holes, an archive node that can fail.
Follow-up remeasurement work shows unaccounted source failures silently
bias MEV totals, so every pipeline run attaches a
:class:`DataQualityReport`: per-source coverage, retry/breaker activity,
and the exact block ranges where degradation forced ``unknown`` /
``unobserved`` labels.  A degraded run is *visibly* degraded.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional, Tuple

BlockRange = Tuple[int, int]


def _ranges_from(raw: Any) -> Tuple[BlockRange, ...]:
    return tuple((int(lo), int(hi)) for lo, hi in (raw or ()))


@dataclass
class SourceQuality:
    """One source's health over a run."""

    source: str
    #: logical operations issued (a retried operation counts once)
    requests: int = 0
    #: extra attempts spent recovering from transient failures
    retries: int = 0
    #: individual failed attempts (retried or not)
    failed_attempts: int = 0
    #: operations that failed even after the full retry schedule
    exhausted: int = 0
    breaker_trips: int = 0
    #: backoff the retry schedule *would* have slept in a deployment
    simulated_backoff_s: float = 0.0
    #: share of the requested data this source actually served
    coverage: float = 1.0
    #: block spans the source could not serve (inclusive)
    gap_ranges: Tuple[BlockRange, ...] = ()

    @property
    def healthy(self) -> bool:
        """No structural failures.  Coverage below 100% alone does not
        count: the paper's pending-tx trace is inherently lossy, and
        that lossiness is modeled, reported, and accounted for."""
        return (self.exhausted == 0 and self.breaker_trips == 0
                and not self.gap_ranges)

    def to_dict(self) -> Dict[str, Any]:
        row = asdict(self)
        row["gap_ranges"] = [list(r) for r in self.gap_ranges]
        return row

    @classmethod
    def from_dict(cls, row: Dict[str, Any]) -> "SourceQuality":
        data = dict(row)
        data["gap_ranges"] = _ranges_from(data.get("gap_ranges"))
        return cls(**data)


@dataclass
class DataQualityReport:
    """Coverage and resilience accounting for one pipeline run."""

    from_block: Optional[int] = None
    to_block: Optional[int] = None
    chunk_size: int = 0
    chunks_total: int = 0
    chunks_completed: int = 0
    #: chunks recovered from a checkpoint rather than recomputed
    chunks_resumed: int = 0
    #: block spans whose chunks failed permanently (archive unusable)
    failed_ranges: Tuple[BlockRange, ...] = ()
    resumed: bool = False
    sources: Dict[str, SourceQuality] = field(default_factory=dict)
    #: records whose Flashbots label is ``unknown`` (dataset gap)
    unknown_flashbots_records: int = 0
    #: records whose privacy label is ``unobserved`` (collector down)
    unobserved_records: int = 0

    def source(self, name: str) -> SourceQuality:
        """The named source's entry, created on first use."""
        if name not in self.sources:
            self.sources[name] = SourceQuality(source=name)
        return self.sources[name]

    @property
    def chunks_failed(self) -> int:
        return self.chunks_total - self.chunks_completed

    @property
    def total_retries(self) -> int:
        return sum(s.retries for s in self.sources.values())

    @property
    def total_breaker_trips(self) -> int:
        return sum(s.breaker_trips for s in self.sources.values())

    @property
    def healthy(self) -> bool:
        """True iff nothing degraded: full coverage, no visible labels."""
        return (self.chunks_failed == 0
                and self.unknown_flashbots_records == 0
                and self.unobserved_records == 0
                and all(s.healthy for s in self.sources.values()))

    # Serialization -------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "from_block": self.from_block,
            "to_block": self.to_block,
            "chunk_size": self.chunk_size,
            "chunks_total": self.chunks_total,
            "chunks_completed": self.chunks_completed,
            "chunks_resumed": self.chunks_resumed,
            "failed_ranges": [list(r) for r in self.failed_ranges],
            "resumed": self.resumed,
            "sources": {name: quality.to_dict()
                        for name, quality in sorted(self.sources.items())},
            "unknown_flashbots_records": self.unknown_flashbots_records,
            "unobserved_records": self.unobserved_records,
        }

    @classmethod
    def from_dict(cls, row: Dict[str, Any]) -> "DataQualityReport":
        data = dict(row)
        data["failed_ranges"] = _ranges_from(data.get("failed_ranges"))
        data["sources"] = {
            name: SourceQuality.from_dict(entry)
            for name, entry in (data.get("sources") or {}).items()}
        return cls(**data)

    # Rendering -----------------------------------------------------------

    def summary_lines(self) -> List[str]:
        """Human-readable lines for the text report."""
        span = (f"blocks {self.from_block}–{self.to_block}"
                if self.from_block is not None else "empty range")
        status = "healthy" if self.healthy else "DEGRADED"
        lines = [
            f"run {span}: {status}"
            + (" (resumed from checkpoint)" if self.resumed else ""),
            f"chunks: {self.chunks_completed}/{self.chunks_total} "
            f"completed ({self.chunks_resumed} from checkpoint, "
            f"{self.chunks_failed} failed)",
        ]
        for name, quality in sorted(self.sources.items()):
            gap_text = ", ".join(f"{lo}-{hi}"
                                 for lo, hi in quality.gap_ranges) or "none"
            lines.append(
                f"{name}: coverage {100.0 * quality.coverage:.1f}%, "
                f"{quality.requests} requests, {quality.retries} retries, "
                f"{quality.exhausted} exhausted, "
                f"{quality.breaker_trips} breaker trips, gaps: {gap_text}")
        lines.append(
            f"degraded labels: {self.unknown_flashbots_records} "
            f"flashbots-unknown, {self.unobserved_records} unobserved")
        return lines
