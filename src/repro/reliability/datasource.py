"""The unified ``DataSource`` protocol and its generic armor.

PR 2 grew three parallel wrapper families — ``Faulty*`` facades,
``Reliable*`` wrappers — each hand-written against a different query
surface (archive node, mempool observer, Flashbots API).  This module
extracts the one surface they all actually need:

* ``name`` — the ledger/breaker identity of the source;
* ``fetch(op, key)`` — run one named operation; ``key`` is the tuple of
  operation arguments, rendered to a stable string for retry seeding
  and stats;
* ``coverage_gaps()`` — the block ranges the source is known not to
  serve.

:class:`ArchiveNodeSource`, :class:`MempoolObserverSource`, and
:class:`FlashbotsApiSource` adapt the three concrete surfaces to the
protocol; :class:`ReliableSource` is then *one* retry/breaker/stats
wrapper instead of three, and the typed ``Reliable*`` classes in
:mod:`repro.reliability.sources` become thin facades over it.  New
executors (``repro.engine``) and future sources compose against this
protocol rather than growing a fourth ad-hoc wrapper family.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Iterator,
    Optional,
    Protocol,
    Tuple,
    TypeVar,
    runtime_checkable,
)

from repro.faults.errors import DataSourceError
from repro.reliability.circuit import CircuitBreaker
from repro.reliability.retry import RetryPolicy

T = TypeVar("T")

BlockRange = Tuple[int, int]

#: an operation's positional arguments, e.g. ``(123,)`` for a block
#: number or ``(SwapEvent, 10, 20)`` for a typed log query
OpKey = Tuple[Any, ...]


@runtime_checkable
class DataSource(Protocol):
    """One measurement data source behind a uniform query surface."""

    name: str

    def fetch(self, op: str, key: OpKey = ()) -> Any: ...

    def coverage_gaps(self) -> Tuple[BlockRange, ...]: ...


def render_key(key: OpKey) -> str:
    """A stable string form of an operation key.

    Matches the historical per-wrapper key formats (retry jitter is
    seeded per rendered key, so the format is part of the replay
    contract): no arguments → ``"-"``; a leading type renders as
    ``"Name:rest"`` (event-log queries); everything else joins with
    ``"-"`` (``(10, 20)`` → ``"10-20"``).
    """
    if not key:
        return "-"
    parts = [part.__name__ if isinstance(part, type) else str(part)
             for part in key]
    if isinstance(key[0], type) and len(parts) > 1:
        return f"{parts[0]}:{'-'.join(parts[1:])}"
    return "-".join(parts)


@dataclass
class SourceStats:
    """Raw resilience counters for one source."""

    requests: int = 0
    retries: int = 0
    failed_attempts: int = 0
    exhausted: int = 0
    simulated_backoff_s: float = 0.0


class ResilientCaller:
    """Retry + breaker + stats around one source's operations."""

    def __init__(self, source: str,
                 retry: Optional[RetryPolicy] = None,
                 breaker: Optional[CircuitBreaker] = None) -> None:
        self.source = source
        self.retry = retry or RetryPolicy()
        self.breaker = breaker or CircuitBreaker(source)
        self.stats = SourceStats()

    def call(self, op: str, key: str, operation: Callable[[], T]) -> T:
        """Run one operation under retry + breaker discipline."""
        self.stats.requests += 1

        def attempt() -> T:
            self.breaker.before_call()
            try:
                result = operation()
            except DataSourceError:
                self.breaker.record_failure()
                self.stats.failed_attempts += 1
                raise
            self.breaker.record_success()
            return result

        def on_retry(error: BaseException, delay: float) -> None:
            self.stats.retries += 1
            self.stats.simulated_backoff_s += delay

        try:
            return attempt() if self.retry.max_attempts == 1 else \
                self.retry.call(f"{self.source}.{op}:{key}", attempt,
                                on_retry=on_retry)
        except Exception:
            self.stats.exhausted += 1
            raise

    @property
    def breaker_trips(self) -> int:
        return self.breaker.trip_count


# -- adapters ----------------------------------------------------------------


class _AdapterBase:
    """Shared ``fetch`` plumbing: dispatch by name, materialize lazies.

    Generators are drained eagerly so a transport fault surfaces inside
    the guarded call, not later at iteration time in the caller.
    """

    name = "source"

    def __init__(self, inner: Any) -> None:
        self.inner = inner

    def fetch(self, op: str, key: OpKey = ()) -> Any:
        result = getattr(self.inner, op)(*key)
        if isinstance(result, Iterator):
            return list(result)
        return result

    def coverage_gaps(self) -> Tuple[BlockRange, ...]:
        return ()


class ArchiveNodeSource(_AdapterBase):
    """The go-ethereum-archive stand-in behind the protocol.

    Archive gaps are not knowable a priori (a blackout announces itself
    by failing), so ``coverage_gaps`` is empty; the pipeline derives
    archive gaps from failed chunk ranges instead.
    """

    name = "archive"


class MempoolObserverSource(_AdapterBase):
    """The pending-transaction trace behind the protocol."""

    name = "mempool"

    def coverage_gaps(self) -> Tuple[BlockRange, ...]:
        return tuple(self.inner.downtime_ranges)


class FlashbotsApiSource(_AdapterBase):
    """The public Flashbots blocks dataset behind the protocol."""

    name = "flashbots"

    def coverage_gaps(self) -> Tuple[BlockRange, ...]:
        return tuple(self.inner.coverage_gaps())


def adapt(inner: Any, name: Optional[str] = None) -> DataSource:
    """Wrap a raw source object in the adapter matching its surface."""
    if name is None:
        name = ("archive" if hasattr(inner, "iter_blocks") else
                "mempool" if hasattr(inner, "was_observed") else
                "flashbots" if hasattr(inner, "is_flashbots_block") else
                None)
    adapters = {"archive": ArchiveNodeSource,
                "mempool": MempoolObserverSource,
                "flashbots": FlashbotsApiSource}
    if name not in adapters:
        raise TypeError(
            f"cannot adapt {type(inner).__name__!r} to a DataSource; "
            f"expected an archive-node, mempool-observer, or "
            f"flashbots-api surface")
    return adapters[name](inner)


class ReliableSource:
    """Retry/breaker/stats armor over *any* :class:`DataSource`.

    This is the single composition point that used to be triplicated
    across ``ReliableArchiveNode`` / ``ReliableMempoolObserver`` /
    ``ReliableFlashbotsApi``; those classes are now typed facades over
    one of these.
    """

    def __init__(self, source: DataSource,
                 retry: Optional[RetryPolicy] = None,
                 breaker: Optional[CircuitBreaker] = None) -> None:
        self.source = source
        self.name = source.name
        self.caller = ResilientCaller(source.name, retry, breaker)

    def fetch(self, op: str, key: OpKey = ()) -> Any:
        return self.caller.call(op, render_key(key),
                                lambda: self.source.fetch(op, key))

    def coverage_gaps(self) -> Tuple[BlockRange, ...]:
        return self.source.coverage_gaps()
