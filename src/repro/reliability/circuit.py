"""Per-source circuit breaker with half-open probing.

A breaker stops a persistently failing source from dragging the whole
run through its full retry schedule on every single operation.  After
``failure_threshold`` consecutive failed attempts it *opens*: calls fail
fast with :class:`CircuitOpenError`.  Cooldown is measured in rejected
*calls* rather than wall-clock seconds — the reproduction has no clock
to burn (lint rule R002), and call counts replay deterministically.
After ``cooldown_calls`` rejections the breaker goes *half-open* and
lets exactly one probe through; a successful probe closes the breaker,
a failed one re-opens it for another cooldown.
"""

from __future__ import annotations

from repro.faults.errors import DataSourceError

STATE_CLOSED = "closed"
STATE_OPEN = "open"
STATE_HALF_OPEN = "half_open"


class CircuitOpenError(DataSourceError):
    """Fail-fast rejection while the breaker is open.

    Not retryable *within* the current operation: the breaker exists to
    stop retry storms, so the retry layer must give up immediately and
    let the pipeline degrade (skip the chunk, report the gap).
    """

    retryable = False


class CircuitBreaker:
    """Consecutive-failure breaker, cooled down in call counts."""

    def __init__(self, source: str, failure_threshold: int = 5,
                 cooldown_calls: int = 10) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if cooldown_calls < 1:
            raise ValueError("cooldown_calls must be >= 1")
        self.source = source
        self.failure_threshold = failure_threshold
        self.cooldown_calls = cooldown_calls
        self.state = STATE_CLOSED
        self.consecutive_failures = 0
        self.trip_count = 0
        self._rejections_left = 0

    def before_call(self) -> None:
        """Gate one attempt: raises :class:`CircuitOpenError` when open."""
        if self.state != STATE_OPEN:
            return
        if self._rejections_left <= 0:
            self.state = STATE_HALF_OPEN
            return  # let this probe attempt through
        self._rejections_left -= 1
        raise CircuitOpenError(
            f"circuit for source {self.source!r} is open "
            f"({self._rejections_left + 1} rejections before probe)")

    def record_success(self) -> None:
        self.consecutive_failures = 0
        if self.state == STATE_HALF_OPEN:
            self.state = STATE_CLOSED

    def record_failure(self) -> None:
        if self.state == STATE_HALF_OPEN:
            self._trip()
            return
        self.consecutive_failures += 1
        if self.consecutive_failures >= self.failure_threshold:
            self._trip()

    def _trip(self) -> None:
        self.state = STATE_OPEN
        self.trip_count += 1
        self.consecutive_failures = 0
        self._rejections_left = self.cooldown_calls
