"""Atomic JSON checkpoints for resumable pipeline runs.

The store is deliberately dumb: it persists one JSON document and
replaces it atomically (write to a sibling temp file, ``os.replace``),
so a crash mid-save leaves the previous checkpoint intact rather than a
torn file.  What goes *into* the document is the pipeline's business;
the store only enforces a version header so stale formats fail loudly
instead of resuming garbage.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, Optional, Union

#: Bumped whenever the checkpoint document layout changes.
CHECKPOINT_VERSION = 1


class CheckpointError(Exception):
    """The checkpoint file is unreadable, stale, or inconsistent."""


def _fsync_dir(directory: Path) -> None:
    """Flush a directory's entry table to disk (rename durability).

    Platforms without ``O_DIRECTORY`` (or filesystems that refuse to
    open directories) skip silently — the rename is still atomic, just
    not crash-durable, which matches the store's pre-hardening
    behaviour there.
    """
    flags = os.O_RDONLY | getattr(os, "O_DIRECTORY", 0)
    try:
        fd = os.open(directory, flags)
    except OSError:
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


class CheckpointStore:
    """One checkpoint document at a fixed path, written atomically."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)

    def exists(self) -> bool:
        return self.path.exists()

    def save(self, payload: Dict[str, Any]) -> None:
        """Atomically replace the checkpoint with ``payload``.

        Durability needs *two* fsyncs: one on the temp file (so the
        bytes are on disk before the rename makes them visible) and one
        on the parent directory (so the rename itself — a directory
        entry update — survives a crash; without it ``os.replace`` can
        be lost and the path still name the old document, or nothing).
        """
        document = dict(payload)
        document["version"] = CHECKPOINT_VERSION
        tmp_path = self.path.with_name(self.path.name + ".tmp")
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(tmp_path, "w", encoding="utf-8") as stream:
            json.dump(document, stream, sort_keys=True)
            stream.flush()
            os.fsync(stream.fileno())
        os.replace(tmp_path, self.path)
        _fsync_dir(self.path.parent)

    def load(self) -> Optional[Dict[str, Any]]:
        """The stored document, or ``None`` when no checkpoint exists."""
        if not self.path.exists():
            return None
        try:
            with open(self.path, "r", encoding="utf-8") as stream:
                document = json.load(stream)
        except (OSError, ValueError) as error:
            raise CheckpointError(
                f"unreadable checkpoint {self.path}: {error}") from error
        if not isinstance(document, dict):
            raise CheckpointError(
                f"checkpoint {self.path} is not a JSON object")
        version = document.get("version")
        if version != CHECKPOINT_VERSION:
            raise CheckpointError(
                f"checkpoint {self.path} has version {version!r}; "
                f"this build writes version {CHECKPOINT_VERSION}")
        return document

    def clear(self) -> None:
        """Delete the checkpoint (start-from-scratch runs)."""
        try:
            self.path.unlink()
        except FileNotFoundError:
            return
