"""Ethereum-like chain substrate: state, transactions, blocks, mempool."""

from repro.chain.block import Block, BlockBuilder
from repro.chain.events import (
    AuctionBidEvent,
    AuctionSettledEvent,
    AuctionStartedEvent,
    BorrowEvent,
    EventLog,
    FlashLoanEvent,
    LiquidationEvent,
    OracleUpdateEvent,
    SwapEvent,
    SyncEvent,
    TransferEvent,
)
from repro.chain.execution import (
    ExecutionContext,
    ExecutionOutcome,
    Revert,
    execute_transaction,
)
from repro.chain.fork import MAINNET_FORKS, ForkSchedule
from repro.chain.gas import BLOCK_GAS_LIMIT, BLOCK_REWARD, next_base_fee
from repro.chain.index import ChainIndex, Posting
from repro.chain.intents import (
    CoinbaseTipIntent,
    FailingIntent,
    SequenceIntent,
    TokenTransferIntent,
)
from repro.chain.mempool import Mempool
from repro.chain.node import ArchiveNode, Blockchain
from repro.chain.p2p import GossipNetwork, MempoolObserver
from repro.chain.receipt import Receipt
from repro.chain.segments import (
    SEGMENT_FORMAT,
    SegmentIntegrityError,
    SegmentInfo,
    SegmentReader,
    SegmentStore,
    SpillingBlockchain,
)
from repro.chain.state import InsufficientBalance, WorldState
from repro.chain.transaction import EIP1559, LEGACY, Transaction, TxIntent
from repro.chain.types import (
    ETHER,
    GWEI,
    WEI,
    ZERO_ADDRESS,
    Address,
    Hash32,
    address_from_label,
    ether,
    gwei,
    hash_of,
    is_address,
    is_hash32,
    to_eth,
    to_gwei,
)

__all__ = [
    "AuctionBidEvent", "AuctionSettledEvent", "AuctionStartedEvent",
    "Address", "ArchiveNode", "Block", "BlockBuilder", "Blockchain",
    "BorrowEvent", "BLOCK_GAS_LIMIT", "BLOCK_REWARD", "ChainIndex", "CoinbaseTipIntent",
    "EIP1559", "ETHER", "EventLog", "ExecutionContext", "ExecutionOutcome",
    "FailingIntent", "FlashLoanEvent", "ForkSchedule", "GossipNetwork",
    "GWEI", "Hash32", "InsufficientBalance", "LEGACY", "LiquidationEvent",
    "MAINNET_FORKS", "Mempool", "MempoolObserver", "OracleUpdateEvent", "Posting",
    "Receipt", "Revert", "SEGMENT_FORMAT", "SegmentIntegrityError",
    "SegmentInfo", "SegmentReader", "SegmentStore", "SequenceIntent",
    "SpillingBlockchain", "SwapEvent", "SyncEvent",
    "TokenTransferIntent",
    "Transaction", "TransferEvent", "TxIntent", "WEI", "WorldState",
    "ZERO_ADDRESS", "address_from_label", "ether", "execute_transaction",
    "gwei", "hash_of", "is_address", "is_hash32", "next_base_fee",
    "to_eth", "to_gwei",
]
