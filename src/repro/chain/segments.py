"""Spillable block storage: fingerprinted per-epoch segment files.

A :class:`SegmentStore` persists completed epochs of a chain as pickled
segment files under one directory, indexed by a JSON manifest that
records each segment's block range and content fingerprint.
:class:`SpillingBlockchain` is a drop-in :class:`~repro.chain.node.Blockchain`
that spills every completed epoch to the store and evicts old epochs
from memory, so a simulation's peak block residency is O(epoch) rather
than O(world); :class:`SegmentReader` serves ranged reads over the
spilled portion through a bounded LRU of resident segments (manifest
bisect, never a directory scan).

Integrity follows the PR-4 world-cache rule: *any* anomaly — missing or
truncated file, fingerprint mismatch, unknown manifest format — raises
:class:`SegmentIntegrityError` with a clear message, and callers respond
by re-simulating from scratch (`SegmentStore.open_or_create`), never by
trusting a partially readable store.
"""

from __future__ import annotations

import bisect
import hashlib
import json
import os
import pickle
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.chain.block import Block
from repro.chain.node import Blockchain
from repro.chain.types import Hash32
from repro.markers import fast_path

#: On-disk layout version.  Bumped whenever the manifest schema or the
#: segment pickle layout changes; stores written by other versions are
#: rejected with a clear message, not a pickle error.
SEGMENT_FORMAT = 1

MANIFEST_NAME = "manifest.json"


class SegmentIntegrityError(RuntimeError):
    """A segment store is unreadable, inconsistent, or wrong-format.

    Callers must treat this as "the cache does not exist": wipe and
    re-simulate (the PR-4 rule), never trust partial contents.
    """


def _fsync_dir(directory: str) -> None:
    """Fsync a directory so a rename into it survives a crash.

    Best effort on platforms where directories cannot be opened for
    sync; the file-level fsync still ran.
    """
    try:
        fd = os.open(directory, os.O_RDONLY | getattr(os, "O_DIRECTORY", 0))
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def _write_durable(path: str, data: bytes) -> None:
    """Crash-safe write: temp file, flush+fsync, atomic rename, then
    directory fsync — readers see the old bytes or the new bytes,
    never a partial file, even across power loss (the
    :class:`~repro.reliability.checkpoint.CheckpointStore` protocol).
    """
    tmp = path + ".tmp"
    with open(tmp, "wb") as handle:
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    _fsync_dir(os.path.dirname(path) or ".")


def _materialize_hashes(blocks: Sequence[Block]) -> None:
    """Force every lazily cached hash before a block run is pickled.

    Block and transaction hashes are computed on first access and
    cached on the instance, so pickle bytes depend on *when* a run is
    serialized.  Forcing them first makes the segment file a pure
    function of content — the overlap-on and overlap-off write paths
    (and any two runs of either) produce byte-identical files.
    """
    for block in blocks:
        block.hash
        for tx in block.transactions:
            tx.hash


def _fingerprint_blocks(blocks: Sequence[Block]) -> str:
    """Content fingerprint of a block run (same scheme as the bench
    world fingerprint: number, hash, and transaction count per block)."""
    digest = hashlib.sha256()
    for block in blocks:
        digest.update(
            f"{block.number}:{block.hash}:"
            f"{len(block.transactions)};".encode())
    return digest.hexdigest()


@dataclass(frozen=True)
class SegmentInfo:
    """Manifest entry: one spilled epoch's location and identity."""

    epoch: int
    first_block: int
    last_block: int
    filename: str
    fingerprint: str
    tx_count: int


class SegmentStore:
    """Directory of fingerprinted per-epoch segment files + manifest.

    Opening an existing directory validates the manifest format and
    raises :class:`SegmentIntegrityError` on any anomaly — including a
    monolithic or version-less cache written by an older repro.  Use
    :meth:`open_or_create` for the standard anomaly-means-fresh policy.
    """

    def __init__(self, root: str) -> None:
        self.root = root
        self._segments: List[SegmentInfo] = []
        self._by_epoch: Dict[int, SegmentInfo] = {}
        #: background writer for overlapped spill I/O (None = synchronous)
        self._writer = None
        #: epochs whose segment file is still being written in the
        #: background; reads of these epochs are served from memory.
        self._in_flight: Dict[int, List[Block]] = {}
        manifest = os.path.join(root, MANIFEST_NAME)
        if not os.path.exists(manifest):
            if os.path.isdir(root) and os.listdir(root):
                raise SegmentIntegrityError(
                    f"{root} is not a segment store (no manifest); "
                    f"refusing to adopt a non-empty directory — wipe it "
                    f"or use SegmentStore.create()")
            os.makedirs(root, exist_ok=True)
            self._write_manifest()
            return
        try:
            with open(manifest, "r", encoding="utf-8") as handle:
                doc = json.load(handle)
        except (OSError, ValueError) as exc:
            raise SegmentIntegrityError(
                f"segment manifest at {manifest} is unreadable "
                f"({exc}); re-simulate from scratch")
        if not isinstance(doc, dict) or "format" not in doc:
            raise SegmentIntegrityError(
                f"cache at {root} has no format marker — it was written "
                f"by an older repro (<= 1.5.0 monolithic layout); "
                f"delete it and re-simulate")
        if doc["format"] != SEGMENT_FORMAT:
            raise SegmentIntegrityError(
                f"segment store at {root} is format {doc['format']!r}; "
                f"this repro reads format {SEGMENT_FORMAT} — delete the "
                f"store and re-simulate")
        try:
            infos = [SegmentInfo(**entry) for entry in doc["segments"]]
        except (KeyError, TypeError) as exc:
            raise SegmentIntegrityError(
                f"segment manifest at {manifest} is malformed ({exc})")
        infos.sort(key=lambda info: info.epoch)
        self._segments = infos
        self._by_epoch = {info.epoch: info for info in infos}

    @classmethod
    def create(cls, root: str) -> "SegmentStore":
        """Initialize a fresh store at ``root``, wiping any prior one."""
        os.makedirs(root, exist_ok=True)
        for name in os.listdir(root):
            if name == MANIFEST_NAME or name.endswith(".pkl") \
                    or name.endswith(".tmp"):
                os.remove(os.path.join(root, name))
        return cls(root)

    @classmethod
    def open_or_create(cls, root: str) -> "SegmentStore":
        """Open ``root``; on *any* anomaly wipe it and start fresh
        (the PR-4 cache rule: never trust a partially readable store)."""
        try:
            return cls(root)
        except SegmentIntegrityError:
            return cls.create(root)

    # Manifest ------------------------------------------------------------

    @property
    def segments(self) -> List[SegmentInfo]:
        """Manifest entries, ordered by epoch."""
        return list(self._segments)

    def segment_for_block(self, number: int) -> Optional[SegmentInfo]:
        """The segment containing ``number``, via manifest bisect."""
        if not self._segments:
            return None
        starts = [info.first_block for info in self._segments]
        index = bisect.bisect_right(starts, number) - 1
        if index < 0:
            return None
        info = self._segments[index]
        if info.first_block <= number <= info.last_block:
            return info
        return None

    def _manifest_payload(self) -> bytes:
        doc = {
            "format": SEGMENT_FORMAT,
            "segments": [
                {"epoch": info.epoch, "first_block": info.first_block,
                 "last_block": info.last_block,
                 "filename": info.filename,
                 "fingerprint": info.fingerprint,
                 "tx_count": info.tx_count}
                for info in self._segments
            ],
        }
        return json.dumps(doc, indent=2, sort_keys=True).encode("utf-8")

    def _write_manifest(self) -> None:
        _write_durable(os.path.join(self.root, MANIFEST_NAME),
                       self._manifest_payload())

    # Overlapped writes ----------------------------------------------------

    def attach_writer(self, writer) -> None:
        """Route subsequent segment writes through a
        :class:`~repro.sim.overlap.BackgroundWriter`.

        Each write then happens off the simulation thread: the segment
        file and a manifest snapshot captured at submit time are written
        durably by the worker, in submission order — so the on-disk
        manifest only ever references fully durable segment files, and
        a crash loses at most the still-queued tail.  Detach by passing
        ``None`` (pending writes must be flushed first by the caller).
        """
        self._writer = writer

    def flush(self) -> None:
        """Block until every queued segment write is durable on disk."""
        if self._writer is not None:
            self._writer.flush()

    @property
    def in_flight_epochs(self) -> List[int]:
        """Epochs queued but not yet durable (test/assertion hook)."""
        return sorted(self._in_flight)

    # Segment I/O ---------------------------------------------------------

    def write_segment(self, epoch: int,
                      blocks: Sequence[Block]) -> SegmentInfo:
        """Spill one epoch's blocks; durable file write + manifest update.

        With a writer attached (:meth:`attach_writer`) the file write
        and fsyncs happen on the background thread and this call returns
        as soon as the job is queued; the manifest recorded with the job
        is a snapshot taken now, which is correct because jobs complete
        in order — every earlier segment it references is already
        durable by the time it lands.  The pickle itself stays on the
        calling thread: it holds the GIL either way (offloading it buys
        nothing), and serializing *now* snapshots the blocks before the
        simulation mutates anything they reference — which, with the
        hashes forced first, makes the file bytes a pure function of
        block content, identical to the synchronous path.
        """
        blocks = list(blocks)
        if not blocks:
            raise ValueError("cannot write an empty segment")
        for prev, cur in zip(blocks, blocks[1:]):
            if cur.number != prev.number + 1:
                raise ValueError(
                    f"segment blocks must be contiguous: {prev.number} "
                    f"followed by {cur.number}")
        filename = f"seg-{epoch:06d}.pkl"
        path = os.path.join(self.root, filename)
        _materialize_hashes(blocks)
        info = SegmentInfo(
            epoch=epoch, first_block=blocks[0].number,
            last_block=blocks[-1].number, filename=filename,
            fingerprint=_fingerprint_blocks(blocks),
            tx_count=sum(len(b.transactions) for b in blocks))
        self._by_epoch[epoch] = info
        self._segments = sorted(self._by_epoch.values(),
                                key=lambda entry: entry.epoch)
        payload = pickle.dumps(blocks,
                               protocol=pickle.HIGHEST_PROTOCOL)
        if self._writer is None:
            _write_durable(path, payload)
            self._write_manifest()
            return info
        self._in_flight[epoch] = blocks
        manifest_path = os.path.join(self.root, MANIFEST_NAME)
        manifest_payload = self._manifest_payload()

        def job() -> None:
            _write_durable(path, payload)
            _write_durable(manifest_path, manifest_payload)
            self._in_flight.pop(epoch, None)

        # BackgroundWriter.submit hands the closure to a same-process
        # thread — it is never pickled into a worker.
        self._writer.submit(f"segment epoch {epoch}", job)  # repro-lint: disable=R103
        return info

    def load_segment(self, epoch: int) -> List[Block]:
        """Load and verify one spilled epoch.

        Epochs still queued behind the background writer are served
        straight from memory (they have no durable file yet).  For
        on-disk epochs, raises :class:`SegmentIntegrityError` on any
        anomaly: unknown epoch, missing/truncated/corrupt file, wrong
        block count, or a content fingerprint that does not match the
        manifest.
        """
        pending = self._in_flight.get(epoch)
        if pending is not None:
            return list(pending)
        info = self._by_epoch.get(epoch)
        if info is None:
            raise SegmentIntegrityError(
                f"no segment for epoch {epoch} in {self.root}")
        path = os.path.join(self.root, info.filename)
        try:
            with open(path, "rb") as handle:
                blocks = pickle.load(handle)
        except (OSError, pickle.UnpicklingError, EOFError,
                AttributeError, ImportError, IndexError) as exc:
            raise SegmentIntegrityError(
                f"segment {info.filename} is unreadable ({exc}); "
                f"re-simulate from scratch")
        expected = info.last_block - info.first_block + 1
        if not isinstance(blocks, list) or len(blocks) != expected:
            raise SegmentIntegrityError(
                f"segment {info.filename} is truncated or malformed: "
                f"expected {expected} blocks")
        if _fingerprint_blocks(blocks) != info.fingerprint:
            raise SegmentIntegrityError(
                f"segment {info.filename} fingerprint mismatch; "
                f"re-simulate from scratch")
        return blocks

    # Sidecar files --------------------------------------------------------
    #
    # Epoch seals ride alongside the segments as ``seal-NNNNNN.pkl``
    # sidecar files: durable (same temp+fsync+rename protocol) but not
    # manifest-indexed — a seal is an optimization for resume, never a
    # source of truth, so a missing or stale sidecar only costs a
    # re-simulation.

    def write_sidecar(self, name: str, obj: object) -> str:
        """Durably write a pickled sidecar (seal spool); the write and
        fsyncs are overlapped when a writer is attached, the pickle is
        taken now (same snapshot discipline as :meth:`write_segment`)."""
        path = os.path.join(self.root, name)
        payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
        if self._writer is None:
            _write_durable(path, payload)
            return path
        # Same-process thread queue; the lambda is never pickled.
        self._writer.submit(f"sidecar {name}",  # repro-lint: disable=R103
                            lambda: _write_durable(path, payload))
        return path

    def load_sidecar(self, name: str) -> object:
        """Load a sidecar written by :meth:`write_sidecar`.

        Callers must :meth:`flush` first if a writer is attached.
        Raises :class:`SegmentIntegrityError` on any anomaly.
        """
        path = os.path.join(self.root, name)
        try:
            with open(path, "rb") as handle:
                return pickle.load(handle)
        except (OSError, pickle.UnpicklingError, EOFError,
                AttributeError, ImportError, IndexError) as exc:
            raise SegmentIntegrityError(
                f"sidecar {name} is unreadable ({exc}); "
                f"re-simulate from scratch")


class SegmentReader:
    """Ranged reads over a store's spilled blocks.

    The default path keeps at most ``max_resident`` segments in memory
    (LRU) and resolves ranges by bisecting the manifest.  The reference
    path (``bounded=False``) simply materializes segments without ever
    evicting — the in-memory behaviour the bounded path must match
    element for element.
    """

    def __init__(self, store: SegmentStore, max_resident: int = 2,
                 bounded: bool = True) -> None:
        if max_resident <= 0:
            raise ValueError("max_resident must be positive")
        self.store = store
        self.max_resident = max_resident
        #: when False, loaded segments are never evicted — the unbounded
        #: in-memory reference the LRU fast path is checked against.
        self.bounded = bounded
        self._resident: "OrderedDict[int, List[Block]]" = OrderedDict()

    @property
    def resident_epochs(self) -> List[int]:
        """Epochs currently held in memory (test/assertion hook)."""
        return list(self._resident)

    def _load(self, epoch: int) -> List[Block]:
        blocks = self._resident.get(epoch)
        if blocks is not None:
            self._resident.move_to_end(epoch)
            return blocks
        blocks = self.store.load_segment(epoch)
        self._resident[epoch] = blocks
        if self.bounded:
            while len(self._resident) > self.max_resident:
                self._resident.popitem(last=False)
        return blocks

    def block(self, number: int) -> Optional[Block]:
        info = self.store.segment_for_block(number)
        if info is None:
            return None
        return self._load(info.epoch)[number - info.first_block]

    @fast_path(reference="_iter_range_unbounded", toggle="bounded")
    def iter_range(self, from_block: Optional[int] = None,
                   to_block: Optional[int] = None) -> Iterator[Block]:
        """Yield spilled blocks in ``[from_block, to_block]`` in order.

        Bisects the manifest to the first overlapping segment and loads
        only overlapping segments (through the LRU), so a narrow range
        touches O(range / epoch) segments regardless of store size.
        """
        if not self.bounded:
            yield from self._iter_range_unbounded(from_block, to_block)
            return
        infos = self.store.segments
        if not infos:
            return
        low = from_block if from_block is not None \
            else infos[0].first_block
        high = to_block if to_block is not None \
            else infos[-1].last_block
        if low > high:
            return
        starts = [info.first_block for info in infos]
        start = max(0, bisect.bisect_right(starts, low) - 1)
        for info in infos[start:]:
            if info.first_block > high:
                break
            if info.last_block < low:
                continue
            blocks = self._load(info.epoch)
            first = max(low, info.first_block) - info.first_block
            last = min(high, info.last_block) - info.first_block
            yield from blocks[first:last + 1]

    def _iter_range_unbounded(self, from_block: Optional[int],
                              to_block: Optional[int],
                              ) -> Iterator[Block]:
        """Reference path: linear manifest walk, no eviction — every
        touched segment stays resident, as an in-memory chain would."""
        for info in self.store.segments:
            if to_block is not None and info.first_block > to_block:
                break
            if from_block is not None and info.last_block < from_block:
                continue
            for block in self._load(info.epoch):
                if from_block is not None \
                        and block.number < from_block:
                    continue
                if to_block is not None and block.number > to_block:
                    break
                yield block


class SpillingBlockchain(Blockchain):
    """A :class:`Blockchain` that spills completed epochs to disk.

    Appends behave exactly like the in-memory chain (same linkage
    validation, same ``height``), but whenever a block completes an
    epoch the epoch is written to the segment store and every resident
    epoch older than ``max_resident_epochs`` is evicted — peak block
    residency is bounded by ``(max_resident_epochs + 1) * epoch_blocks``
    (retained tail plus the in-progress epoch).  Reads below the
    resident window route through a :class:`SegmentReader`.
    """

    #: marker consulted by :class:`~repro.chain.node.ArchiveNode` to
    #: route ranged reads through the segment reader.
    spilled = True

    def __init__(self, store: SegmentStore, epoch_blocks: int,
                 first_block: int = 1, max_resident_epochs: int = 2,
                 bounded: bool = True) -> None:
        if epoch_blocks <= 0:
            raise ValueError("epoch_blocks must be positive")
        if max_resident_epochs <= 0:
            raise ValueError("max_resident_epochs must be positive")
        super().__init__()
        self.store = store
        self.epoch_blocks = epoch_blocks
        self.first_block = first_block
        self.max_resident_epochs = max_resident_epochs
        self.reader = SegmentReader(store,
                                    max_resident=max_resident_epochs,
                                    bounded=bounded)

    def flush(self) -> None:
        """Drain any overlapped spill writes to durable storage."""
        self.store.flush()

    @property
    def index(self):
        """Spillable chains have no in-memory :class:`ChainIndex`: its
        position/postings tiers assume the whole block list is resident.
        Ranged reads route through the segment reader instead."""
        raise RuntimeError(
            "a spilled chain has no in-memory index; query through "
            "ArchiveNode (segment-backed reads) instead")

    @property
    def earliest_number(self) -> Optional[int]:
        """First block the chain has ever stored (spilled or resident)."""
        if self._segments_list():
            return self._segments_list()[0].first_block
        if self.blocks:
            return self.blocks[0].number
        return None

    def _segments_list(self) -> List[SegmentInfo]:
        return self.store.segments

    def append(self, block: Block) -> None:
        super().append(block)
        if block.number % self.epoch_blocks != 0:
            return
        epoch = (block.number - 1) // self.epoch_blocks
        first = block.number - self.epoch_blocks + 1
        start = self.blocks[0].number
        # A restored world may begin mid-epoch; spill whatever portion
        # of the completed epoch this chain actually holds.
        lo = max(first, start)
        self.store.write_segment(
            epoch, self.blocks[lo - start:block.number - start + 1])
        cut = (epoch - self.max_resident_epochs + 1) * self.epoch_blocks
        keep_from = cut + 1
        offset = keep_from - start
        if offset <= 0:
            return
        for evicted in self.blocks[:offset]:
            for tx in evicted.transactions:
                self._tx_index.pop(tx.hash, None)
        del self.blocks[:offset]

    def rollback(self, to_height: int):
        """Reorgs deeper than the resident window cannot be represented
        once blocks have spilled; the stream engine's confirm-depth
        watermark keeps real reorgs far shallower than an epoch."""
        if self.blocks and to_height < self.blocks[0].number \
                and to_height >= 0:
            raise ValueError(
                f"cannot roll back to {to_height}: below the resident "
                f"window (starts at {self.blocks[0].number})")
        return super().rollback(to_height)

    def block_by_number(self, number: int) -> Optional[Block]:
        block = super().block_by_number(number)
        if block is not None:
            return block
        return self.reader.block(number)

    def locate_transaction(self, tx_hash: Hash32,
                           ) -> Optional[Tuple[Block, int]]:
        """Resident-first; falls back to scanning spilled segments
        (newest first, through the reader's LRU).  The fallback is
        O(world) worst case — acceptable for the ground-truth scoring
        paths that use it, never on the per-block hot path."""
        located = super().locate_transaction(tx_hash)
        if located is not None:
            return located
        for info in reversed(self._segments_list()):
            if self.blocks and info.first_block >= self.blocks[0].number:
                continue
            for tx_index_block in self.reader.iter_range(
                    info.first_block, info.last_block):
                for position, tx in enumerate(
                        tx_index_block.transactions):
                    if tx.hash == tx_hash:
                        return tx_index_block, position
        return None

    def iter_range(self, from_block: Optional[int] = None,
                   to_block: Optional[int] = None) -> Iterator[Block]:
        """All blocks in ``[from_block, to_block]``: spilled portion via
        the segment reader, then the resident tail."""
        resident_start = self.blocks[0].number if self.blocks else None
        if resident_start is None or \
                (from_block is None or from_block < resident_start):
            spill_hi = resident_start - 1 \
                if resident_start is not None else to_block
            if to_block is not None and \
                    (spill_hi is None or to_block < spill_hi):
                spill_hi = to_block
            yield from self.reader.iter_range(from_block, spill_hi)
        if resident_start is None:
            return
        low = resident_start if from_block is None \
            else max(from_block, resident_start)
        high = self.blocks[-1].number if to_block is None \
            else min(to_block, self.blocks[-1].number)
        if low > high:
            return
        yield from self.blocks[low - resident_start:
                               high - resident_start + 1]
