"""Transaction execution: context, outcomes, and revert semantics.

The block builder creates one :class:`ExecutionContext` per transaction and
hands it to the transaction's intent.  The context exposes world state, the
contract registry, the price oracle view, and sinks for event logs and
coinbase payments.  Raising :class:`Revert` anywhere inside an intent rolls
back all state changes made by that transaction (the miner still collects
gas, as on mainnet).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.chain.events import EventLog
from repro.chain.state import InsufficientBalance, WorldState
from repro.chain.transaction import Transaction
from repro.chain.types import Address


class Revert(Exception):
    """EVM-style revert: undo the transaction's state changes."""

    def __init__(self, reason: str = "") -> None:
        super().__init__(reason or "execution reverted")
        self.reason = reason


@dataclass
class ExecutionOutcome:
    """Result of running one transaction's intent."""

    success: bool
    gas_used: int
    logs: List[EventLog] = field(default_factory=list)
    error: Optional[str] = None
    coinbase_transfer: int = 0
    return_data: Any = None


class ExecutionContext:
    """Per-transaction execution environment handed to intents."""

    def __init__(self, state: WorldState, tx: Transaction,
                 block_number: int, coinbase: Address,
                 contracts: Optional[Dict[Address, Any]] = None) -> None:
        self.state = state
        self.tx = tx
        self.block_number = block_number
        self.coinbase = coinbase
        self.contracts: Dict[Address, Any] = contracts or {}
        self.logs: List[EventLog] = []
        self.coinbase_transfer = 0

    # Log and payment sinks --------------------------------------------------

    def emit(self, log: EventLog) -> None:
        """Record an event log (stamped with coordinates at inclusion)."""
        self.logs.append(log)

    def pay_coinbase(self, amount: int) -> None:
        """Direct payment from the tx sender to the block's miner.

        This is the mechanism Flashbots searchers use to tip miners; the
        paper's profit model counts these transfers as MEV-extraction cost.
        """
        if amount < 0:
            raise ValueError("coinbase payment cannot be negative")
        self.state.transfer_eth(self.tx.sender, self.coinbase, amount)
        self.coinbase_transfer += amount

    def contract(self, address: Address) -> Any:
        """Look up a deployed contract object; revert if absent."""
        try:
            return self.contracts[address]
        except KeyError:
            raise Revert(f"no contract at {address}")


def execute_transaction(state: WorldState, tx: Transaction,
                        block_number: int, coinbase: Address,
                        contracts: Optional[Dict[Address, Any]] = None,
                        ) -> ExecutionOutcome:
    """Run a transaction against ``state`` with full revert semantics.

    The caller (block builder) is responsible for fee accounting; this
    function only runs value transfer plus the intent.
    """
    snapshot = state.snapshot()
    ctx = ExecutionContext(state, tx, block_number, coinbase, contracts)
    try:
        if tx.value:
            state.transfer_eth(tx.sender, tx.to or tx.sender, tx.value)
        if tx.intent is not None:
            tx.intent.execute(ctx)
            gas_used = min(tx.intent.gas_estimate(), tx.gas_limit)
        else:
            gas_used = 21_000
        return ExecutionOutcome(success=True, gas_used=gas_used,
                                logs=ctx.logs,
                                coinbase_transfer=ctx.coinbase_transfer)
    except (Revert, InsufficientBalance) as exc:
        state.revert_to(snapshot)
        reason = exc.reason if isinstance(exc, Revert) else str(exc)
        gas_used = tx.gas_limit  # failed txs burn their gas limit
        return ExecutionOutcome(success=False, gas_used=gas_used,
                                logs=[], error=reason)
