"""Primitive chain types: addresses, hashes, and denominations.

Everything that touches money in this codebase is an ``int`` denominated in
wei, mirroring how Ethereum itself represents value.  Floating point is only
used at the analysis layer, never inside the simulated EVM state.
"""

from __future__ import annotations

import hashlib
from typing import Iterable

# Denominations ---------------------------------------------------------------

WEI = 1
GWEI = 10**9
ETHER = 10**18


def ether(amount: float) -> int:
    """Convert a human-readable ETH amount to wei.

    Convenience for tests and scenario configuration; the simulation core only
    passes integers around.

    >>> ether(1.5)
    1500000000000000000
    """
    return int(round(amount * ETHER))


def gwei(amount: float) -> int:
    """Convert a human-readable gwei amount to wei."""
    return int(round(amount * GWEI))


def to_eth(amount_wei: int) -> float:
    """Convert wei to a float ETH value (analysis layer only)."""
    return amount_wei / ETHER


def to_gwei(amount_wei: int) -> float:
    """Convert wei to a float gwei value (analysis layer only)."""
    return amount_wei / GWEI


# Addresses and hashes --------------------------------------------------------

Address = str
Hash32 = str

ZERO_ADDRESS: Address = "0x" + "00" * 20


def address_from_label(label: str) -> Address:
    """Derive a deterministic, unique-looking address from a string label.

    The simulator has no key pairs; identities are labels.  Hashing the label
    gives stable 20-byte addresses so datasets serialize like real Ethereum
    data and set/dict semantics match mainnet analyses.
    """
    digest = hashlib.sha256(("addr:" + label).encode("utf-8")).hexdigest()
    return "0x" + digest[:40]


def hash_of(parts: Iterable[object]) -> Hash32:
    """Deterministic 32-byte hash over a sequence of printable parts.

    The digest input is ``repr(part) + "|"`` concatenated — built as a
    single joined string so one C-level update call replaces two per
    part (same byte stream, same digest, measurably cheaper on the
    block-building hot path).
    """
    payload = "|".join(map(repr, parts)) + "|"
    return "0x" + hashlib.sha256(payload.encode("utf-8")).hexdigest()


def is_address(value: object) -> bool:
    """Return True if ``value`` looks like a simulator address."""
    if not isinstance(value, str) or not value.startswith("0x"):
        return False
    body = value[2:]
    if len(body) != 40:
        return False
    try:
        int(body, 16)
    except ValueError:
        return False
    return True


def is_hash32(value: object) -> bool:
    """Return True if ``value`` looks like a 32-byte hash string."""
    if not isinstance(value, str) or not value.startswith("0x"):
        return False
    body = value[2:]
    if len(body) != 64:
        return False
    try:
        int(body, 16)
    except ValueError:
        return False
    return True
