"""World state: ETH balances, token ledgers, nonces — with journaling.

Reverts (failed intents, unpaid flash loans) must roll back *all* state
mutations made inside a transaction, exactly like the EVM.  Every mutation
goes through a method here that records an undo entry in a journal; a
snapshot is just a journal length, and reverting replays undos back to it.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.chain.types import Address


class InsufficientBalance(Exception):
    """Raised when a transfer or debit exceeds the holder's balance."""


class WorldState:
    """Mutable account/token state with snapshot-revert support."""

    def __init__(self) -> None:
        self._eth: Dict[Address, int] = {}
        self._tokens: Dict[str, Dict[Address, int]] = {}
        self._nonces: Dict[Address, int] = {}
        self._journal: List[Callable[[], None]] = []

    # ETH ----------------------------------------------------------------

    def eth_balance(self, addr: Address) -> int:
        return self._eth.get(addr, 0)

    def set_eth_balance(self, addr: Address, amount: int) -> None:
        if amount < 0:
            raise ValueError("balance cannot be negative")
        previous = self._eth.get(addr, 0)
        self._eth[addr] = amount
        self._journal.append(lambda: self._eth.__setitem__(addr, previous))

    def credit_eth(self, addr: Address, amount: int) -> None:
        if amount < 0:
            raise ValueError("credit amount cannot be negative")
        self.set_eth_balance(addr, self.eth_balance(addr) + amount)

    def debit_eth(self, addr: Address, amount: int) -> None:
        if amount < 0:
            raise ValueError("debit amount cannot be negative")
        balance = self.eth_balance(addr)
        if balance < amount:
            raise InsufficientBalance(
                f"{addr} holds {balance} wei, cannot debit {amount}")
        self.set_eth_balance(addr, balance - amount)

    def transfer_eth(self, sender: Address, recipient: Address,
                     amount: int) -> None:
        self.debit_eth(sender, amount)
        self.credit_eth(recipient, amount)

    # Tokens ---------------------------------------------------------------

    def token_balance(self, token: str, addr: Address) -> int:
        return self._tokens.get(token, {}).get(addr, 0)

    def _set_token_balance(self, token: str, addr: Address,
                           amount: int) -> None:
        if amount < 0:
            raise ValueError("token balance cannot be negative")
        ledger = self._tokens.setdefault(token, {})
        previous = ledger.get(addr, 0)
        ledger[addr] = amount
        self._journal.append(lambda: ledger.__setitem__(addr, previous))

    def mint_token(self, token: str, addr: Address, amount: int) -> None:
        if amount < 0:
            raise ValueError("mint amount cannot be negative")
        self._set_token_balance(token, addr,
                                self.token_balance(token, addr) + amount)

    def burn_token(self, token: str, addr: Address, amount: int) -> None:
        balance = self.token_balance(token, addr)
        if balance < amount:
            raise InsufficientBalance(
                f"{addr} holds {balance} {token}, cannot burn {amount}")
        self._set_token_balance(token, addr, balance - amount)

    def transfer_token(self, token: str, sender: Address,
                       recipient: Address, amount: int) -> None:
        if amount < 0:
            raise ValueError("transfer amount cannot be negative")
        self.burn_token(token, sender, amount)
        self.mint_token(token, recipient, amount)

    def token_supply(self, token: str) -> int:
        """Total of all balances of ``token`` (conservation checks)."""
        return sum(self._tokens.get(token, {}).values())

    # Nonces ---------------------------------------------------------------

    def nonce(self, addr: Address) -> int:
        return self._nonces.get(addr, 0)

    def bump_nonce(self, addr: Address) -> int:
        """Increment and return the previous nonce (the one just consumed)."""
        previous = self._nonces.get(addr, 0)
        self._nonces[addr] = previous + 1
        self._journal.append(
            lambda: self._nonces.__setitem__(addr, previous))
        return previous

    # Journaling -----------------------------------------------------------

    def record_undo(self, undo: Callable[[], None]) -> None:
        """Register external bookkeeping to roll back on revert.

        Contracts that keep state outside the ledgers (e.g. a lending
        pool's loan book) must register undo callbacks here so transaction
        and bundle rollbacks restore them too.
        """
        self._journal.append(undo)

    def snapshot(self) -> int:
        """Capture a revert point; cheap (journal length)."""
        return len(self._journal)

    def revert_to(self, snapshot_id: int) -> None:
        """Undo every mutation made after ``snapshot_id`` was captured."""
        if snapshot_id < 0 or snapshot_id > len(self._journal):
            raise ValueError(f"invalid snapshot id: {snapshot_id}")
        while len(self._journal) > snapshot_id:
            undo = self._journal.pop()
            undo()

    def commit(self) -> None:
        """Discard undo history (end of block); snapshots become invalid."""
        self._journal.clear()
