"""World state: ETH balances, token ledgers, nonces — with journaling.

Reverts (failed intents, unpaid flash loans) must roll back *all* state
mutations made inside a transaction, exactly like the EVM.  Every mutation
goes through a method here that records an undo entry in a journal; a
snapshot is just a journal length, and reverting replays undos back to it.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple, Union

#: A journal entry is either an external undo callback or, for the hot
#: internal ledgers, a ``(mapping, key, prior_value)`` triple replayed as
#: ``mapping[key] = prior_value`` — same restore semantics as the closure
#: it replaces, without allocating a closure per mutation.
JournalEntry = Union[Callable[[], None], Tuple[dict, object, int]]

from repro.chain.types import Address


class InsufficientBalance(Exception):
    """Raised when a transfer or debit exceeds the holder's balance."""


class WorldState:
    """Mutable account/token state with snapshot-revert support."""

    def __init__(self) -> None:
        self._eth: Dict[Address, int] = {}
        self._tokens: Dict[str, Dict[Address, int]] = {}
        self._nonces: Dict[Address, int] = {}
        self._journal: List[JournalEntry] = []

    # ETH ----------------------------------------------------------------

    def eth_balance(self, addr: Address) -> int:
        return self._eth.get(addr, 0)

    def set_eth_balance(self, addr: Address, amount: int) -> None:
        if amount < 0:
            raise ValueError("balance cannot be negative")
        eth = self._eth
        self._journal.append((eth, addr, eth.get(addr, 0)))
        eth[addr] = amount

    def credit_eth(self, addr: Address, amount: int) -> None:
        if amount < 0:
            raise ValueError("credit amount cannot be negative")
        self.set_eth_balance(addr, self.eth_balance(addr) + amount)

    def debit_eth(self, addr: Address, amount: int) -> None:
        if amount < 0:
            raise ValueError("debit amount cannot be negative")
        balance = self.eth_balance(addr)
        if balance < amount:
            raise InsufficientBalance(
                f"{addr} holds {balance} wei, cannot debit {amount}")
        self.set_eth_balance(addr, balance - amount)

    def transfer_eth(self, sender: Address, recipient: Address,
                     amount: int) -> None:
        # Fused debit+credit: same checks, same two journal entries, half
        # the balance lookups (this runs for every fee/tip settlement).
        if amount < 0:
            raise ValueError("debit amount cannot be negative")
        eth = self._eth
        sender_balance = eth.get(sender, 0)
        if sender_balance < amount:
            raise InsufficientBalance(
                f"{sender} holds {sender_balance} wei, "
                f"cannot debit {amount}")
        journal = self._journal
        journal.append((eth, sender, sender_balance))
        eth[sender] = sender_balance - amount
        recipient_balance = eth.get(recipient, 0)
        journal.append((eth, recipient, recipient_balance))
        eth[recipient] = recipient_balance + amount

    # Tokens ---------------------------------------------------------------

    def token_balance(self, token: str, addr: Address) -> int:
        # Two-step lookup: the one-liner ``.get(token, {})`` allocates
        # a fresh empty dict on every call, and this is the single
        # most-called function in the simulator.
        ledger = self._tokens.get(token)
        if ledger is None:
            return 0
        return ledger.get(addr, 0)

    def token_ledger(self, token: str) -> Dict[Address, int]:
        """The live balance mapping for ``token`` (created on first use).

        The returned dict is the ledger itself and stays the same object
        for the lifetime of this state — mutations and journal undos
        write into it in place, never replace it — so hot readers (pool
        reserve lookups) may hold a reference instead of re-resolving
        ``token`` per call.  Callers must treat it as read-only; all
        writes go through the journaled mutators.
        """
        ledger = self._tokens.get(token)
        if ledger is None:
            ledger = self._tokens[token] = {}
        return ledger

    def _set_token_balance(self, token: str, addr: Address,
                           amount: int) -> None:
        if amount < 0:
            raise ValueError("token balance cannot be negative")
        tokens = self._tokens
        ledger = tokens.get(token)
        if ledger is None:  # setdefault would allocate a dict per call
            ledger = tokens[token] = {}
        self._journal.append((ledger, addr, ledger.get(addr, 0)))
        ledger[addr] = amount

    def mint_token(self, token: str, addr: Address, amount: int) -> None:
        if amount < 0:
            raise ValueError("mint amount cannot be negative")
        self._set_token_balance(token, addr,
                                self.token_balance(token, addr) + amount)

    def burn_token(self, token: str, addr: Address, amount: int) -> None:
        balance = self.token_balance(token, addr)
        if balance < amount:
            raise InsufficientBalance(
                f"{addr} holds {balance} {token}, cannot burn {amount}")
        self._set_token_balance(token, addr, balance - amount)

    def transfer_token(self, token: str, sender: Address,
                       recipient: Address, amount: int) -> None:
        # Fused burn+mint (every swap leg lands here): identical checks,
        # identical journal entries, one ledger lookup instead of four.
        if amount < 0:
            raise ValueError("transfer amount cannot be negative")
        tokens = self._tokens
        ledger = tokens.get(token)
        sender_balance = 0 if ledger is None else ledger.get(sender, 0)
        if sender_balance < amount:
            raise InsufficientBalance(
                f"{sender} holds {sender_balance} {token}, "
                f"cannot burn {amount}")
        if ledger is None:
            ledger = tokens[token] = {}
        journal = self._journal
        journal.append((ledger, sender, sender_balance))
        ledger[sender] = sender_balance - amount
        recipient_balance = ledger.get(recipient, 0)
        journal.append((ledger, recipient, recipient_balance))
        ledger[recipient] = recipient_balance + amount

    def token_supply(self, token: str) -> int:
        """Total of all balances of ``token`` (conservation checks)."""
        return sum(self._tokens.get(token, {}).values())

    # Nonces ---------------------------------------------------------------

    def nonce(self, addr: Address) -> int:
        return self._nonces.get(addr, 0)

    def bump_nonce(self, addr: Address) -> int:
        """Increment and return the previous nonce (the one just consumed)."""
        nonces = self._nonces
        previous = nonces.get(addr, 0)
        self._journal.append((nonces, addr, previous))
        nonces[addr] = previous + 1
        return previous

    # Journaling -----------------------------------------------------------

    def record_undo(self, undo: Callable[[], None]) -> None:
        """Register external bookkeeping to roll back on revert.

        Contracts that keep state outside the ledgers (e.g. a lending
        pool's loan book) must register undo callbacks here so transaction
        and bundle rollbacks restore them too.
        """
        self._journal.append(undo)

    def snapshot(self) -> int:
        """Capture a revert point; cheap (journal length)."""
        return len(self._journal)

    def revert_to(self, snapshot_id: int) -> None:
        """Undo every mutation made after ``snapshot_id`` was captured."""
        if snapshot_id < 0 or snapshot_id > len(self._journal):
            raise ValueError(f"invalid snapshot id: {snapshot_id}")
        journal = self._journal
        while len(journal) > snapshot_id:
            entry = journal.pop()
            if type(entry) is tuple:
                mapping, key, prior = entry
                mapping[key] = prior
            else:
                entry()

    def commit(self) -> None:
        """Discard undo history (end of block); snapshots become invalid."""
        self._journal.clear()
