"""Gossip network model and the pending-transaction observer.

The paper collected 125.6 M pending transactions by subscribing to
``pendingTransactions`` on its own node for five months, and Section 6.1's
private-transaction inference is a set difference between that trace and the
chain.  :class:`GossipNetwork` models public propagation with an imperfect
per-transaction observation probability (the paper assumes its node saw "the
vast majority" of gossip), and :class:`MempoolObserver` is the measurement
node: it only ever sees *publicly* gossiped transactions — submissions to
Flashbots or other private pools never reach it, by construction.

The observer also keeps honest books about its own blind spots: every
in-window transaction the gossip layer offered is accounted for as either
observed or missed, so ``observed_coverage()`` reconciles exactly, and
``downtime_ranges`` records block spans during which the collector was
offline (absence from the trace there means "not collected", not
"private" — the distinction behind the ``unobserved`` privacy label).
"""

from __future__ import annotations

import random
from itertools import islice
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.chain.transaction import Transaction
from repro.chain.types import Hash32

#: An inclusive ``(first_block, last_block)`` span.
BlockRange = Tuple[int, int]


class MempoolObserver:
    """The measurement node's pending-transaction trace.

    ``start_block``/``end_block`` bound the observation window (the paper
    observed Nov 8 2021 – Apr 9 2022); transactions gossiped outside the
    window are not recorded, mirroring the real collection.
    ``downtime_ranges`` are block spans inside the window during which the
    collector was offline: nothing gossiped there is recorded, and the
    spans are reported so inference can refuse to classify absences.
    """

    def __init__(self, start_block: int = 0,
                 end_block: Optional[int] = None,
                 downtime_ranges: Iterable[BlockRange] = ()) -> None:
        self.start_block = start_block
        self.end_block = end_block
        self.downtime_ranges: Tuple[BlockRange, ...] = tuple(
            sorted((int(lo), int(hi)) for lo, hi in downtime_ranges))
        for lo, hi in self.downtime_ranges:
            if hi < lo:
                raise ValueError(f"bad downtime range ({lo}, {hi})")
        self._first_seen: Dict[Hash32, int] = {}
        #: in-window transactions the gossip layer offered but this
        #: observer failed to see (lossy sampling or downtime)
        self._missed: Set[Hash32] = set()

    def in_window(self, block_number: int) -> bool:
        if block_number < self.start_block:
            return False
        if self.end_block is not None and block_number > self.end_block:
            return False
        return True

    def was_down(self, block_number: int) -> bool:
        """Whether the collector was offline at this block height."""
        return any(lo <= block_number <= hi
                   for lo, hi in self.downtime_ranges)

    def record(self, tx: Transaction, block_number: int) -> None:
        """Record a pending-transaction event if inside the window."""
        if not self.in_window(block_number):
            return
        if self.was_down(block_number):
            self._missed.add(tx.hash)
            return
        self._first_seen.setdefault(tx.hash, block_number)
        # A later successful observation supersedes an earlier miss.
        self._missed.discard(tx.hash)

    def record_missed(self, tx: Transaction, block_number: int) -> None:
        """Account for an in-window gossip event this node failed to see."""
        if not self.in_window(block_number):
            return
        if tx.hash not in self._first_seen:
            self._missed.add(tx.hash)

    def was_observed(self, tx_hash: Hash32) -> bool:
        return tx_hash in self._first_seen

    def first_seen(self, tx_hash: Hash32) -> Optional[int]:
        return self._first_seen.get(tx_hash)

    @property
    def observed_hashes(self) -> Set[Hash32]:
        return set(self._first_seen)

    def __len__(self) -> int:
        return len(self._first_seen)

    # Incremental trace snapshots ------------------------------------------
    #
    # ``record`` only ever *appends* to the first-seen trace (``setdefault``
    # never rewrites an entry), so the trace has a stable prefix order and
    # a plain entry count works as its version counter.  The epoch-seal
    # machinery uses that to snapshot only the entries added since the
    # last boundary instead of re-pickling the whole trace every epoch.

    def trace_length(self) -> int:
        """Version counter for the first-seen trace (append-only)."""
        return len(self._first_seen)

    def trace_slice(self, start: int) -> List[Tuple[Hash32, int]]:
        """Entries from position ``start`` onward, in first-seen order."""
        return list(islice(self._first_seen.items(), start, None))

    def swap_trace(self, trace: Dict[Hash32, int]) -> Dict[Hash32, int]:
        """Replace the first-seen trace, returning the previous one.

        The seal path lends the observer an empty trace while pickling
        the carried-object graph (the trace travels separately as
        append-only chunks), then swaps the original back.
        """
        previous = self._first_seen
        self._first_seen = trace
        return previous

    # Coverage accounting -------------------------------------------------

    @property
    def observed_count(self) -> int:
        return len(self._first_seen)

    @property
    def missed_count(self) -> int:
        """Unique in-window transactions offered but never observed."""
        return len(self._missed)

    @property
    def gossiped_total(self) -> int:
        """Unique in-window transactions the gossip layer delivered.

        Reconciles by construction: ``observed_count + missed_count``.
        """
        return len(self._first_seen) + len(self._missed)

    def observed_coverage(self) -> float:
        """Share of in-window gossip this observer actually captured."""
        total = self.gossiped_total
        return 1.0 if total == 0 else self.observed_count / total


class GossipNetwork:
    """Public transaction propagation with imperfect observation.

    ``observation_rate`` is the probability that the measurement node sees
    any given publicly gossiped transaction.  The network also feeds every
    public transaction to the shared mempool used by miners and searchers —
    miners are assumed to be well connected and never miss transactions.
    """

    def __init__(self, rng: random.Random,
                 observation_rate: float = 0.995) -> None:
        if not 0.0 <= observation_rate <= 1.0:
            raise ValueError("observation_rate must be within [0, 1]")
        self.rng = rng
        self.observation_rate = observation_rate
        self.observers: list[MempoolObserver] = []
        #: in-window delivery *events* dropped (may double-count a tx
        #: gossiped twice; per-observer sets deduplicate)
        self.missed_count = 0

    def attach_observer(self, observer: MempoolObserver) -> None:
        self.observers.append(observer)

    def broadcast(self, tx: Transaction, block_number: int) -> None:
        """Gossip a public transaction; observers may each miss it."""
        if tx.first_seen_block is None:
            tx.first_seen_block = block_number
        for observer in self.observers:
            if self.rng.random() <= self.observation_rate:
                observer.record(tx, block_number)
            elif observer.in_window(block_number):
                self.missed_count += 1
                observer.record_missed(tx, block_number)
