"""Blocks and the block builder.

The builder applies transactions against world state with mainnet-faithful
fee accounting (full gas price to the miner pre-London; base-fee burn plus
priority tip post-London) and supports *atomic sequences* — the primitive
Flashbots bundles need: either every transaction in the sequence is applied
in order, or none are.

State mutations stay journaled until :meth:`BlockBuilder.finalize`, so a
bundle can be rolled back even after its fee accounting has run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.chain.execution import execute_transaction
from repro.chain.gas import BLOCK_GAS_LIMIT, BLOCK_REWARD
from repro.chain.receipt import Receipt
from repro.chain.transaction import Transaction
from repro.chain.types import Address, Hash32, hash_of


@dataclass
class Block:
    """A mined block: header fields plus ordered transactions/receipts."""

    number: int
    timestamp: int
    miner: Address
    base_fee: int
    gas_limit: int
    transactions: List[Transaction] = field(default_factory=list)
    receipts: List[Receipt] = field(default_factory=list)
    gas_used: int = 0
    block_reward: int = BLOCK_REWARD
    #: hash of the parent block.  ``None`` means "not yet linked": the
    #: chain stamps it on append, after which it must match the tip.
    parent_hash: Optional[Hash32] = None
    _hash: Optional[Hash32] = field(default=None, repr=False,
                                    compare=False)

    @property
    def hash(self) -> Hash32:
        # Safe to memoize: a Block is only constructed at finalize time,
        # after which its header fields and transaction list are fixed.
        if self._hash is None:
            self._hash = hash_of(("block", self.number, self.miner,
                                  self.timestamp,
                                  len(self.transactions)))
        return self._hash

    @property
    def tx_hashes(self) -> List[Hash32]:
        return [tx.hash for tx in self.transactions]

    def miner_revenue(self) -> int:
        """Total wei the miner earned: reward + tips + coinbase transfers."""
        return self.block_reward + sum(r.total_miner_payment
                                       for r in self.receipts)


class BlockBuilder:
    """Applies transactions to world state and assembles a block.

    Parameters
    ----------
    burn_base_fee:
        True once the London fork is active; the base-fee portion of each
        fee is destroyed instead of paid to the miner.
    """

    def __init__(self, state, number: int, timestamp: int, coinbase: Address,
                 base_fee: int, contracts: Optional[Dict[Address, Any]] = None,
                 gas_limit: int = BLOCK_GAS_LIMIT,
                 burn_base_fee: bool = False) -> None:
        self.state = state
        self.number = number
        self.timestamp = timestamp
        self.coinbase = coinbase
        self.base_fee = base_fee if burn_base_fee else 0
        self.contracts = contracts or {}
        self.gas_limit = gas_limit
        self.burn_base_fee = burn_base_fee
        self.gas_used = 0
        self.transactions: List[Transaction] = []
        self.receipts: List[Receipt] = []
        self._log_index = 0
        self._finalized = False

    # Capacity -----------------------------------------------------------

    def gas_remaining(self) -> int:
        return self.gas_limit - self.gas_used

    def can_fit(self, tx: Transaction) -> bool:
        return tx.gas_limit <= self.gas_remaining()

    # Transaction application ---------------------------------------------

    def validate(self, tx: Transaction) -> Optional[str]:
        """Pre-inclusion validity check; returns a reason string or None."""
        if self._finalized:
            return "block already finalized"
        if not self.can_fit(tx):
            return "block gas limit exceeded"
        if tx.nonce != self.state.nonce(tx.sender):
            return (f"nonce mismatch: tx has {tx.nonce}, "
                    f"account at {self.state.nonce(tx.sender)}")
        if not tx.is_includable(self.base_fee):
            return "fee bid below base fee"
        effective = tx.effective_gas_price(self.base_fee)
        upfront = tx.value + tx.gas_limit * effective
        if self.state.eth_balance(tx.sender) < upfront:
            return "insufficient balance for upfront cost"
        return None

    def apply_transaction(self, tx: Transaction) -> Optional[Receipt]:
        """Apply one transaction; returns its receipt, or None if invalid.

        Invalid transactions (bad nonce, underfunded, over the gas limit)
        are skipped without touching state, as a real miner would drop them.
        """
        if self.validate(tx) is not None:
            return None
        return self._apply_unchecked(tx)

    def _apply_unchecked(self, tx: Transaction) -> Receipt:
        effective = tx.effective_gas_price(self.base_fee)
        tip_per_gas = tx.miner_tip_per_gas(self.base_fee)

        # Charge the full gas limit upfront (refund the unused part after),
        # so intents cannot spend the fee money mid-execution.
        self.state.debit_eth(tx.sender, tx.gas_limit * effective)
        self.state.bump_nonce(tx.sender)

        outcome = execute_transaction(self.state, tx, self.number,
                                      self.coinbase, self.contracts)
        gas_used = min(outcome.gas_used, tx.gas_limit)
        refund = (tx.gas_limit - gas_used) * effective
        if refund:
            self.state.credit_eth(tx.sender, refund)
        miner_take = gas_used * tip_per_gas
        if miner_take:
            self.state.credit_eth(self.coinbase, miner_take)
        # The base-fee portion (gas_used * base_fee) is burned: debited from
        # the sender above and credited to no one.

        tx_index = len(self.transactions)
        for log in outcome.logs:
            log.stamp(self.number, tx.hash, tx_index, self._log_index)
            self._log_index += 1

        receipt = Receipt(
            tx_hash=tx.hash,
            block_number=self.number,
            tx_index=tx_index,
            sender=tx.sender,
            to=tx.to,
            status=outcome.success,
            gas_used=gas_used,
            effective_gas_price=effective,
            miner_tip_per_gas=tip_per_gas,
            coinbase_transfer=outcome.coinbase_transfer,
            logs=outcome.logs,
            error=outcome.error,
        )
        self.transactions.append(tx)
        self.receipts.append(receipt)
        self.gas_used += gas_used
        return receipt

    def apply_atomic_sequence(self, txs: Sequence[Transaction],
                              require_success: bool = True,
                              ) -> Optional[List[Receipt]]:
        """Apply ``txs`` in order, all-or-nothing.

        If any transaction is invalid — or reverts, when ``require_success``
        is set (the Flashbots bundle rule) — every state change, fee payment
        and receipt from the sequence is rolled back and None is returned.
        """
        snapshot = self.state.snapshot()
        saved = (len(self.transactions), self.gas_used, self._log_index)
        receipts: List[Receipt] = []
        for tx in txs:
            receipt = self.apply_transaction(tx)
            if receipt is None or (require_success and not receipt.status):
                self.state.revert_to(snapshot)
                n_txs, gas_used, log_index = saved
                del self.transactions[n_txs:]
                del self.receipts[n_txs:]
                self.gas_used = gas_used
                self._log_index = log_index
                return None
            receipts.append(receipt)
        return receipts

    def simulate_sequence(self, txs: Sequence[Transaction],
                          require_success: bool = True,
                          ) -> Optional[List[Receipt]]:
        """Dry-run an atomic sequence and roll it back unconditionally.

        Returns the receipts the sequence *would* produce (None if it would
        fail) while leaving builder and state untouched.  This is how a
        MEV-geth miner scores candidate bundles before committing.
        """
        snapshot = self.state.snapshot()
        saved = (len(self.transactions), self.gas_used, self._log_index)
        receipts = self.apply_atomic_sequence(txs, require_success)
        self.state.revert_to(snapshot)
        n_txs, gas_used, log_index = saved
        del self.transactions[n_txs:]
        del self.receipts[n_txs:]
        self.gas_used = gas_used
        self._log_index = log_index
        return receipts

    # Finalization ---------------------------------------------------------

    def finalize(self) -> Block:
        """Pay the block reward, commit state, and return the block."""
        if self._finalized:
            raise RuntimeError("block already finalized")
        self.state.credit_eth(self.coinbase, BLOCK_REWARD)
        self.state.commit()
        self._finalized = True
        return Block(
            number=self.number,
            timestamp=self.timestamp,
            miner=self.coinbase,
            base_fee=self.base_fee,
            gas_limit=self.gas_limit,
            transactions=self.transactions,
            receipts=self.receipts,
            gas_used=self.gas_used,
        )
