"""Hard-fork schedule for the simulated chain.

The paper's Figure 6 explicitly rules out the Berlin and London forks as the
cause of the April-2021 gas-price collapse, so the simulation needs fork
markers at realistic positions inside the studied window.  EIP-1559 fee
mechanics (base fee, burning) activate at the London fork.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ForkSchedule:
    """Block heights at which each fork activates."""

    berlin_block: int
    london_block: int

    def is_london(self, block_number: int) -> bool:
        """True if EIP-1559 fee mechanics are active at ``block_number``."""
        return block_number >= self.london_block

    def is_berlin(self, block_number: int) -> bool:
        return block_number >= self.berlin_block


#: Mainnet fork heights, used when simulating with real block numbers.
MAINNET_FORKS = ForkSchedule(berlin_block=12_244_000,
                             london_block=12_965_000)
