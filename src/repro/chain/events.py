"""Typed event logs emitted by simulated contracts.

The measurement pipeline (``repro.core``) consumes *only* these logs plus
transaction metadata, mirroring how the paper's scripts crawl ERC-20
``Transfer`` events, DEX ``Swap`` events, lending ``Liquidation`` events and
``FlashLoan`` events from an archive node.  Substrate modules (DEX, lending)
emit them during execution; the block builder stamps them with their
inclusion coordinates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.chain.types import Address, Hash32


@dataclass
class EventLog:
    """Base class for all event logs.

    ``block_number``, ``tx_hash``, ``tx_index`` and ``log_index`` are filled
    in by the block builder when the emitting transaction is included.
    """

    address: Address  # emitting contract
    block_number: Optional[int] = field(default=None, init=False)
    tx_hash: Optional[Hash32] = field(default=None, init=False)
    tx_index: Optional[int] = field(default=None, init=False)
    log_index: Optional[int] = field(default=None, init=False)

    def stamp(self, block_number: int, tx_hash: Hash32, tx_index: int,
              log_index: int) -> None:
        """Record inclusion coordinates (called once by the block builder)."""
        self.block_number = block_number
        self.tx_hash = tx_hash
        self.tx_index = tx_index
        self.log_index = log_index


@dataclass
class TransferEvent(EventLog):
    """ERC-20 ``Transfer(from, to, value)``."""

    token: str = ""
    sender: Address = ""
    recipient: Address = ""
    amount: int = 0


@dataclass
class SwapEvent(EventLog):
    """DEX ``Swap``: ``taker`` traded ``amount_in`` of ``token_in`` for
    ``amount_out`` of ``token_out`` on the pool at ``address``.

    ``venue`` is the exchange name (e.g. ``"UniswapV2"``) as recorded by the
    venue registry — the paper's heuristics are venue-aware.
    """

    venue: str = ""
    taker: Address = ""
    recipient: Address = ""
    token_in: str = ""
    token_out: str = ""
    amount_in: int = 0
    amount_out: int = 0


@dataclass
class SyncEvent(EventLog):
    """Uniswap-V2 style ``Sync(reserve0, reserve1)`` after every swap."""

    token0: str = ""
    token1: str = ""
    reserve0: int = 0
    reserve1: int = 0


@dataclass
class LiquidationEvent(EventLog):
    """Lending-platform liquidation: ``liquidator`` repaid ``debt_repaid`` of
    ``debt_token`` on behalf of ``borrower`` and seized
    ``collateral_seized`` of ``collateral_token``."""

    platform: str = ""
    liquidator: Address = ""
    borrower: Address = ""
    debt_token: str = ""
    debt_repaid: int = 0
    collateral_token: str = ""
    collateral_seized: int = 0


@dataclass
class FlashLoanEvent(EventLog):
    """Flash-loan completion: emitted only when the loan was repaid within
    the same transaction (Wang et al.'s detection anchor)."""

    platform: str = ""
    initiator: Address = ""
    token: str = ""
    amount: int = 0
    fee: int = 0


@dataclass
class BorrowEvent(EventLog):
    """Lending-platform borrow (used for loan-book reconstruction)."""

    platform: str = ""
    borrower: Address = ""
    debt_token: str = ""
    amount: int = 0
    collateral_token: str = ""
    collateral_amount: int = 0


@dataclass
class AuctionStartedEvent(EventLog):
    """Auction-based liquidation opened (MakerDAO-style, non-atomic)."""

    platform: str = ""
    auction_id: int = 0
    borrower: Address = ""
    collateral_token: str = ""
    collateral_amount: int = 0
    debt_token: str = ""
    debt_amount: int = 0
    ends_at_block: int = 0


@dataclass
class AuctionBidEvent(EventLog):
    """A bid in an ongoing liquidation auction."""

    platform: str = ""
    auction_id: int = 0
    bidder: Address = ""
    amount: int = 0


@dataclass
class AuctionSettledEvent(EventLog):
    """Auction closed: winner repaid the debt and took the collateral.

    Deliberately *not* a ``LiquidationEvent``: the paper's heuristics
    target fixed-spread liquidations; auction settlements are multi-
    transaction, non-atomic, and outside the MEV dataset's scope.
    """

    platform: str = ""
    auction_id: int = 0
    winner: Address = ""
    paid: int = 0
    collateral_token: str = ""
    collateral_amount: int = 0


@dataclass
class OracleUpdateEvent(EventLog):
    """Price-oracle update: the on-chain event that can *create* a
    liquidation opportunity, making it a backrun target (Definition 3)."""

    token: str = ""
    price_wei: int = 0
