"""Transactions: legacy and EIP-1559, with opaque executable intents.

A transaction in the simulator carries an ``intent`` — an object implementing
:class:`TxIntent` — which is what actually runs against world state when the
transaction is included in a block.  The chain layer knows nothing about
DEXes or lending pools; those substrates provide intent implementations.

Ground-truth annotations (who crafted this, which MEV strategy, which victim)
live in ``Transaction.meta``.  The measurement pipeline in ``repro.core`` is
forbidden from reading ``meta``: it must rediscover everything from receipts
and logs, exactly as the paper's scripts rediscover MEV from archive-node
data.  ``meta`` exists solely so tests can score heuristic precision/recall
against ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, Optional

from repro.chain.types import Address, Hash32, hash_of

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.chain.execution import ExecutionContext, ExecutionOutcome

LEGACY = "legacy"
EIP1559 = "eip1559"

_TX_NEXT_UID = 0


def _next_uid() -> int:
    global _TX_NEXT_UID
    uid = _TX_NEXT_UID
    _TX_NEXT_UID = uid + 1
    return uid


def tx_counter() -> int:
    """The next uid the process would assign (see :func:`set_tx_counter`)."""
    return _TX_NEXT_UID


def set_tx_counter(value: int) -> None:
    """Position the global transaction-uid counter at ``value``.

    Epoch seals record the counter at the sealing boundary so a fresh
    worker process can resume mid-window and mint transaction uids —
    and therefore transaction hashes — exactly as the serial run would
    have from that point on.
    """
    global _TX_NEXT_UID
    if value < 0:
        raise ValueError("tx counter cannot be negative")
    _TX_NEXT_UID = value


def reset_tx_counter() -> None:
    """Reset the global transaction-uid counter (test determinism).

    Transaction hashes commit to a process-wide counter (mirroring
    signature uniqueness), so a simulation's exact tie-breaking depends
    on how many transactions were created earlier in the process.  Test
    and benchmark fixtures call this before building a scenario so a
    given seed always produces the identical world.
    """
    set_tx_counter(0)


class TxIntent:
    """Interface for the executable payload of a transaction.

    Implementations mutate world state through the
    :class:`~repro.chain.execution.ExecutionContext` and either return an
    outcome or raise :class:`~repro.chain.execution.Revert`.
    """

    #: intrinsic gas estimate for this intent type; refined per-instance
    base_gas: int = 21_000

    def execute(self, ctx: "ExecutionContext") -> "ExecutionOutcome":
        raise NotImplementedError

    def gas_estimate(self) -> int:
        """Gas this intent will consume if it does not revert."""
        return self.base_gas


@dataclass
class Transaction:
    """A simulated Ethereum transaction.

    Fee semantics follow mainnet: legacy transactions bid a single
    ``gas_price``; EIP-1559 transactions bid ``max_fee_per_gas`` and
    ``max_priority_fee_per_gas``, with the block base fee burned and only the
    priority portion paid to the miner.
    """

    sender: Address
    nonce: int
    to: Optional[Address] = None
    value: int = 0
    gas_limit: int = 21_000
    tx_type: str = LEGACY
    gas_price: int = 0
    max_fee_per_gas: int = 0
    max_priority_fee_per_gas: int = 0
    intent: Optional[TxIntent] = None
    first_seen_block: Optional[int] = None
    meta: Dict[str, Any] = field(default_factory=dict)
    _uid: int = field(default_factory=_next_uid, repr=False)
    _hash: Optional[Hash32] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.tx_type not in (LEGACY, EIP1559):
            raise ValueError(f"unknown transaction type: {self.tx_type!r}")
        if self.tx_type == LEGACY and self.gas_price < 0:
            raise ValueError("gas_price must be non-negative")
        if self.tx_type == EIP1559:
            if self.max_fee_per_gas < self.max_priority_fee_per_gas:
                raise ValueError(
                    "max_fee_per_gas must cover max_priority_fee_per_gas")

    @property
    def hash(self) -> Hash32:
        """Stable transaction hash derived from identity fields."""
        if self._hash is None:
            self._hash = hash_of((
                "tx", self._uid, self.sender, self.nonce, self.to,
                self.value, self.gas_limit, self.tx_type, self.gas_price,
                self.max_fee_per_gas, self.max_priority_fee_per_gas,
            ))
        return self._hash

    # Fee-market arithmetic ---------------------------------------------------

    def max_bid_per_gas(self) -> int:
        """Highest per-gas price this transaction could ever pay."""
        if self.tx_type == LEGACY:
            return self.gas_price
        return self.max_fee_per_gas

    def effective_gas_price(self, base_fee: int) -> int:
        """Per-gas price actually charged to the sender at ``base_fee``."""
        if self.tx_type == LEGACY:
            return self.gas_price
        return min(self.max_fee_per_gas,
                   base_fee + self.max_priority_fee_per_gas)

    def miner_tip_per_gas(self, base_fee: int) -> int:
        """Per-gas amount the miner receives (excess over the burned base
        fee); negative results are clamped to zero."""
        return max(0, self.effective_gas_price(base_fee) - base_fee)

    def is_includable(self, base_fee: int) -> bool:
        """Whether the fee bid clears the block base fee."""
        return self.max_bid_per_gas() >= base_fee

    def max_upfront_cost(self) -> int:
        """Wei the sender must hold for the transaction to be valid."""
        return self.value + self.gas_limit * self.max_bid_per_gas()

    def __hash__(self) -> int:  # allow use in sets keyed by identity
        return hash(self.hash)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Transaction):
            return NotImplemented
        return self.hash == other.hash
