"""Transaction receipts: the on-chain record the measurement layer reads."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.chain.events import EventLog
from repro.chain.types import Address, Hash32


@dataclass
class Receipt:
    """Execution record for one included transaction.

    Mirrors the fields the paper's scripts pull from an archive node:
    status, gas accounting, logs, and — crucially for Flashbots profit
    accounting — any direct coinbase transfer made inside the transaction.
    """

    tx_hash: Hash32
    block_number: int
    tx_index: int
    sender: Address
    to: Optional[Address]
    status: bool
    gas_used: int
    effective_gas_price: int
    miner_tip_per_gas: int
    coinbase_transfer: int
    logs: List[EventLog] = field(default_factory=list)
    error: Optional[str] = None

    @property
    def total_fee(self) -> int:
        """Wei the sender paid in gas fees."""
        return self.gas_used * self.effective_gas_price

    @property
    def miner_fee(self) -> int:
        """Wei the miner received from gas (excludes coinbase transfers)."""
        return self.gas_used * self.miner_tip_per_gas

    @property
    def burned_fee(self) -> int:
        """Wei burned as base fee (zero before the London fork)."""
        return self.total_fee - self.miner_fee

    @property
    def total_miner_payment(self) -> int:
        """Everything the miner earned from this transaction."""
        return self.miner_fee + self.coinbase_transfer
