"""The public mempool: pending transactions ordered by miner revenue.

Implements the default miner strategy the paper describes — sort pending
transactions in descending order of effective per-gas payment — plus the
replacement rule real clients enforce (a same-sender/same-nonce replacement
must bump the bid by at least 10 %) and per-sender nonce sequencing.

Two orderings coexist and are element-for-element equal:

* the *reference* path (:meth:`Mempool.ordered_reference`) rebuilds and
  re-sorts the full pending set on every call — O(pending·log pending)
  per block, the behaviour the original simulator shipped with;
* the *incremental* path keeps a :class:`FeeOrderIndex` — a sorted
  structure updated on every add/drop in O(log pending) and lazily
  re-keyed only when the base fee changes — so a pre-London world (the
  base fee is pinned at 0) never re-sorts at all.

Eviction is bucketed the same way: arrivals are grouped by block, so
:meth:`Mempool.evict_stale` pops whole expired buckets instead of
scanning every pending transaction each block.
"""

from __future__ import annotations

import heapq
from bisect import bisect_left, insort
from typing import Dict, Iterable, List, Optional, Tuple

from repro.chain.transaction import Transaction
from repro.chain.types import Address, Hash32
from repro.markers import fast_path

#: Minimum price bump (percent) for replacing a pending transaction.
REPLACEMENT_BUMP_PERCENT = 10

#: Sort key of one pending transaction at a given base fee: descending
#: miner tip, then arrival block, then hash (a deterministic total order).
OrderKey = Tuple[int, int, Hash32]


class FeeOrderIndex:
    """Incrementally maintained fee-descending order of pending txs.

    The index stores, per transaction, the static data the comparator
    needs (the transaction itself and its arrival block) plus a sorted
    list of :data:`OrderKey` entries valid for one base fee.  Adds and
    drops splice the sorted list in place; a base-fee change only marks
    the order dirty — the re-key happens lazily on the next
    :meth:`ordered` call, and never at all while the fee is stable
    (every pre-London block).
    """

    def __init__(self) -> None:
        self._entries: Dict[Hash32, Tuple[Transaction, int]] = {}
        self._keys: Dict[Hash32, OrderKey] = {}
        self._order: List[OrderKey] = []
        #: base fee the sorted order is valid for; None = dirty.
        self._base_fee: Optional[int] = None

    def __len__(self) -> int:
        return len(self._entries)

    def insert(self, tx: Transaction, seen_block: int) -> None:
        """Track a newly admitted transaction."""
        tx_hash = tx.hash
        self._entries[tx_hash] = (tx, seen_block)
        if self._base_fee is not None:
            key = (-tx.miner_tip_per_gas(self._base_fee), seen_block,
                   tx_hash)
            self._keys[tx_hash] = key
            insort(self._order, key)

    def discard(self, tx_hash: Hash32) -> None:
        """Forget a dropped transaction (no-op when untracked)."""
        if self._entries.pop(tx_hash, None) is None:
            return
        if self._base_fee is None:
            return
        key = self._keys.pop(tx_hash)
        index = bisect_left(self._order, key)
        # The key is unique (it embeds the hash), so it is exactly here.
        del self._order[index]

    def invalidate(self) -> None:
        """Force a re-key on the next :meth:`ordered` call."""
        self._base_fee = None

    def _rekey(self, base_fee: int) -> None:
        self._keys = {
            tx_hash: (-tx.miner_tip_per_gas(base_fee), seen, tx_hash)
            for tx_hash, (tx, seen) in self._entries.items()}
        self._order = sorted(self._keys.values())
        self._base_fee = base_fee

    def ordered(self, base_fee: int) -> List[Transaction]:
        """Includable transactions, highest miner tip per gas first.

        Element-for-element equal to sorting the includable subset with
        the naive ``(-tip, arrival, hash)`` comparator: the comparator
        is a total order, and filtering commutes with sorting.
        """
        if self._base_fee != base_fee:
            self._rekey(base_fee)
        entries = self._entries
        result: List[Transaction] = []
        for _, _, tx_hash in self._order:
            tx = entries[tx_hash][0]
            if tx.is_includable(base_fee):
                result.append(tx)
        return result


class Mempool:
    """A single node's view of pending public transactions.

    ``incremental=False`` keeps the original full-rescan ordering and
    eviction paths; it exists as the bit-identical reference the
    optimized paths are property-tested (and bench-gated) against.
    """

    def __init__(self, ttl_blocks: int = 1_000,
                 incremental: bool = True) -> None:
        self._by_hash: Dict[Hash32, Transaction] = {}
        self._by_account: Dict[Tuple[Address, int], Hash32] = {}
        self._seen_at: Dict[Hash32, int] = {}
        self.ttl_blocks = ttl_blocks
        self.incremental = incremental
        self._index = FeeOrderIndex() if incremental else None
        #: arrival block → hashes admitted at that block (lazily cleaned:
        #: a dropped or replaced hash stays in its bucket and is skipped
        #: at eviction time via the ``_seen_at`` cross-check).
        self._arrival_buckets: Dict[int, List[Hash32]] = {}
        self._bucket_heap: List[int] = []

    def __len__(self) -> int:
        return len(self._by_hash)

    def __contains__(self, tx_hash: Hash32) -> bool:
        return tx_hash in self._by_hash

    def get(self, tx_hash: Hash32) -> Optional[Transaction]:
        return self._by_hash.get(tx_hash)

    @property
    def transactions(self) -> List[Transaction]:
        return list(self._by_hash.values())

    # Admission ------------------------------------------------------------

    def add(self, tx: Transaction, current_block: int) -> bool:
        """Admit a pending transaction; returns False if rejected.

        Rejection happens when a transaction with the same (sender, nonce)
        is already pending and the newcomer's bid is not at least 10 %
        higher (the replacement rule).
        """
        if tx.hash in self._by_hash:
            return False
        key = (tx.sender, tx.nonce)
        incumbent_hash = self._by_account.get(key)
        if incumbent_hash is not None:
            incumbent = self._by_hash[incumbent_hash]
            threshold = (incumbent.max_bid_per_gas()
                         * (100 + REPLACEMENT_BUMP_PERCENT)) // 100
            if tx.max_bid_per_gas() < threshold:
                return False
            self._drop(incumbent_hash)
        self._by_hash[tx.hash] = tx
        self._by_account[key] = tx.hash
        self._seen_at[tx.hash] = current_block
        if self.incremental:
            self._index.insert(tx, current_block)
            bucket = self._arrival_buckets.get(current_block)
            if bucket is None:
                self._arrival_buckets[current_block] = [tx.hash]
                heapq.heappush(self._bucket_heap, current_block)
            else:
                bucket.append(tx.hash)
        if tx.first_seen_block is None:
            tx.first_seen_block = current_block
        return True

    def _drop(self, tx_hash: Hash32) -> bool:
        tx = self._by_hash.pop(tx_hash, None)
        if tx is None:
            return False
        self._seen_at.pop(tx_hash, None)
        if self._index is not None:
            self._index.discard(tx_hash)
        key = (tx.sender, tx.nonce)
        if self._by_account.get(key) == tx_hash:
            del self._by_account[key]
        return True

    def remove(self, tx_hashes: Iterable[Hash32]) -> None:
        """Drop transactions (e.g. because they were included in a block)."""
        for tx_hash in tx_hashes:
            self._drop(tx_hash)

    def evict_stale(self, current_block: int) -> int:
        """Drop transactions pending longer than ``ttl_blocks``; returns
        the number evicted.

        The incremental path pops whole expired arrival buckets off a
        min-heap instead of scanning every pending transaction; the
        eviction *set* is identical to the reference scan's.
        """
        if not self.incremental:
            stale = [h for h, seen in self._seen_at.items()
                     if current_block - seen > self.ttl_blocks]
            for tx_hash in stale:
                self._drop(tx_hash)
            return len(stale)
        evicted = 0
        threshold = current_block - self.ttl_blocks
        heap = self._bucket_heap
        while heap and heap[0] < threshold:
            block = heapq.heappop(heap)
            for tx_hash in self._arrival_buckets.pop(block):
                # A replaced/removed hash lingers in its bucket; a hash
                # re-added later lives in a newer bucket.  Only drop the
                # ones still pending *from this arrival block*.
                if self._seen_at.get(tx_hash) == block:
                    if self._drop(tx_hash):
                        evicted += 1
        return evicted

    # Selection --------------------------------------------------------------

    @fast_path(reference="ordered_reference", toggle="_index")
    def ordered(self, base_fee: int) -> List[Transaction]:
        """All includable pending txs, highest miner payment per gas first.

        Ties break by arrival block (earlier first) for determinism.
        Served from the incremental :class:`FeeOrderIndex` unless this
        pool was built with ``incremental=False``.
        """
        if self._index is not None:
            return self._index.ordered(base_fee)
        return self.ordered_reference(base_fee)

    def ordered_reference(self, base_fee: int) -> List[Transaction]:
        """The naive full-rescan ordering (the reference path).

        Kept verbatim so property tests and the bench ``sim_identical``
        gate can compare the incremental index against it.
        """
        candidates = [tx for tx in self._by_hash.values()
                      if tx.is_includable(base_fee)]
        candidates.sort(key=lambda tx: (-tx.miner_tip_per_gas(base_fee),
                                        self._seen_at[tx.hash], tx.hash))
        return candidates

    def select(self, base_fee: int, gas_budget: int,
               account_nonces: Optional[Dict[Address, int]] = None,
               ) -> List[Transaction]:
        """Greedy fee-descending selection honoring per-sender nonce order.

        ``account_nonces`` maps sender → next expected nonce (from world
        state); transactions whose earlier nonces are absent are deferred
        until the gap is filled, matching real miner behaviour.  Deferred
        transactions are simply left pending — they are not reported.
        """
        nonces: Dict[Address, int] = dict(account_nonces or {})
        selected: List[Transaction] = []
        gas_left = gas_budget
        queue = self.ordered(base_fee)
        progress = True
        while progress:
            progress = False
            next_round: List[Transaction] = []
            for tx in queue:
                if tx.gas_limit > gas_left:
                    continue
                expected = nonces.get(tx.sender, 0)
                if tx.nonce < expected:
                    continue  # already mined; stale entry
                if tx.nonce > expected:
                    next_round.append(tx)
                    continue
                selected.append(tx)
                nonces[tx.sender] = expected + 1
                gas_left -= tx.gas_limit
                progress = True
            queue = next_round
            if not queue:
                break
        return selected
