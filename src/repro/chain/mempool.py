"""The public mempool: pending transactions ordered by miner revenue.

Implements the default miner strategy the paper describes — sort pending
transactions in descending order of effective per-gas payment — plus the
replacement rule real clients enforce (a same-sender/same-nonce replacement
must bump the bid by at least 10 %) and per-sender nonce sequencing.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.chain.transaction import Transaction
from repro.chain.types import Address, Hash32

#: Minimum price bump (percent) for replacing a pending transaction.
REPLACEMENT_BUMP_PERCENT = 10


class Mempool:
    """A single node's view of pending public transactions."""

    def __init__(self, ttl_blocks: int = 1_000) -> None:
        self._by_hash: Dict[Hash32, Transaction] = {}
        self._by_account: Dict[Tuple[Address, int], Hash32] = {}
        self._seen_at: Dict[Hash32, int] = {}
        self.ttl_blocks = ttl_blocks

    def __len__(self) -> int:
        return len(self._by_hash)

    def __contains__(self, tx_hash: Hash32) -> bool:
        return tx_hash in self._by_hash

    def get(self, tx_hash: Hash32) -> Optional[Transaction]:
        return self._by_hash.get(tx_hash)

    @property
    def transactions(self) -> List[Transaction]:
        return list(self._by_hash.values())

    # Admission ------------------------------------------------------------

    def add(self, tx: Transaction, current_block: int) -> bool:
        """Admit a pending transaction; returns False if rejected.

        Rejection happens when a transaction with the same (sender, nonce)
        is already pending and the newcomer's bid is not at least 10 %
        higher (the replacement rule).
        """
        if tx.hash in self._by_hash:
            return False
        key = (tx.sender, tx.nonce)
        incumbent_hash = self._by_account.get(key)
        if incumbent_hash is not None:
            incumbent = self._by_hash[incumbent_hash]
            threshold = (incumbent.max_bid_per_gas()
                         * (100 + REPLACEMENT_BUMP_PERCENT)) // 100
            if tx.max_bid_per_gas() < threshold:
                return False
            self._drop(incumbent_hash)
        self._by_hash[tx.hash] = tx
        self._by_account[key] = tx.hash
        self._seen_at[tx.hash] = current_block
        if tx.first_seen_block is None:
            tx.first_seen_block = current_block
        return True

    def _drop(self, tx_hash: Hash32) -> None:
        tx = self._by_hash.pop(tx_hash, None)
        if tx is None:
            return
        self._seen_at.pop(tx_hash, None)
        key = (tx.sender, tx.nonce)
        if self._by_account.get(key) == tx_hash:
            del self._by_account[key]

    def remove(self, tx_hashes: Iterable[Hash32]) -> None:
        """Drop transactions (e.g. because they were included in a block)."""
        for tx_hash in tx_hashes:
            self._drop(tx_hash)

    def evict_stale(self, current_block: int) -> int:
        """Drop transactions pending longer than ``ttl_blocks``; returns
        the number evicted."""
        stale = [h for h, seen in self._seen_at.items()
                 if current_block - seen > self.ttl_blocks]
        for tx_hash in stale:
            self._drop(tx_hash)
        return len(stale)

    # Selection --------------------------------------------------------------

    def ordered(self, base_fee: int) -> List[Transaction]:
        """All includable pending txs, highest miner payment per gas first.

        Ties break by arrival block (earlier first) for determinism.
        """
        candidates = [tx for tx in self._by_hash.values()
                      if tx.is_includable(base_fee)]
        candidates.sort(key=lambda tx: (-tx.miner_tip_per_gas(base_fee),
                                        self._seen_at[tx.hash], tx.hash))
        return candidates

    def select(self, base_fee: int, gas_budget: int,
               account_nonces: Optional[Dict[Address, int]] = None,
               ) -> List[Transaction]:
        """Greedy fee-descending selection honoring per-sender nonce order.

        ``account_nonces`` maps sender → next expected nonce (from world
        state); transactions whose earlier nonces are absent are deferred
        until the gap is filled, matching real miner behaviour.
        """
        nonces: Dict[Address, int] = dict(account_nonces or {})
        selected: List[Transaction] = []
        gas_left = gas_budget
        deferred: List[Transaction] = []
        queue = self.ordered(base_fee)
        progress = True
        while progress:
            progress = False
            next_round: List[Transaction] = []
            for tx in queue:
                if tx.gas_limit > gas_left:
                    continue
                expected = nonces.get(tx.sender, 0)
                if tx.nonce < expected:
                    continue  # already mined; stale entry
                if tx.nonce > expected:
                    next_round.append(tx)
                    continue
                selected.append(tx)
                nonces[tx.sender] = expected + 1
                gas_left -= tx.gas_limit
                progress = True
            queue = next_round
            if not queue:
                break
        deferred.extend(queue)
        return selected
