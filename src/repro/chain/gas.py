"""Fee-market mechanics: EIP-1559 base-fee controller and gas constants."""

from __future__ import annotations

from repro.chain.types import GWEI

#: Default block gas limit (mainnet's post-London value).
BLOCK_GAS_LIMIT = 30_000_000

#: EIP-1559 targets half the limit.
ELASTICITY_MULTIPLIER = 2

#: EIP-1559 maximum base-fee change per block is 1/8.
BASE_FEE_MAX_CHANGE_DENOMINATOR = 8

#: Base fee installed at the London fork block.
INITIAL_BASE_FEE = 1 * GWEI

#: Floor so the base fee never collapses to zero in long idle stretches.
MIN_BASE_FEE = 7  # wei, mirrors geth's practical floor

#: Static block reward paid to the miner (pre-merge PoW era).
BLOCK_REWARD = 2 * 10**18


def next_base_fee(parent_base_fee: int, parent_gas_used: int,
                  parent_gas_limit: int = BLOCK_GAS_LIMIT) -> int:
    """EIP-1559 base-fee update rule.

    The base fee rises when the parent block was more than half full and
    falls when it was less than half full, by at most 1/8 per block.
    """
    if parent_gas_limit <= 0:
        raise ValueError("gas limit must be positive")
    target = parent_gas_limit // ELASTICITY_MULTIPLIER
    if parent_gas_used == target:
        return max(parent_base_fee, MIN_BASE_FEE)
    if parent_gas_used > target:
        delta = max(
            1,
            parent_base_fee * (parent_gas_used - target)
            // target // BASE_FEE_MAX_CHANGE_DENOMINATOR,
        )
        return parent_base_fee + delta
    delta = (parent_base_fee * (target - parent_gas_used)
             // target // BASE_FEE_MAX_CHANGE_DENOMINATOR)
    return max(MIN_BASE_FEE, parent_base_fee - delta)


# Gas cost estimates per intent family, used by substrate intents.  Values
# approximate mainnet averages for the corresponding operations.
GAS_TRANSFER = 21_000
GAS_TOKEN_TRANSFER = 50_000
GAS_SWAP = 120_000
GAS_SWAP_PER_EXTRA_HOP = 70_000
GAS_LIQUIDATION = 350_000
GAS_FLASH_LOAN_OVERHEAD = 90_000
GAS_ORACLE_UPDATE = 60_000
GAS_PAYOUT = 21_000
