"""Basic transaction intents that need no DeFi substrate.

Higher-level intents (swaps, liquidations, flash loans) live next to the
contracts they call; these are the plain building blocks: ERC-20 transfers
and explicit coinbase tips.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.chain.events import TransferEvent
from repro.chain.execution import ExecutionContext, ExecutionOutcome, Revert
from repro.chain.gas import GAS_TOKEN_TRANSFER
from repro.chain.transaction import TxIntent
from repro.chain.types import Address


@dataclass
class TokenTransferIntent(TxIntent):
    """Transfer ``amount`` of ``token`` from the tx sender to ``recipient``."""

    token: str
    recipient: Address
    amount: int
    base_gas: int = GAS_TOKEN_TRANSFER

    def execute(self, ctx: ExecutionContext) -> ExecutionOutcome:
        if self.amount <= 0:
            raise Revert("transfer amount must be positive")
        ctx.state.transfer_token(self.token, ctx.tx.sender,
                                 self.recipient, self.amount)
        ctx.emit(TransferEvent(address=ctx.tx.to or ctx.tx.sender,
                               token=self.token, sender=ctx.tx.sender,
                               recipient=self.recipient, amount=self.amount))
        return ExecutionOutcome(success=True, gas_used=self.base_gas)


@dataclass
class CoinbaseTipIntent(TxIntent):
    """Pay the block's miner directly (a Flashbots-style tip transaction)."""

    tip: int
    base_gas: int = 21_000

    def execute(self, ctx: ExecutionContext) -> ExecutionOutcome:
        ctx.pay_coinbase(self.tip)
        return ExecutionOutcome(success=True, gas_used=self.base_gas)


@dataclass
class SequenceIntent(TxIntent):
    """Run several intents in order within one transaction.

    Any member reverting reverts the whole transaction — the composition
    primitive behind flash-loan strategies (borrow → act → unwind)."""

    intents: list

    def gas_estimate(self) -> int:
        return max(21_000, sum(i.gas_estimate() for i in self.intents))

    def execute(self, ctx: ExecutionContext) -> ExecutionOutcome:
        if not self.intents:
            raise Revert("empty sequence")
        result = None
        for intent in self.intents:
            result = intent.execute(ctx)
        return ExecutionOutcome(success=True,
                                gas_used=self.gas_estimate(),
                                return_data=result)


@dataclass
class FailingIntent(TxIntent):
    """An intent that always reverts — used for failure-injection tests and
    for modelling the faulty searcher contracts behind Section 5.2."""

    reason: str = "faulty contract"
    base_gas: int = 100_000

    def execute(self, ctx: ExecutionContext) -> ExecutionOutcome:
        raise Revert(self.reason)
