"""Read-optimized indexes over an append-only :class:`Blockchain`.

The measurement pipeline is fundamentally a range-scan over the chain's
logs, and before this layer every ranged query paid O(chain): each
``ArchiveNode.iter_blocks(lo, hi)`` walked from genesis and every
``get_logs`` ``isinstance``-filtered every log of every receipt in the
range.  :class:`ChainIndex` turns both into O(result):

* **block positions** — the ascending block-number list supports bisect,
  so a range query resolves to one ``blocks[start:stop]`` slice;
* **log postings** — per concrete event type, the coordinates
  ``(block_number, tx_index, log_index)`` and the log object itself, in
  chain traversal order; a ranged ``get_logs`` bisects each matching
  type's postings and merges by a global traversal ordinal, reproducing
  the linear scan's order element for element (including subclass
  matches: querying a base type returns every subclass's logs, exactly
  as ``isinstance`` filtering did).

**Invalidation contract.**  :class:`Blockchain` only grows, one
contiguous block at a time, and sealed blocks are immutable — so the
index never rebuilds.  Every query calls :meth:`refresh`, which folds
only the blocks appended since the last fold; an append therefore
*invalidates* the index only in the sense that the next query first
consumes the new tail.  Blocks are folded into the position index
eagerly on any query, but logs are folded only once a log query
arrives, so pure block-range readers never pay for postings.

The index is built once per :class:`Blockchain` (see
``Blockchain.index``) and shared read-only by every reader — chunks,
workers (fork-inherited), and joins all bisect the same structure.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import TYPE_CHECKING, Dict, List, NamedTuple, Optional, Tuple, Type

from repro.chain.events import EventLog

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids module cycle
    from repro.chain.block import Block
    from repro.chain.node import Blockchain

__all__ = ["ChainIndex", "Posting"]


class Posting(NamedTuple):
    """One log's inclusion coordinates in a per-event-type postings list."""

    block_number: int
    tx_index: Optional[int]
    log_index: Optional[int]


class ChainIndex:
    """Bisect-friendly read index over one append-only chain."""

    def __init__(self, chain: "Blockchain") -> None:
        self.chain = chain
        #: blocks folded into the position index / the postings lists
        self._blocks_consumed = 0
        self._logs_consumed = 0
        #: ascending block numbers, parallel to ``chain.blocks``
        self._numbers: List[int] = []
        #: concrete event type -> logs in chain traversal order
        self._logs: Dict[Type[EventLog], List[EventLog]] = {}
        #: concrete event type -> the logs' block numbers (bisect keys)
        self._log_blocks: Dict[Type[EventLog], List[int]] = {}
        #: concrete event type -> global traversal ordinal per log (the
        #: merge key that reproduces linear-scan order across types)
        self._log_order: Dict[Type[EventLog], List[int]] = {}
        self._next_ordinal = 0

    # Refresh (the invalidation-on-append mechanism) ----------------------

    def refresh(self) -> None:
        """Fold any blocks appended since the last fold into the index."""
        self._refresh_blocks()
        if self._logs_consumed < len(self._numbers) and self._logs:
            # Postings exist, so log queries are live: keep them current.
            self._refresh_logs()

    def warm(self) -> None:
        """Build both tiers eagerly — block positions *and* postings —
        so forked workers inherit a fully-built index."""
        self._refresh_blocks()
        self._refresh_logs()

    def _refresh_blocks(self) -> None:
        blocks = self.chain.blocks
        if self._blocks_consumed == len(blocks):
            return
        for block in blocks[self._blocks_consumed:]:
            self._numbers.append(block.number)
        self._blocks_consumed = len(blocks)

    def _refresh_logs(self) -> None:
        blocks = self.chain.blocks
        if self._logs_consumed == len(blocks):
            return
        ordinal = self._next_ordinal
        for block in blocks[self._logs_consumed:]:
            for receipt in block.receipts:
                for log in receipt.logs:
                    cls = type(log)
                    entry = self._logs.get(cls)
                    if entry is None:
                        entry = self._logs[cls] = []
                        self._log_blocks[cls] = []
                        self._log_order[cls] = []
                    entry.append(log)
                    self._log_blocks[cls].append(block.number)
                    self._log_order[cls].append(ordinal)
                    ordinal += 1
        self._next_ordinal = ordinal
        self._logs_consumed = len(blocks)

    # Rollback (the reorg seam) -------------------------------------------

    def rollback(self, to_height: int) -> None:
        """Truncate both tiers to blocks numbered ``<= to_height``.

        The inverse of :meth:`refresh` for a chain that just rolled
        back: block positions and every event type's postings are cut at
        the fork point by bisect, and the consumption cursors rewind so
        the next query folds the replacement tail incrementally.  The
        global traversal ordinal is *not* rewound — re-appended logs get
        fresh, larger ordinals, which preserves relative order within
        the surviving postings and the new tail (only relative order
        matters to the merge).  Never rebuilds.
        """
        cut = bisect_right(self._numbers, to_height)
        if cut == len(self._numbers):
            return
        del self._numbers[cut:]
        self._blocks_consumed = cut
        if self._logs_consumed > cut:
            self._logs_consumed = cut
            for cls, block_keys in self._log_blocks.items():
                keep = bisect_right(block_keys, to_height)
                if keep < len(block_keys):
                    del block_keys[keep:]
                    del self._logs[cls][keep:]
                    del self._log_order[cls][keep:]

    # Introspection -------------------------------------------------------

    @property
    def blocks_indexed(self) -> int:
        """How many blocks the position index has folded so far."""
        return self._blocks_consumed

    @property
    def logs_indexed_through(self) -> int:
        """How many blocks the postings lists have folded so far."""
        return self._logs_consumed

    def postings(self, event_type: Type[EventLog]) -> List[Posting]:
        """The coordinates list for one *concrete* event type."""
        self._refresh_blocks()
        self._refresh_logs()
        logs = self._logs.get(event_type, [])
        blocks = self._log_blocks.get(event_type, [])
        return [Posting(number, log.tx_index, log.log_index)
                for number, log in zip(blocks, logs)]

    # Queries -------------------------------------------------------------

    def block_positions(self, from_block: Optional[int] = None,
                        to_block: Optional[int] = None) -> Tuple[int, int]:
        """``(start, stop)`` offsets into ``chain.blocks`` for the range."""
        self._refresh_blocks()
        start = 0 if from_block is None else \
            bisect_left(self._numbers, from_block)
        stop = len(self._numbers) if to_block is None else \
            bisect_right(self._numbers, to_block)
        return start, max(start, stop)

    def blocks_in_range(self, from_block: Optional[int] = None,
                        to_block: Optional[int] = None) -> List["Block"]:
        """The blocks in ``[from_block, to_block]``, ascending."""
        start, stop = self.block_positions(from_block, to_block)
        return self.chain.blocks[start:stop]

    def logs_in_range(self, event_type: Type[EventLog],
                      from_block: Optional[int] = None,
                      to_block: Optional[int] = None) -> List[EventLog]:
        """All logs of ``event_type`` (or a subclass) in the range, in
        chain traversal order — element-for-element what the linear
        ``isinstance`` scan returned."""
        self._refresh_blocks()
        self._refresh_logs()
        slices: List[Tuple[List[int], List[EventLog]]] = []
        for cls, logs in self._logs.items():
            if not issubclass(cls, event_type):
                continue
            block_keys = self._log_blocks[cls]
            lo = 0 if from_block is None else \
                bisect_left(block_keys, from_block)
            hi = len(block_keys) if to_block is None else \
                bisect_right(block_keys, to_block)
            if lo < hi:
                slices.append((self._log_order[cls][lo:hi],
                               logs[lo:hi]))
        if not slices:
            return []
        if len(slices) == 1:
            return list(slices[0][1])
        merged: List[Tuple[int, EventLog]] = []
        for order, logs in slices:
            merged.extend(zip(order, logs))
        merged.sort(key=lambda pair: pair[0])
        return [log for _, log in merged]
