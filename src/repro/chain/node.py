"""The blockchain store and the archive-node query API.

:class:`Blockchain` is canonical block storage; :class:`ArchiveNode` is the
query surface the measurement pipeline uses — the stand-in for the paper's
go-ethereum archive node.  Everything ``repro.core`` learns about the chain
goes through this API (blocks, transactions, receipts, event logs); nothing
reaches into simulator internals.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple, Type, TypeVar

from repro.chain.block import Block
from repro.chain.events import EventLog
from repro.chain.receipt import Receipt
from repro.chain.transaction import Transaction
from repro.chain.types import Hash32

E = TypeVar("E", bound=EventLog)


class Blockchain:
    """Append-only canonical chain with hash indexes."""

    def __init__(self) -> None:
        self.blocks: List[Block] = []
        self._tx_index: Dict[Hash32, Tuple[int, int]] = {}

    def append(self, block: Block) -> None:
        if self.blocks and block.number != self.blocks[-1].number + 1:
            raise ValueError(
                f"non-contiguous block: got {block.number}, "
                f"expected {self.blocks[-1].number + 1}")
        position = len(self.blocks)
        self.blocks.append(block)
        for tx_index, tx in enumerate(block.transactions):
            self._tx_index[tx.hash] = (position, tx_index)

    def __len__(self) -> int:
        return len(self.blocks)

    @property
    def height(self) -> Optional[int]:
        return self.blocks[-1].number if self.blocks else None

    def block_by_number(self, number: int) -> Optional[Block]:
        if not self.blocks:
            return None
        offset = number - self.blocks[0].number
        if 0 <= offset < len(self.blocks):
            return self.blocks[offset]
        return None

    def locate_transaction(self, tx_hash: Hash32,
                           ) -> Optional[Tuple[Block, int]]:
        entry = self._tx_index.get(tx_hash)
        if entry is None:
            return None
        position, tx_index = entry
        return self.blocks[position], tx_index


class ArchiveNode:
    """Query API over a :class:`Blockchain` (the paper's data source)."""

    def __init__(self, chain: Blockchain) -> None:
        self.chain = chain

    # Block-level queries -----------------------------------------------------

    def latest_block_number(self) -> Optional[int]:
        return self.chain.height

    def earliest_block_number(self) -> Optional[int]:
        return self.chain.blocks[0].number if self.chain.blocks else None

    def get_block(self, number: int) -> Optional[Block]:
        return self.chain.block_by_number(number)

    def iter_blocks(self, from_block: Optional[int] = None,
                    to_block: Optional[int] = None) -> Iterator[Block]:
        """Yield blocks in ``[from_block, to_block]`` (inclusive bounds)."""
        for block in self.chain.blocks:
            if from_block is not None and block.number < from_block:
                continue
            if to_block is not None and block.number > to_block:
                break
            yield block

    # Transaction-level queries -----------------------------------------------

    def get_transaction(self, tx_hash: Hash32) -> Optional[Transaction]:
        located = self.chain.locate_transaction(tx_hash)
        if located is None:
            return None
        block, tx_index = located
        return block.transactions[tx_index]

    def get_receipt(self, tx_hash: Hash32) -> Optional[Receipt]:
        located = self.chain.locate_transaction(tx_hash)
        if located is None:
            return None
        block, tx_index = located
        return block.receipts[tx_index]

    # Log queries ---------------------------------------------------------

    def get_logs(self, event_type: Type[E],
                 from_block: Optional[int] = None,
                 to_block: Optional[int] = None) -> List[E]:
        """All logs of ``event_type`` in the block range, chain order."""
        found: List[E] = []
        for block in self.iter_blocks(from_block, to_block):
            for receipt in block.receipts:
                for log in receipt.logs:
                    if isinstance(log, event_type):
                        found.append(log)
        return found

    def iter_receipts(self, from_block: Optional[int] = None,
                      to_block: Optional[int] = None) -> Iterator[Receipt]:
        for block in self.iter_blocks(from_block, to_block):
            yield from block.receipts
