"""The blockchain store and the archive-node query API.

:class:`Blockchain` is canonical block storage; :class:`ArchiveNode` is the
query surface the measurement pipeline uses — the stand-in for the paper's
go-ethereum archive node.  Everything ``repro.core`` learns about the chain
goes through this API (blocks, transactions, receipts, event logs); nothing
reaches into simulator internals.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple, Type, TypeVar

from repro.chain.block import Block
from repro.chain.events import EventLog
from repro.chain.index import ChainIndex
from repro.chain.receipt import Receipt
from repro.chain.transaction import Transaction
from repro.chain.types import Hash32
from repro.markers import fast_path

E = TypeVar("E", bound=EventLog)


class Blockchain:
    """Append-only canonical chain with hash indexes."""

    def __init__(self) -> None:
        self.blocks: List[Block] = []
        self._tx_index: Dict[Hash32, Tuple[int, int]] = {}
        self._index: Optional[ChainIndex] = None

    @property
    def index(self) -> ChainIndex:
        """The chain's read index (see :mod:`repro.chain.index`).

        Built lazily, exactly once per chain, and shared by every
        reader; appends are folded in incrementally on the next query,
        so the index is never stale and never rebuilt.
        """
        if self._index is None:
            self._index = ChainIndex(self)
        return self._index

    def append(self, block: Block) -> None:
        """Append ``block``, validating parent linkage at the seam.

        Number must be contiguous with the tip, and — when the block
        carries a ``parent_hash`` — it must equal the tip's hash.  A
        block with ``parent_hash=None`` is stamped with the tip's hash
        here, so every stored block is fully linked and a later
        re-delivery of the same object revalidates cleanly.
        """
        if self.blocks:
            tip = self.blocks[-1]
            if block.number != tip.number + 1:
                raise ValueError(
                    f"non-contiguous block: got {block.number}, "
                    f"expected {tip.number + 1}")
            if block.parent_hash is None:
                block.parent_hash = tip.hash
            elif block.parent_hash != tip.hash:
                raise ValueError(
                    f"parent hash mismatch at block {block.number}: "
                    f"block links to {block.parent_hash!r}, tip is "
                    f"{tip.hash!r}")
        self.blocks.append(block)
        # Keyed by *block number*, not list position: a spillable chain
        # (repro.chain.segments) evicts its resident prefix, so list
        # positions are not stable identifiers — block numbers are.
        for tx_index, tx in enumerate(block.transactions):
            self._tx_index[tx.hash] = (block.number, tx_index)

    def rollback(self, to_height: int) -> List[Block]:
        """Truncate the chain back to ``to_height`` (the new tip).

        Returns the removed blocks, oldest first, and keeps every
        derived structure consistent: transaction locations for removed
        blocks are dropped and the read index truncates its position and
        postings tiers to the fork point (cursor rewind — never a
        rebuild).  Rolling back to at-or-above the tip is a no-op;
        rolling back past the first stored block raises, because this
        store cannot represent an empty-but-started chain.
        """
        if not self.blocks or to_height >= self.blocks[-1].number:
            return []
        if to_height < self.blocks[0].number:
            raise ValueError(
                f"cannot roll back to {to_height}: chain starts at "
                f"{self.blocks[0].number}")
        keep = to_height - self.blocks[0].number + 1
        removed = self.blocks[keep:]
        del self.blocks[keep:]
        for block in removed:
            for tx in block.transactions:
                self._tx_index.pop(tx.hash, None)
        if self._index is not None:
            self._index.rollback(to_height)
        return removed

    def __len__(self) -> int:
        return len(self.blocks)

    @property
    def height(self) -> Optional[int]:
        return self.blocks[-1].number if self.blocks else None

    def block_by_number(self, number: int) -> Optional[Block]:
        if not self.blocks:
            return None
        offset = number - self.blocks[0].number
        if 0 <= offset < len(self.blocks):
            return self.blocks[offset]
        return None

    def locate_transaction(self, tx_hash: Hash32,
                           ) -> Optional[Tuple[Block, int]]:
        entry = self._tx_index.get(tx_hash)
        if entry is None:
            return None
        number, tx_index = entry
        block = self.block_by_number(number)
        if block is None:
            return None
        return block, tx_index


class ArchiveNode:
    """Query API over a :class:`Blockchain` (the paper's data source).

    Ranged queries (``iter_blocks``, ``get_logs``) resolve through the
    chain's :class:`~repro.chain.index.ChainIndex` by default — O(range)
    bisected slices instead of O(chain) scans from genesis.
    ``indexed=False`` keeps the historical linear-scan implementation,
    preserved as a reference (benchmark baselines and equivalence tests
    compare the two paths element for element).
    """

    def __init__(self, chain: Blockchain, indexed: bool = True) -> None:
        self.chain = chain
        self.indexed = indexed
        #: a segment-backed (spillable) chain keeps only a bounded tail
        #: of blocks resident; ranged reads must route through its
        #: segment reader instead of the in-memory index tiers.
        self.segmented = bool(getattr(chain, "spilled", False))

    def warm_index(self) -> None:
        """Build the read index eagerly (both block positions and log
        postings) — e.g. once in the parent process before worker
        fan-out, so forked workers inherit it instead of each paying
        the first-query build.  Segment-backed chains have no in-memory
        index to warm; their reads bisect the segment manifest."""
        if self.indexed and not self.segmented:
            self.chain.index.warm()

    # Block-level queries -----------------------------------------------------

    def latest_block_number(self) -> Optional[int]:
        return self.chain.height

    def earliest_block_number(self) -> Optional[int]:
        if self.segmented:
            return self.chain.earliest_number
        return self.chain.blocks[0].number if self.chain.blocks else None

    def get_block(self, number: int) -> Optional[Block]:
        return self.chain.block_by_number(number)

    @fast_path(reference="_linear_iter_blocks", toggle="indexed")
    def iter_blocks(self, from_block: Optional[int] = None,
                    to_block: Optional[int] = None) -> Iterator[Block]:
        """Yield blocks in ``[from_block, to_block]`` (inclusive bounds).

        Empty ranges — ``from_block`` past the tip, or
        ``from_block > to_block`` — yield nothing *without scanning*.
        """
        height = self.chain.height
        if height is None:
            return
        if from_block is not None:
            if from_block > height:
                return
            if to_block is not None and from_block > to_block:
                return
        if self.segmented:
            # Spillable store: the chain's own segment reader resolves
            # the range (manifest bisect + resident tail), since only a
            # bounded window of blocks is in memory at any time.
            yield from self.chain.iter_range(from_block, to_block)
            return
        if not self.indexed:
            yield from self._linear_iter_blocks(from_block, to_block)
            return
        start, stop = self.chain.index.block_positions(from_block,
                                                       to_block)
        yield from self.chain.blocks[start:stop]

    def _linear_iter_blocks(self, from_block: Optional[int],
                            to_block: Optional[int]) -> Iterator[Block]:
        """The historical O(chain) scan, kept as the reference path."""
        for block in self.chain.blocks:
            if from_block is not None and block.number < from_block:
                continue
            if to_block is not None and block.number > to_block:
                break
            yield block

    # Transaction-level queries -----------------------------------------------

    def get_transaction(self, tx_hash: Hash32) -> Optional[Transaction]:
        located = self.chain.locate_transaction(tx_hash)
        if located is None:
            return None
        block, tx_index = located
        return block.transactions[tx_index]

    def get_receipt(self, tx_hash: Hash32) -> Optional[Receipt]:
        located = self.chain.locate_transaction(tx_hash)
        if located is None:
            return None
        block, tx_index = located
        return block.receipts[tx_index]

    # Log queries ---------------------------------------------------------

    @fast_path(reference="_linear_get_logs", toggle="indexed")
    def get_logs(self, event_type: Type[E],
                 from_block: Optional[int] = None,
                 to_block: Optional[int] = None) -> List[E]:
        """All logs of ``event_type`` in the block range, chain order."""
        if self.segmented:
            # O(range) receipt scan through the segment reader: postings
            # tiers assume the full block list is resident, which a
            # spillable chain deliberately is not.
            found: List[E] = []
            for block in self.chain.iter_range(from_block, to_block):
                for receipt in block.receipts:
                    for log in receipt.logs:
                        if isinstance(log, event_type):
                            found.append(log)
            return found
        if not self.indexed:
            return self._linear_get_logs(event_type, from_block,
                                         to_block)
        logs = self.chain.index.logs_in_range(event_type, from_block,
                                              to_block)
        return logs  # type: ignore[return-value]

    def _linear_get_logs(self, event_type: Type[E],
                         from_block: Optional[int],
                         to_block: Optional[int]) -> List[E]:
        """The historical ``isinstance``-filtering scan (reference)."""
        found: List[E] = []
        for block in self._linear_iter_blocks(from_block, to_block):
            for receipt in block.receipts:
                for log in receipt.logs:
                    if isinstance(log, event_type):
                        found.append(log)
        return found

    def iter_receipts(self, from_block: Optional[int] = None,
                      to_block: Optional[int] = None) -> Iterator[Receipt]:
        for block in self.iter_blocks(from_block, to_block):
            yield from block.receipts
