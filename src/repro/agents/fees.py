"""Fee-field construction for both fee-market epochs.

Agents decide a per-gas *price*; this module turns it into the right
transaction fields for the current epoch — a legacy ``gas_price`` before
the London fork, an EIP-1559 (max fee, priority fee) pair after it — so
agent strategy code never branches on the fork.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Dict

from repro.chain.transaction import EIP1559, LEGACY
from repro.chain.types import GWEI
from repro.flashbots.auction import pga_gas_price


@dataclass(frozen=True)
class FeeModel:
    """Per-block fee context handed to agents.

    ``prevailing`` is the gas price an ordinary user currently bids (from
    the demand model); ``base_fee`` is the protocol base fee (0 before
    London).
    """

    base_fee: int
    london_active: bool
    prevailing: int

    def fields_for_price(self, price_per_gas: int) -> Dict[str, Any]:
        """Transaction kwargs paying ``price_per_gas`` in this epoch."""
        price = max(1, price_per_gas)
        if not self.london_active:
            return {"tx_type": LEGACY, "gas_price": price}
        max_fee = max(price, self.base_fee + 1)
        priority = max(1, max_fee - self.base_fee)
        return {"tx_type": EIP1559, "max_fee_per_gas": max_fee,
                "max_priority_fee_per_gas": priority}

    def user_fields(self, rng: random.Random,
                    urgency: float = 1.0) -> Dict[str, Any]:
        """An ordinary user's bid around the prevailing level."""
        jitter = rng.uniform(0.85, 1.25) * urgency
        price = max(self.base_fee + GWEI, int(self.prevailing * jitter))
        return self.fields_for_price(price)

    def bundle_fields(self) -> Dict[str, Any]:
        """Minimal-fee fields for Flashbots bundle legs.

        Bundle transactions pay the miner via coinbase transfer, not gas,
        so they bid just above the floor (the real-world pattern).
        """
        return self.fields_for_price(self.base_fee + GWEI)

    def frontrun_fields(self, rng: random.Random, victim_price: int,
                        expected_profit: int, gas_limit: int,
                        competition: int = 3) -> Dict[str, Any]:
        """A public PGA frontrun bid: above the victim, scaled to profit."""
        bid = pga_gas_price(rng, victim_price + GWEI, expected_profit,
                            gas_limit, competition)
        return self.fields_for_price(bid)

    def backrun_fields(self, victim_price: int) -> Dict[str, Any]:
        """A public backrun bid: just below the victim's price."""
        floor = self.base_fee + 1 if self.london_active else 1
        return self.fields_for_price(max(floor, victim_price - 1))

    def effective_price(self, tx) -> int:
        """The per-gas price a transaction pays under this block's fee."""
        return tx.effective_gas_price(self.base_fee
                                      if self.london_active else 0)
