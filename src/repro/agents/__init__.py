"""Agent populations: miners, searchers, traders, borrowers, keepers."""

from repro.agents.fees import FeeModel
from repro.agents.miner import (
    MinerProfile,
    MinerSet,
    PayoutSchedule,
    zipf_hashpowers,
)
from repro.agents.searcher import (
    CHANNEL_FLASHBOTS,
    CHANNEL_PRIVATE,
    CHANNEL_PUBLIC,
    STRATEGY_ARBITRAGE,
    STRATEGY_LIQUIDATION,
    STRATEGY_OTHER,
    STRATEGY_SANDWICH,
    ArbitrageSearcher,
    ChannelPolicy,
    GroundTruth,
    LiquidationSearcher,
    MarketView,
    OtherBundleUser,
    SandwichSearcher,
    Searcher,
    Submission,
)
from repro.agents.pga import (
    AuctionOutcome,
    MechanismComparison,
    PgaBidder,
    compare_mechanisms,
    run_open_pga,
    run_sealed_bid,
)
from repro.agents.trader import (
    BorrowerPopulation,
    OracleKeeper,
    TraderPopulation,
)

__all__ = [
    "AuctionOutcome", "MechanismComparison", "PgaBidder",
    "compare_mechanisms", "run_open_pga", "run_sealed_bid",
    "ArbitrageSearcher", "BorrowerPopulation", "CHANNEL_FLASHBOTS",
    "CHANNEL_PRIVATE", "CHANNEL_PUBLIC", "ChannelPolicy", "FeeModel",
    "GroundTruth", "LiquidationSearcher", "MarketView", "MinerProfile",
    "MinerSet", "OracleKeeper", "OtherBundleUser", "PayoutSchedule",
    "STRATEGY_ARBITRAGE", "STRATEGY_LIQUIDATION", "STRATEGY_OTHER",
    "STRATEGY_SANDWICH", "SandwichSearcher", "Searcher", "Submission",
    "TraderPopulation", "zipf_hashpowers",
]
