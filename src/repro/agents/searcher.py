"""Searcher agents: sandwich, arbitrage and liquidation MEV extractors.

Searchers implement the strategies of paper Definitions 1–3 against live
simulator state: they watch the public mempool and chain state, size their
attacks with the closed-form math in :mod:`repro.dex.arbitrage_math`, and
choose a *channel* per the scenario timeline — the public mempool (open
PGA bidding), Flashbots (sealed-bid bundles with coinbase tips), or a
non-Flashbots private pool.

Every submission carries a :class:`GroundTruth` record.  Ground truth is
for scoring the measurement pipeline (precision/recall) and calibrating
benchmarks only — the pipeline itself never reads it.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.chain.transaction import Transaction
from repro.chain.types import Address, Hash32, address_from_label
from repro.dex.amm import ConstantProductPool, get_amount_out
from repro.dex.arbitrage_math import optimal_two_pool_arbitrage, \
    plan_sandwich
from repro.dex.registry import SANDWICH_VENUES, ExchangeRegistry
from repro.dex.stableswap import StableSwapPool, stable_amount_out
from repro.dex.weighted import WeightedPool, weighted_amount_out
from repro.dex.router import ArbitrageIntent, SwapAllIntent, SwapIntent
from repro.dex.token import WETH
from repro.agents.fees import FeeModel
from repro.chain.intents import SequenceIntent
from repro.flashbots.auction import sealed_bid_tip_fraction
from repro.flashbots.bundle import Bundle, make_bundle
from repro.lending.flashloan import FlashLoanIntent, FlashLoanProvider
from repro.lending.oracle import PRICE_SCALE, OracleUpdateIntent, \
    PriceOracle
from repro.lending.pool import LendingPool, LiquidationIntent
from repro.markers import fast_path

CHANNEL_PUBLIC = "public"
CHANNEL_FLASHBOTS = "flashbots"
CHANNEL_PRIVATE = "private"

STRATEGY_SANDWICH = "sandwich"
STRATEGY_ARBITRAGE = "arbitrage"
STRATEGY_LIQUIDATION = "liquidation"
STRATEGY_OTHER = "other"

#: Cross-block cache of geometric probe searches.  A probe is a pure
#: function of (route, searcher capital, the exact reserves of every pool
#: on the route) — all of which are in the key — so a hit is exact, never
#: approximate: between trades on a route's pools the reserves (and hence
#: the key) are unchanged and the probe result is provably the same.
_PROBE_CACHE: Dict[Any, Any] = {}
_PROBE_CACHE_MAX = 65_536

_MISS = object()


def _quote_via_pool(amount: int, pool: Any, state: Any,
                    token_in: str) -> int:
    """Pure-shape adapter for pool kinds without an extracted quote
    function (none exist today, but probe routes are caller-supplied)."""
    return pool.quote_out(state, token_in, amount)


@dataclass(frozen=True)
class ChannelPolicy:
    """When a searcher uses which submission channel.

    Defaults to the public mempool; between ``flashbots_from`` and
    ``flashbots_until`` the searcher submits Flashbots bundles; from
    ``private_from`` (if set, and outside the Flashbots window) it uses the
    named private pool.  This encodes the paper's observed lifecycle:
    public → Flashbots (2021 boom) → exodus to private pools (late 2021).
    """

    flashbots_from: Optional[int] = None
    flashbots_until: Optional[int] = None
    private_pool: Optional[str] = None
    private_from: Optional[int] = None
    private_until: Optional[int] = None  # e.g. the pool shut down

    def channel_at(self, block_number: int) -> str:
        in_flashbots = (
            self.flashbots_from is not None
            and block_number >= self.flashbots_from
            and (self.flashbots_until is None
                 or block_number < self.flashbots_until))
        if in_flashbots:
            return CHANNEL_FLASHBOTS
        in_private = (
            self.private_pool is not None
            and self.private_from is not None
            and block_number >= self.private_from
            and (self.private_until is None
                 or block_number < self.private_until))
        if in_private:
            return CHANNEL_PRIVATE
        return CHANNEL_PUBLIC


@dataclass
class GroundTruth:
    """What actually happened, for scoring the measurement pipeline."""

    strategy: str
    searcher: Address
    channel: str
    tx_hashes: Tuple[Hash32, ...]
    block_submitted: int
    victim_hash: Optional[Hash32] = None
    expected_profit_wei: int = 0
    uses_flash_loan: bool = False
    faulty: bool = False
    private_pool: Optional[str] = None


@dataclass
class Submission:
    """One unit of searcher output, routed by channel."""

    channel: str
    ground_truth: GroundTruth
    bundle: Optional[Bundle] = None          # flashbots channel
    txs: Tuple[Transaction, ...] = ()        # public channel
    private_sequence: Tuple[Transaction, ...] = ()  # private channel
    private_pool: Optional[str] = None


@dataclass
class MarketView:
    """Everything a searcher may legitimately observe in one block."""

    state: Any
    registry: ExchangeRegistry
    oracle: PriceOracle
    pending: List[Transaction]
    block_number: int
    fees: FeeModel
    rng: random.Random
    lending_pools: List[LendingPool] = field(default_factory=list)
    flash_provider: Optional[FlashLoanProvider] = None
    competition: Dict[str, int] = field(default_factory=dict)
    #: Per-block cache of (pool, unhealthy loans); the world computes this
    #: once so N liquidation searchers don't rescan every loan book.
    liquidatable_by_pool: Optional[List[Tuple[LendingPool, list]]] = None
    #: Demand bursts: real bundle arrivals cluster (§4.1's mean of 2.71
    #: bundles per Flashbots block with a median of 2); during a rush the
    #: "other" users are several times likelier to submit.
    bundle_rush: bool = False
    #: Scratch cache shared by every searcher scanning this view.  Only
    #: pure, rng-free computations over the view's frozen world state may
    #: be stored here (quotes, cycle projections, price gaps, sandwich
    #: plans); anything that draws from ``rng`` must never be cached.
    #: None disables caching entirely (the bit-identical reference path).
    memo: Optional[Dict[Any, Any]] = None

    @property
    def target_block(self) -> int:
        return self.block_number + 1


class Searcher:
    """Base searcher: identity, channel policy, funding bookkeeping."""

    strategy = STRATEGY_OTHER

    def __init__(self, name: str, policy: ChannelPolicy,
                 active_from: int = 1,
                 active_until: Optional[int] = None,
                 faulty_rate: float = 0.0,
                 uses_flash_loans: bool = False,
                 min_profit_wei: int = 10**16,
                 attempt_rate: float = 1.0,
                 tip_mean: Optional[float] = None) -> None:
        if not 0.0 <= faulty_rate <= 1.0:
            raise ValueError("faulty_rate must be within [0, 1]")
        if not 0.0 < attempt_rate <= 1.0:
            raise ValueError("attempt_rate must be within (0, 1]")
        if tip_mean is not None and not 0.0 < tip_mean <= 1.0:
            raise ValueError("tip_mean must be within (0, 1]")
        self.name = name
        self.address: Address = address_from_label(f"searcher:{name}")
        self.policy = policy
        self.active_from = active_from
        self.active_until = active_until
        self.faulty_rate = faulty_rate
        self.uses_flash_loans = uses_flash_loans
        self.min_profit_wei = min_profit_wei
        #: probability of competing for a given block at all (bot uptime,
        #: node latency, gas-estimation misses); thins bundle supply to
        #: realistic densities without changing per-event economics.
        self.attempt_rate = attempt_rate
        #: override for the sealed-bid mean tip fraction (ablations);
        #: None → the market default in repro.flashbots.auction.
        self.tip_mean = tip_mean

    def is_active(self, block_number: int) -> bool:
        if block_number < self.active_from:
            return False
        if self.active_until is not None and \
                block_number >= self.active_until:
            return False
        return True

    def scan(self, view: MarketView) -> List[Submission]:
        """Produce this block's submissions (empty when nothing found)."""
        raise NotImplementedError

    # Shared helpers -----------------------------------------------------------

    def _tip_for(self, view: MarketView, expected_profit: int,
                 faulty: bool) -> int:
        """Coinbase tip for a Flashbots bundle (sealed-bid overbidding).

        A faulty searcher (Section 5.2's buggy contracts) overestimates its
        profit and tips more than the extraction is worth — the source of
        negative Flashbots profits.
        """
        competition = view.competition.get(self.strategy, 3)
        if self.tip_mean is not None:
            fraction = sealed_bid_tip_fraction(view.rng, competition,
                                               mean=self.tip_mean)
        else:
            fraction = sealed_bid_tip_fraction(view.rng, competition)
        if faulty:
            fraction = 1.1 + view.rng.random() * 0.5
        return max(1, int(expected_profit * fraction))

    def _is_faulty(self, rng: random.Random) -> bool:
        return rng.random() < self.faulty_rate

    def _truth(self, view: MarketView, channel: str, txs, victim_hash,
               profit: int, flash_loan: bool, faulty: bool,
               pool_name: Optional[str] = None) -> GroundTruth:
        return GroundTruth(
            strategy=self.strategy, searcher=self.address,
            channel=channel,
            tx_hashes=tuple(tx.hash for tx in txs),
            block_submitted=view.block_number, victim_hash=victim_hash,
            expected_profit_wei=profit, uses_flash_loan=flash_loan,
            faulty=faulty, private_pool=pool_name)

    def _package(self, view: MarketView, txs: Sequence[Transaction],
                 victim_tx: Optional[Transaction], profit: int,
                 flash_loan: bool, faulty: bool,
                 include_victim_in_bundle: bool = True) -> Submission:
        """Route crafted transactions through the current channel."""
        channel = self.policy.channel_at(view.target_block)
        victim_hash = victim_tx.hash if victim_tx is not None else None
        if channel == CHANNEL_FLASHBOTS:
            bundle_txs = list(txs)
            if victim_tx is not None and include_victim_in_bundle:
                bundle_txs = self._weave_victim(txs, victim_tx)
            bundle = make_bundle(self.address, bundle_txs,
                                 view.target_block)
            truth = self._truth(view, channel, txs, victim_hash, profit,
                                flash_loan, faulty)
            return Submission(channel=channel, bundle=bundle,
                              ground_truth=truth)
        if channel == CHANNEL_PRIVATE:
            sequence = list(txs)
            if victim_tx is not None and include_victim_in_bundle:
                sequence = self._weave_victim(txs, victim_tx)
            truth = self._truth(view, channel, txs, victim_hash, profit,
                                flash_loan, faulty,
                                pool_name=self.policy.private_pool)
            return Submission(channel=channel,
                              private_sequence=tuple(sequence),
                              private_pool=self.policy.private_pool,
                              ground_truth=truth)
        truth = self._truth(view, channel, txs, victim_hash, profit,
                            flash_loan, faulty)
        return Submission(channel=channel, txs=tuple(txs),
                          ground_truth=truth)

    @staticmethod
    def _weave_victim(txs: Sequence[Transaction],
                      victim_tx: Transaction) -> List[Transaction]:
        """Insert the victim between the legs (sandwich) or ahead of a
        single backrun transaction."""
        txs = list(txs)
        if len(txs) == 2:
            return [txs[0], victim_tx, txs[1]]
        return [victim_tx] + txs


class SandwichSearcher(Searcher):
    """Definition 1: frontrun + backrun around a pending victim swap."""

    strategy = STRATEGY_SANDWICH

    def __init__(self, *args, max_targets_per_block: int = 1,
                 visibility: float = 0.65,
                 pick_random_targets: bool = False, **kwargs):
        super().__init__(*args, **kwargs)
        if not 0.0 < visibility <= 1.0:
            raise ValueError("visibility must be within (0, 1]")
        self.max_targets_per_block = max_targets_per_block
        #: True → pick uniformly among visible victims instead of racing
        #: everyone for the largest (how self-extracting miners avoid
        #: colliding with the Flashbots crowd).
        self.pick_random_targets = pick_random_targets
        #: probability of spotting any given pending victim in time — the
        #: latency/coverage imperfection that spreads real searchers
        #: across different victims instead of all piling on the largest.
        self.visibility = visibility

    def scan(self, view: MarketView) -> List[Submission]:
        victims = self._rank_victims(view)
        submissions: List[Submission] = []
        for victim_tx, pool in victims[:self.max_targets_per_block]:
            submission = self._attack(view, victim_tx, pool)
            if submission is not None:
                submissions.append(submission)
        return submissions

    def _rank_victims(self, view: MarketView):
        """Pending sandwichable swaps, largest first."""
        candidates = []
        for tx in view.pending:
            intent = tx.intent
            if not isinstance(intent, SwapIntent):
                continue
            if tx.sender == self.address:
                continue
            pool = view.registry.get(intent.pool_address)
            if pool is None or pool.venue not in SANDWICH_VENUES:
                continue
            if not isinstance(pool, ConstantProductPool):
                continue
            if view.rng.random() > self.visibility:
                continue
            candidates.append((tx, pool))
        if self.pick_random_targets:
            view.rng.shuffle(candidates)
        else:
            candidates.sort(key=lambda item: -item[0].intent.amount_in)
        return candidates

    def _plan_attack(self, view: MarketView, pool: ConstantProductPool,
                     intent: SwapIntent, capital: int):
        """Pure sandwich sizing against frozen state (no rng): the plan
        and its ETH-denominated profit, or None when unattackable."""
        token_in = intent.token_in
        token_out = pool.other(token_in)
        if not (view.oracle.has_price(token_in)
                and view.oracle.has_price(token_out)):
            return None
        reserve_in = pool.reserve_of(view.state, token_in)
        reserve_out = pool.reserve_of(view.state, token_out)
        plan = plan_sandwich(reserve_in, reserve_out, intent.amount_in,
                             intent.min_amount_out, pool.fee_bps,
                             max_capital=capital)
        if plan is None:
            return None
        profit_eth = view.oracle.value_in_eth(token_in,
                                              plan.expected_profit)
        return plan, profit_eth

    def _attack(self, view: MarketView, victim_tx: Transaction,
                pool: ConstantProductPool) -> Optional[Submission]:
        intent: SwapIntent = victim_tx.intent
        token_in = intent.token_in
        token_out = pool.other(token_in)
        capital = view.state.token_balance(token_in, self.address)
        memo = view.memo
        key = ("sandwich", pool.address, victim_tx.hash, capital)
        if memo is not None and key in memo:
            planned = memo[key]
        else:
            planned = self._plan_attack(view, pool, intent, capital)
            if memo is not None:
                memo[key] = planned
        if planned is None:
            return None
        plan, profit_eth = planned
        if profit_eth < self.min_profit_wei:
            return None

        faulty = self._is_faulty(view.rng)
        channel = self.policy.channel_at(view.target_block)
        nonce = view.state.nonce(self.address)
        # Guard the backrun with a minimum output near the projection so a
        # lost race reverts instead of dumping at a loss — unless the
        # searcher's contract is faulty (Section 5.2).
        back_min = 0 if faulty else plan.backrun_out * 995 // 1000

        if channel == CHANNEL_FLASHBOTS:
            victim_price = view.fees.effective_price(victim_tx)
            tip = self._tip_for(view, profit_eth, faulty)
            front_fields = view.fees.bundle_fields()
            back_fields = view.fees.bundle_fields()
        else:
            victim_price = view.fees.effective_price(victim_tx)
            tip = 0
            if channel == CHANNEL_PUBLIC:
                front_fields = view.fees.frontrun_fields(
                    view.rng, victim_price, profit_eth, 150_000,
                    view.competition.get(self.strategy, 3))
            else:
                front_fields = view.fees.bundle_fields()
            back_fields = (view.fees.backrun_fields(victim_price)
                           if channel == CHANNEL_PUBLIC
                           else view.fees.bundle_fields())

        front = Transaction(
            sender=self.address, nonce=nonce, to=pool.address,
            gas_limit=150_000,
            intent=SwapIntent(pool.address, token_in, plan.frontrun_in,
                              min_amount_out=0 if faulty
                              else plan.frontrun_out),
            meta={"mev": self.strategy, "leg": "front"},
            **front_fields)
        back = Transaction(
            sender=self.address, nonce=nonce + 1, to=pool.address,
            gas_limit=150_000,
            intent=SwapIntent(pool.address, token_out, plan.frontrun_out,
                              min_amount_out=back_min,
                              coinbase_tip=tip),
            meta={"mev": self.strategy, "leg": "back"},
            **back_fields)
        return self._package(view, [front, back], victim_tx, profit_eth,
                             flash_loan=False, faulty=faulty)


class ArbitrageSearcher(Searcher):
    """Definition 2: close price gaps across venues, optimally sized."""

    strategy = STRATEGY_ARBITRAGE

    def scan(self, view: MarketView) -> List[Submission]:
        copied = self._copy_pending_arbitrage(view)
        if copied is not None:
            return [copied]
        passive = self._passive_gap_search(view)
        return [passive] if passive is not None else []

    # Proactive: copy a pending victim arbitrage and frontrun it -----------

    def _copy_pending_arbitrage(self, view: MarketView,
                                ) -> Optional[Submission]:
        for tx in view.pending:
            intent = tx.intent
            if not isinstance(intent, ArbitrageIntent):
                continue
            if tx.sender == self.address:
                continue
            if tx.meta.get("mev") is not None:
                continue  # never copy a fellow professional (too risky)
            profit = self._project_cycle(view, intent.route,
                                         intent.token_in,
                                         intent.amount_in)
            if profit is None or profit < self.min_profit_wei:
                continue
            return self._craft(view, list(intent.route), intent.token_in,
                               intent.amount_in, profit, victim_tx=tx)
        return None

    # Passive: scan venue price gaps -------------------------------------------

    def _passive_gap_search(self, view: MarketView,
                            ) -> Optional[Submission]:
        best: Optional[Tuple[int, list, int]] = None
        for token in self._tokens(view):
            gap = self._best_gap(view, token)
            if gap is None:
                continue
            cheap, dear, ratio = gap
            if ratio < 1.004:  # below fee floor, skip early
                continue
            plan = self._size_cycle(view, dear, cheap)
            if plan is None:
                continue
            amount_in, profit = plan
            if profit < self.min_profit_wei:
                continue
            if best is None or profit > best[0]:
                best = (profit, [dear.address, cheap.address], amount_in)
        for route in self._triangle_candidates(view):
            plan = self._probe_cycle(view, route)
            if plan is None:
                continue
            amount_in, profit = plan
            if profit < self.min_profit_wei:
                continue
            if best is None or profit > best[0]:
                best = (profit, route, amount_in)
        if best is None:
            return None
        profit, route, amount_in = best
        return self._craft(view, route, WETH, amount_in, profit,
                           victim_tx=None)

    def _best_gap(self, view: MarketView, token: str):
        """WETH/token price gap across venues (memoized: pure in state)."""
        memo = view.memo
        key = ("gap", token)
        if memo is not None and key in memo:
            return memo[key]
        gap = view.registry.best_price_gap(view.state, WETH, token)
        if memo is not None:
            memo[key] = gap
        return gap

    def _triangle_candidates(self, view: MarketView) -> List[List[str]]:
        """Three-hop cycles through a non-WETH connector pool.

        Real searchers close triangular gaps (e.g. WETH→DAI→USDC→WETH
        through Curve) that no two-pool comparison can see; the cyclic
        detection heuristic handles any length, so these extractions
        exercise the ≥3-venue path of the paper's arbitrage dataset.
        """
        memo = view.memo
        if memo is not None and "arb:triangles" in memo:
            return memo["arb:triangles"]
        routes: List[List[str]] = []
        connectors = [p for p in view.registry.pools
                      if not p.has_token(WETH)
                      and min(p.reserves(view.state)) > 0]
        for connector in connectors:
            token_a, token_b = connector.token0, connector.token1
            pools_a = [p for p in
                       view.registry.pools_for_pair(WETH, token_a)
                       if min(p.reserves(view.state)) > 0]
            pools_b = [p for p in
                       view.registry.pools_for_pair(WETH, token_b)
                       if min(p.reserves(view.state)) > 0]
            # The deepest venue on each side is the realistic route.
            def deepest(pools):
                return max(pools, key=lambda p:
                           p.reserve_of(view.state, WETH),
                           default=None)
            pool_a, pool_b = deepest(pools_a), deepest(pools_b)
            if pool_a is None or pool_b is None:
                continue
            routes.append([pool_a.address, connector.address,
                           pool_b.address])
            routes.append([pool_b.address, connector.address,
                           pool_a.address])
        if memo is not None:
            memo["arb:triangles"] = routes
        return routes

    def _tokens(self, view: MarketView) -> List[str]:
        memo = view.memo
        if memo is not None and "arb:tokens" in memo:
            return memo["arb:tokens"]
        tokens = {p.token0 for p in view.registry.pools}
        tokens |= {p.token1 for p in view.registry.pools}
        tokens.discard(WETH)
        result = sorted(tokens)
        if memo is not None:
            memo["arb:tokens"] = result
        return result

    def _size_cycle(self, view: MarketView, dear, cheap,
                    ) -> Optional[Tuple[int, int]]:
        """Optimal WETH input through (dear → cheap); None if unprofitable.

        Uses the closed form when both pools are constant-product, probe
        search otherwise (Curve legs).
        """
        token = cheap.other(WETH)
        if isinstance(dear, ConstantProductPool) and \
                isinstance(cheap, ConstantProductPool):
            memo = view.memo
            key = ("size2", dear.address, cheap.address)
            if memo is not None and key in memo:
                return memo[key]
            plan = optimal_two_pool_arbitrage(
                dear.reserve_of(view.state, WETH),
                dear.reserve_of(view.state, token),
                cheap.reserve_of(view.state, token),
                cheap.reserve_of(view.state, WETH),
                dear.fee_bps, cheap.fee_bps)
            result = (None if plan is None
                      else (plan.amount_in, plan.expected_profit))
            if memo is not None:
                memo[key] = result
            return result
        return self._probe_cycle(view, [dear.address, cheap.address])

    @fast_path(reference="_probe_cycle_reference", toggle="memo")
    def _probe_cycle(self, view: MarketView, route: List[str],
                     ) -> Optional[Tuple[int, int]]:
        """Geometric probe search for non-CP legs.

        On the fast path the route's reserves are read once and the whole
        probe ladder is evaluated through the pools' pure quote functions
        (``get_amount_out``/``stable_amount_out``/``weighted_amount_out``
        — each exactly equals ``quote_out`` given the same reserves, and
        reserves cannot change between rungs because probing mutates no
        state).  The reference path quotes through the pools per rung.
        """
        capital = max(view.state.token_balance(WETH, self.address),
                      10**20)
        memo = view.memo
        if memo is None:
            return self._probe_cycle_reference(view, route, capital)
        key = ("probe", tuple(route), capital)
        if key in memo:
            return memo[key]
        hops, sig = self._route_hops(view, route, capital)
        if sig is not None:
            cached = _PROBE_CACHE.get(sig, _MISS)
            if cached is not _MISS:
                memo[key] = cached
                return cached
        best: Optional[Tuple[int, int]] = None
        first = max(1, capital // 256)
        amount = first
        while amount <= capital:
            profit = (self._eval_hops(hops, amount)
                      if hops is not None else None)
            # First-rung dominance prune (exact): every pool curve is
            # concave through the origin in real arithmetic, so the
            # cycle's output/input ratio is non-increasing in the input.
            # If the smallest rung already loses more than 1 ppm — six
            # orders of magnitude beyond the few-wei slack integer
            # flooring can introduce (guarded by the rung-size floor) —
            # every larger rung is strictly unprofitable too and the
            # ladder's result is None exactly.
            if (amount == first and first >= 10**12
                    and profit is not None
                    and profit <= -(first // 1_000_000)):
                break
            if profit is not None and (best is None or profit > best[1]):
                best = (amount, profit)
            amount *= 2
        result = None if best is None or best[1] <= 0 else best
        memo[key] = result
        if sig is not None:
            if len(_PROBE_CACHE) >= _PROBE_CACHE_MAX:
                _PROBE_CACHE.clear()
            _PROBE_CACHE[sig] = result
        return result

    def _probe_cycle_reference(self, view: MarketView, route: List[str],
                               capital: int) -> Optional[Tuple[int, int]]:
        """Naive per-rung probe (the ``fast_paths=False`` world)."""
        best: Optional[Tuple[int, int]] = None
        amount = max(1, capital // 256)
        while amount <= capital:
            profit = self._project_cycle(view, route, WETH, amount)
            if profit is not None and (best is None or profit > best[1]):
                best = (amount, profit)
            amount *= 2
        return None if best is None or best[1] <= 0 else best

    @staticmethod
    def _route_hops(view: MarketView, route: List[str], capital: int,
                    ) -> Tuple[Optional[list], Optional[tuple]]:
        """Resolve a WETH cycle into per-hop pure quote closures.

        Returns ``(hops, signature)`` where each hop is ``(fn, args)``
        with ``fn(amount, *args) == pool.quote_out(state, token, amount)``
        and the signature keys the cross-block probe cache on every
        reserve the ladder reads.  ``hops`` is None when the route is
        invalid (unknown pool, token mismatch, or not a WETH cycle) —
        every projection on such a route is None.  The signature stays
        usable in that case: the same registry lookup fails next block
        too, so a cached None is still exact.
        """
        state = view.state
        hops = []
        parts = []
        token = WETH
        valid = True
        for address in route:
            pool = view.registry.get(address)
            if pool is None:
                return None, None
            reserve0 = state.token_balance(pool.token0, pool.address)
            reserve1 = state.token_balance(pool.token1, pool.address)
            parts.append((reserve0, reserve1))
            if not valid or not pool.has_token(token):
                valid = False
                continue
            token_in = token
            if token_in == pool.token0:
                reserve_in, reserve_out = reserve0, reserve1
                token = pool.token1
            else:
                reserve_in, reserve_out = reserve1, reserve0
                token = pool.token0
            if isinstance(pool, ConstantProductPool):
                hops.append((get_amount_out,
                             (reserve_in, reserve_out, pool.fee_bps)))
            elif isinstance(pool, StableSwapPool):
                hops.append((stable_amount_out,
                             (reserve_in, reserve_out, pool.amp,
                              pool.fee_bps)))
            elif isinstance(pool, WeightedPool):
                hops.append((weighted_amount_out,
                             (reserve_in, reserve_out,
                              pool.weight_of(token_in),
                              pool.weight_of(token), pool.fee_bps)))
            else:  # unknown pool kind: quote through the pool itself
                hops.append((_quote_via_pool, (pool, state, token_in)))
        sig = (tuple(route), capital, tuple(parts))
        if not valid or token != WETH:
            return None, sig
        return hops, sig

    @staticmethod
    def _eval_hops(hops: list, amount_in: int) -> Optional[int]:
        """Profit of the pre-resolved cycle for one input amount."""
        amount = amount_in
        for fn, args in hops:
            try:
                amount = fn(amount, *args)
            except (ValueError, ArithmeticError):
                return None
            if amount <= 0:
                return None
        return amount - amount_in

    def _project_cycle(self, view: MarketView, route: List[str],
                       token_in: str, amount_in: int) -> Optional[int]:
        """Expected profit of a cycle using current quotes; None if any
        hop is invalid.  Memoized on the view: the projection reads only
        frozen pool reserves, so every searcher probing the same route
        and size shares one computation."""
        memo = view.memo
        if memo is None:
            return self._project_cycle_uncached(view, route, token_in,
                                                amount_in)
        key = ("cycle", tuple(route), token_in, amount_in)
        if key in memo:
            return memo[key]
        result = self._project_cycle_uncached(view, route, token_in,
                                              amount_in)
        memo[key] = result
        return result

    def _project_cycle_uncached(self, view: MarketView, route: List[str],
                                token_in: str, amount_in: int,
                                ) -> Optional[int]:
        token = token_in
        amount = amount_in
        state = view.state
        for address in route:
            pool = view.registry.get(address)
            if pool is None or not pool.has_token(token):
                return None
            try:
                amount = pool.quote_out(state, token, amount)
            except (ValueError, ArithmeticError):
                return None
            if amount <= 0:
                return None
            token = pool.other(token)
        if token != token_in:
            return None
        return amount - amount_in

    def _craft(self, view: MarketView, route: List[str], token_in: str,
               amount_in: int, profit: int,
               victim_tx: Optional[Transaction]) -> Submission:
        # Routes may come from the shared view memo; copy before handing
        # one to an intent so no two submissions alias the same list.
        route = list(route)
        faulty = self._is_faulty(view.rng)
        channel = self.policy.channel_at(view.target_block)
        capital = view.state.token_balance(token_in, self.address)
        use_flash = (self.uses_flash_loans
                     and view.flash_provider is not None
                     and amount_in > capital)
        tip = (self._tip_for(view, profit, faulty)
               if channel == CHANNEL_FLASHBOTS else 0)
        arb = ArbitrageIntent(route=route, token_in=token_in,
                              amount_in=amount_in,
                              min_profit=0 if faulty else 1,
                              coinbase_tip=tip)
        intent = arb
        gas_limit = 200_000 + 100_000 * len(route)
        if use_flash:
            intent = FlashLoanIntent(view.flash_provider.address,
                                     token_in, amount_in, inner=arb)
            gas_limit += 150_000
        if channel == CHANNEL_PUBLIC:
            if victim_tx is not None:
                fields = view.fees.frontrun_fields(
                    view.rng, view.fees.effective_price(victim_tx),
                    profit, gas_limit,
                    view.competition.get(self.strategy, 3))
            else:
                fields = view.fees.frontrun_fields(
                    view.rng, view.fees.prevailing, profit, gas_limit,
                    view.competition.get(self.strategy, 3))
        else:
            fields = view.fees.bundle_fields()
        tx = Transaction(sender=self.address,
                         nonce=view.state.nonce(self.address),
                         to=route[0], gas_limit=gas_limit, intent=intent,
                         meta={"mev": self.strategy}, **fields)
        # A copied arbitrage *frontruns* its victim: the copy must land
        # first, so the victim is never woven ahead of it in a bundle.
        return self._package(view, [tx], victim_tx, profit,
                             flash_loan=use_flash, faulty=faulty,
                             include_victim_in_bundle=False)


class LiquidationSearcher(Searcher):
    """Definition 3: fixed-spread liquidations, passive and proactive."""

    strategy = STRATEGY_LIQUIDATION

    def scan(self, view: MarketView) -> List[Submission]:
        proactive = self._backrun_oracle_update(view)
        if proactive is not None:
            return [proactive]
        passive = self._passive_scan(view)
        return [passive] if passive is not None else []

    def _passive_scan(self, view: MarketView) -> Optional[Submission]:
        if view.liquidatable_by_pool is not None:
            candidates = view.liquidatable_by_pool
        else:
            candidates = [(pool, pool.liquidatable_loans())
                          for pool in view.lending_pools]
        for pool, loans in candidates:
            for loan in loans:
                submission = self._craft(view, pool, loan,
                                         victim_tx=None)
                if submission is not None:
                    return submission
        return None

    def _backrun_oracle_update(self, view: MarketView,
                               ) -> Optional[Submission]:
        """Find a pending oracle update that unlocks a liquidation.

        The open-loan list and each would-unlock verdict are pure in the
        view's state (scans never mutate), so both are memoized per view
        and shared by every competing liquidation searcher.
        """
        memo = view.memo
        for tx in view.pending:
            intent = tx.intent
            if not isinstance(intent, OracleUpdateIntent):
                continue
            for pool in view.lending_pools:
                if memo is None:
                    loans = pool.open_loans()
                else:
                    loans_key = ("liq:open", pool.address)
                    loans = memo.get(loans_key)
                    if loans is None:
                        loans = memo[loans_key] = pool.open_loans()
                for loan in loans:
                    if memo is None:
                        unlocks = self._would_unlock(pool, loan,
                                                     intent.token,
                                                     intent.price_wei)
                    else:
                        unlock_key = ("liq:unlock", pool.address,
                                      loan.loan_id, intent.token,
                                      intent.price_wei)
                        unlocks = memo.get(unlock_key)
                        if unlocks is None:
                            unlocks = memo[unlock_key] = \
                                self._would_unlock(pool, loan,
                                                   intent.token,
                                                   intent.price_wei)
                    if not unlocks:
                        continue
                    submission = self._craft(view, pool, loan,
                                             victim_tx=tx,
                                             price_override=(
                                                 intent.token,
                                                 intent.price_wei))
                    if submission is not None:
                        return submission
        return None

    @staticmethod
    def _would_unlock(pool: LendingPool, loan, token: str,
                      new_price: int) -> bool:
        """Health factor of ``loan`` if ``token`` repriced to
        ``new_price`` — liquidatable and not already liquidatable now."""
        if pool.is_liquidatable(loan):
            return False

        def value(tok: str, amount: int) -> int:
            price = new_price if tok == token else pool.oracle.price(tok)
            return amount * price // PRICE_SCALE

        debt_value = value(loan.debt_token, loan.debt_amount)
        if debt_value == 0:
            return False
        collateral_value = value(loan.collateral_token,
                                 loan.collateral_amount)
        health = (collateral_value * pool.liquidation_threshold_bps
                  / 10_000 / debt_value)
        return health < 1.0

    def _craft(self, view: MarketView, pool: LendingPool, loan,
               victim_tx: Optional[Transaction] = None,
               price_override: Optional[Tuple[str, int]] = None,
               ) -> Optional[Submission]:
        repay = pool.max_repay(loan)
        if repay <= 0:
            return None

        def price_of(token: str) -> int:
            if price_override is not None and token == price_override[0]:
                return price_override[1]
            return view.oracle.price(token)

        repay_value = repay * price_of(loan.debt_token) // PRICE_SCALE
        bonus_value = repay_value * (10_000 + pool.bonus_bps) // 10_000
        seize = min(bonus_value * PRICE_SCALE
                    // price_of(loan.collateral_token),
                    loan.collateral_amount)
        seize_value = seize * price_of(loan.collateral_token) \
            // PRICE_SCALE
        profit = seize_value - repay_value
        if profit < self.min_profit_wei:
            return None

        faulty = self._is_faulty(view.rng)
        channel = self.policy.channel_at(view.target_block)
        capital = view.state.token_balance(loan.debt_token, self.address)
        use_flash = (self.uses_flash_loans
                     and view.flash_provider is not None
                     and repay > capital)
        tip = (self._tip_for(view, profit, faulty)
               if channel == CHANNEL_FLASHBOTS else 0)
        liq = LiquidationIntent(pool.address, loan.loan_id, repay,
                                coinbase_tip=tip)
        gas_limit = 450_000
        intent = liq
        if use_flash:
            swap_back = self._collateral_unwind(view, loan)
            if swap_back is None:
                return None
            intent = FlashLoanIntent(
                view.flash_provider.address, loan.debt_token, repay,
                inner=SequenceIntent([liq, swap_back]))
            gas_limit += 300_000
        if channel == CHANNEL_PUBLIC:
            anchor = (view.fees.effective_price(victim_tx)
                      if victim_tx is not None else view.fees.prevailing)
            if victim_tx is not None:
                # Backrun: bid just under the oracle update's price.
                fields = view.fees.backrun_fields(anchor)
            else:
                fields = view.fees.frontrun_fields(
                    view.rng, anchor, profit, gas_limit,
                    view.competition.get(self.strategy, 3))
        else:
            fields = view.fees.bundle_fields()
        tx = Transaction(sender=self.address,
                         nonce=view.state.nonce(self.address),
                         to=pool.address, gas_limit=gas_limit,
                         intent=intent, meta={"mev": self.strategy},
                         **fields)
        return self._package(view, [tx], victim_tx, profit,
                             flash_loan=use_flash, faulty=faulty)

    def _collateral_unwind(self, view: MarketView, loan,
                           ) -> Optional[SwapAllIntent]:
        """Swap seized collateral back to the debt token (flash repay)."""
        pools = view.registry.pools_for_pair(loan.collateral_token,
                                             loan.debt_token)
        liquid = [p for p in pools
                  if min(p.reserves(view.state)) > 0]
        if not liquid:
            return None
        return SwapAllIntent(liquid[0].address, loan.collateral_token)


class OtherBundleUser(Searcher):
    """Non-MEV Flashbots users: order-dependent trades and MEV-protected
    swaps submitted as single-transaction bundles (the dominant bundle
    population in Figure 7)."""

    strategy = STRATEGY_OTHER

    def __init__(self, *args, trade_size_eth: float = 2.0,
                 tip_eth: float = 0.004, activity: float = 0.03,
                 **kwargs):
        super().__init__(*args, **kwargs)
        if not 0.0 <= activity <= 1.0:
            raise ValueError("activity must be within [0, 1]")
        self.trade_size_eth = trade_size_eth
        self.tip_eth = tip_eth
        self.activity = activity

    def scan(self, view: MarketView) -> List[Submission]:
        if self.policy.channel_at(view.target_block) != \
                CHANNEL_FLASHBOTS:
            return []
        activity = self.activity * (4.0 if view.bundle_rush else 1.0)
        if view.rng.random() >= activity:
            return []
        memo = view.memo
        if memo is not None and "other:weth-pools" in memo:
            pools = memo["other:weth-pools"]
        else:
            pools = [p for p in view.registry.pools
                     if p.has_token(WETH)
                     and isinstance(p, ConstantProductPool)
                     and min(p.reserves(view.state)) > 0]
            if memo is not None:
                memo["other:weth-pools"] = pools
        if not pools:
            return []
        pool = view.rng.choice(pools)
        amount = max(1, int(self.trade_size_eth
                            * view.rng.uniform(0.3, 2.0) * 10**18))
        capital = view.state.token_balance(WETH, self.address)
        amount = min(amount, capital)
        if amount <= 0:
            return []
        quote = pool.quote_out(view.state, WETH, amount)
        tip = max(1, int(self.tip_eth * view.rng.uniform(0.5, 2.0)
                         * 10**18))
        tx = Transaction(
            sender=self.address, nonce=view.state.nonce(self.address),
            to=pool.address, gas_limit=150_000,
            intent=SwapIntent(pool.address, WETH, amount,
                              min_amount_out=quote * 999 // 1000,
                              coinbase_tip=tip),
            meta={"mev": None, "other_bundle": True},
            **view.fees.bundle_fields())
        truth = self._truth(view, CHANNEL_FLASHBOTS, [tx], None, 0,
                            False, False)
        bundle = make_bundle(self.address, [tx], view.target_block)
        return [Submission(channel=CHANNEL_FLASHBOTS, bundle=bundle,
                           ground_truth=truth)]
