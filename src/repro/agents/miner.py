"""Miner agents: hashpower, Flashbots enrollment, self-MEV, payouts.

The paper's Figures 4 and 5 hinge on the miner population's structure: a
long-tailed hashpower distribution (1–2 dominant pools, ≤55 participants)
whose members enroll in Flashbots big-pools-first, capturing ~99.9 % of
hashpower while democratizing nothing.  Section 6.3 additionally finds
miners (Flexpool, F2Pool) extracting MEV *privately for their own
account* — modelled here with a per-miner ``self_mev`` flag and a distinct
extraction account, exactly the signal the pool-attribution analysis
recovers.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.chain.types import Address, address_from_label


@dataclass(frozen=True)
class PayoutSchedule:
    """Mining-pool payout batches (e.g. F2Pool's 700-tx payout bundle)."""

    interval_blocks: int
    recipients: int
    amount_wei: int

    def due_at(self, block_number: int) -> bool:
        return block_number % self.interval_blocks == 0


@dataclass
class MinerProfile:
    """One miner (or mining pool) in the simulation."""

    name: str
    hashpower: float
    flashbots_join_block: Optional[int] = None
    flashbots_leave_block: Optional[int] = None
    private_pools: Tuple[str, ...] = ()
    self_mev: bool = False
    payout_schedule: Optional[PayoutSchedule] = None
    address: Address = field(init=False)
    mev_account: Address = field(init=False)

    def __post_init__(self) -> None:
        if self.hashpower <= 0:
            raise ValueError("hashpower must be positive")
        self.address = address_from_label(f"miner:{self.name}")
        # The separate account a self-extracting miner trades from
        # (Section 6.3's "account address whose private sandwiches were
        # only ever mined by a single miner").
        self.mev_account = address_from_label(f"miner-mev:{self.name}")

    def in_flashbots(self, block_number: int) -> bool:
        if self.flashbots_join_block is None:
            return False
        if block_number < self.flashbots_join_block:
            return False
        if (self.flashbots_leave_block is not None
                and block_number >= self.flashbots_leave_block):
            return False
        return True


class MinerSet:
    """The miner population with hashpower-weighted block assignment."""

    def __init__(self, miners: Sequence[MinerProfile]) -> None:
        if not miners:
            raise ValueError("need at least one miner")
        names = [m.name for m in miners]
        if len(set(names)) != len(names):
            raise ValueError("miner names must be unique")
        self.miners: List[MinerProfile] = list(miners)
        self._weights = [m.hashpower for m in self.miners]

    def __len__(self) -> int:
        return len(self.miners)

    def by_address(self, address: Address) -> Optional[MinerProfile]:
        for miner in self.miners:
            if miner.address == address:
                return miner
        return None

    def pick(self, rng: random.Random) -> MinerProfile:
        """Select the next block's miner ∝ hashpower (the PoW lottery)."""
        return rng.choices(self.miners, weights=self._weights, k=1)[0]

    def total_hashpower(self) -> float:
        return sum(self._weights)

    def flashbots_members(self, block_number: int) -> List[MinerProfile]:
        return [m for m in self.miners if m.in_flashbots(block_number)]

    def flashbots_hashpower_share(self, block_number: int) -> float:
        """Ground-truth enrolled share (the quantity Figure 4 estimates)."""
        enrolled = sum(m.hashpower for m in
                       self.flashbots_members(block_number))
        return enrolled / self.total_hashpower()


def zipf_hashpowers(count: int, exponent: float = 1.1,
                    scale: float = 1_000.0) -> List[float]:
    """A long-tailed hashpower distribution: weight ∝ 1/rank^exponent.

    Matches the empirical shape of Ethereum mining (Gencer et al. [35]):
    one or two dominant pools and a long tail of small miners.
    """
    if count <= 0:
        raise ValueError("count must be positive")
    if exponent <= 0:
        raise ValueError("exponent must be positive")
    return [scale / (rank ** exponent) for rank in range(1, count + 1)]
