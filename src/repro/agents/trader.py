"""Background market participants: retail traders, borrowers, keepers.

These agents generate the organic transaction flow MEV feeds on: swaps
with imperfect slippage protection (sandwich victims), naive arbitrage
attempts (copy-frontrun victims), collateralized loans drifting toward
liquidation, and the oracle updates that push them over (backrun
triggers).  They also produce plain transfers — the traffic that makes
public/private classification non-trivial.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.agents.fees import FeeModel
from repro.chain.intents import TokenTransferIntent
from repro.chain.transaction import Transaction
from repro.chain.types import Address, address_from_label, ether
from repro.dex.amm import ConstantProductPool, get_amount_out
from repro.dex.registry import ExchangeRegistry
from repro.dex.router import ArbitrageIntent, SwapIntent
from repro.dex.stableswap import StableSwapPool, stable_amount_out
from repro.dex.token import WETH
from repro.lending.oracle import OracleUpdateIntent, PriceOracle
from repro.lending.pool import BorrowIntent, LendingPool
from repro.sim.prices import PriceUniverse


class TraderPopulation:
    """Retail accounts producing swaps, transfers and naive arbitrage."""

    def __init__(self, rng: random.Random, accounts: int = 200,
                 mean_swap_eth: float = 3.0,
                 funding_eth: float = 10_000.0) -> None:
        if accounts <= 0:
            raise ValueError("need at least one trader account")
        self.rng = rng
        self.accounts: List[Address] = [
            address_from_label(f"trader:{i}") for i in range(accounts)]
        self.mean_swap_eth = mean_swap_eth
        self.funding_eth = funding_eth
        #: static pool prefilters keyed by (kind, registry identity,
        #: pool count) — pools are only ever added, so the count is a
        #: sufficient registry version; liquidity is re-checked per call.
        self._pool_lists: dict = {}

    def __getstate__(self):
        # The prefilter cache is keyed by id(registry) — a memory
        # address — so pickling it would make seal bytes depend on the
        # process that produced them.  Drop it; rebuilding is a pure
        # filter over registry.pools and draws no randomness.
        state = self.__dict__.copy()
        state["_pool_lists"] = {}
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._pool_lists = {}

    def _static_pools(self, registry: ExchangeRegistry,
                      kind: str) -> list:
        key = (kind, id(registry), registry.pool_count)
        cached = self._pool_lists.get(key)
        if cached is None:
            if kind == "weth-cp":
                cached = [p for p in registry.pools
                          if isinstance(p, ConstantProductPool)
                          and p.has_token(WETH)]
            else:  # "non-weth"
                cached = [p for p in registry.pools
                          if not p.has_token(WETH)]
            self._pool_lists[key] = cached
        return cached

    def _pick_account(self, state) -> Address:
        account = self.rng.choice(self.accounts)
        if state.eth_balance(account) < ether(self.funding_eth / 10):
            state.credit_eth(account, ether(self.funding_eth))
        return account

    def _sample_slippage_bps(self) -> int:
        """Mixture of slippage tolerances: some users protect themselves
        tightly, many leave room — the paper's sandwich supply."""
        roll = self.rng.random()
        if roll < 0.30:
            return self.rng.randint(10, 50)       # 0.1–0.5 % (tight)
        if roll < 0.80:
            return self.rng.randint(50, 200)      # 0.5–2 %
        return self.rng.randint(200, 1_000)       # 2–10 % (loose)

    def make_swap(self, state, registry: ExchangeRegistry,
                  fees: FeeModel) -> Optional[Transaction]:
        """One retail swap with sampled size and slippage tolerance."""
        # One reserve read per pool: the same pair feeds the liquidity
        # filter, the depth weights, the size conversion and the quote.
        # Nothing between here and the quote touches pool balances
        # (minting funds the *account*), so the snapshot stays exact.
        pools = []
        depths = []
        reserve_pairs = []
        for p in self._static_pools(registry, "weth-cp"):
            reserve0, reserve1 = p.reserves(state)
            if reserve0 > 0 and reserve1 > 0:
                pools.append(p)
                depths.append(reserve0 if p.token0 == WETH
                              else reserve1)
                reserve_pairs.append((reserve0, reserve1))
        if not pools:
            return None
        # Retail volume concentrates where liquidity is (why Uniswap V1
        # was near-dead by the study window): weight by WETH depth.
        index = self.rng.choices(range(len(pools)), weights=depths,
                                 k=1)[0]
        pool = pools[index]
        reserve0, reserve1 = reserve_pairs[index]
        if pool.token0 == WETH:
            reserve_weth, reserve_token = reserve0, reserve1
        else:
            reserve_weth, reserve_token = reserve1, reserve0
        account = self._pick_account(state)
        size_eth = self.rng.lognormvariate(0, 1.0) * self.mean_swap_eth
        size_eth = min(size_eth, 120.0)
        token_in = WETH if self.rng.random() < 0.5 else pool.other(WETH)
        if token_in == WETH:
            amount_in = ether(size_eth)
            reserve_in, reserve_out = reserve_weth, reserve_token
        else:
            # Convert the ETH-denominated size at the pool's spot price.
            amount_in = ether(size_eth) * reserve_token // reserve_weth
            reserve_in, reserve_out = reserve_token, reserve_weth
        if amount_in <= 0:
            return None
        state.mint_token(token_in, account, amount_in)
        quote = get_amount_out(amount_in, reserve_in, reserve_out,
                               pool.fee_bps)
        if quote <= 0:
            return None
        slippage_bps = self._sample_slippage_bps()
        min_out = quote * (10_000 - slippage_bps) // 10_000
        return Transaction(
            sender=account, nonce=state.nonce(account), to=pool.address,
            gas_limit=150_000,
            intent=SwapIntent(pool.address, token_in, amount_in,
                              min_amount_out=min_out),
            meta={"role": "retail-swap", "slippage_bps": slippage_bps},
            **fees.user_fields(self.rng))

    def make_transfer(self, state, fees: FeeModel) -> Transaction:
        """Plain background transfer (ETH or token)."""
        account = self._pick_account(state)
        recipient = self.rng.choice(self.accounts)
        if self.rng.random() < 0.5:
            return Transaction(sender=account,
                               nonce=state.nonce(account), to=recipient,
                               value=ether(self.rng.uniform(0.01, 2.0)),
                               gas_limit=21_000,
                               meta={"role": "transfer"},
                               **fees.user_fields(self.rng))
        token = self.rng.choice(["DAI", "USDC", "LINK"])
        amount = ether(self.rng.uniform(1, 500))
        state.mint_token(token, account, amount)
        return Transaction(sender=account, nonce=state.nonce(account),
                           to=recipient, gas_limit=60_000,
                           intent=TokenTransferIntent(token, recipient,
                                                      amount),
                           meta={"role": "transfer"},
                           **fees.user_fields(self.rng))

    def make_stable_swap(self, state, registry: ExchangeRegistry,
                         fees: FeeModel) -> Optional[Transaction]:
        """A stablecoin rotation on a non-WETH pool (e.g. Curve's
        DAI/USDC): the flow that pushes stable pegs off parity and opens
        triangular arbitrage routes."""
        # Same single-read snapshot as make_swap: minting funds the
        # account, so the reserves read at filter time still back the
        # quote exactly.
        pools = []
        reserve_pairs = []
        for p in self._static_pools(registry, "non-weth"):
            reserve0, reserve1 = p.reserves(state)
            if reserve0 > 0 and reserve1 > 0:
                pools.append(p)
                reserve_pairs.append((reserve0, reserve1))
        if not pools:
            return None
        index = self.rng.randrange(len(pools))
        pool = pools[index]
        reserve0, reserve1 = reserve_pairs[index]
        account = self._pick_account(state)
        if self.rng.random() < 0.5:
            token_in = pool.token0
            reserve_in, reserve_out = reserve0, reserve1
        else:
            token_in = pool.token1
            reserve_in, reserve_out = reserve1, reserve0
        # Stable rotations are large relative to spot trades.
        amount = ether(self.rng.uniform(10_000, 400_000))
        state.mint_token(token_in, account, amount)
        if isinstance(pool, StableSwapPool):
            quote = stable_amount_out(amount, reserve_in, reserve_out,
                                      pool.amp, pool.fee_bps)
        elif isinstance(pool, ConstantProductPool):
            quote = get_amount_out(amount, reserve_in, reserve_out,
                                   pool.fee_bps)
        else:
            quote = pool.quote_out(state, token_in, amount)
        if quote <= 0:
            return None
        return Transaction(
            sender=account, nonce=state.nonce(account), to=pool.address,
            gas_limit=200_000,
            intent=SwapIntent(pool.address, token_in, amount,
                              min_amount_out=quote * 99 // 100),
            meta={"role": "stable-swap"},
            **fees.user_fields(self.rng))

    def make_naive_arbitrage(self, state, registry: ExchangeRegistry,
                             fees: FeeModel) -> Optional[Transaction]:
        """An amateur's under-sized, modest-fee arbitrage attempt — the
        victim of Definition 2's copy-and-frontrun strategy."""
        tokens = sorted({p.other(WETH) for p in registry.pools
                         if p.has_token(WETH)})
        self.rng.shuffle(tokens)
        for token in tokens:
            gap = registry.best_price_gap(state, WETH, token)
            if gap is None:
                continue
            cheap, dear, ratio = gap
            if ratio < 1.01:
                continue
            account = self._pick_account(state)
            amount = ether(self.rng.uniform(1, 5))
            state.mint_token(WETH, account, amount)
            return Transaction(
                sender=account, nonce=state.nonce(account),
                to=dear.address, gas_limit=400_000,
                intent=ArbitrageIntent(
                    route=[dear.address, cheap.address], token_in=WETH,
                    amount_in=amount, min_profit=1),
                meta={"role": "amateur-arb"},
                **fees.user_fields(self.rng))
        return None


class BorrowerPopulation:
    """Accounts opening risky collateralized loans over time."""

    def __init__(self, rng: random.Random, accounts: int = 50,
                 target_health: float = 1.10) -> None:
        if accounts <= 0:
            raise ValueError("need at least one borrower account")
        if target_health <= 1.0:
            raise ValueError("loans must open healthy")
        self.rng = rng
        self.accounts = [address_from_label(f"borrower:{i}")
                         for i in range(accounts)]
        self.target_health = target_health

    #: Collateral choices: mostly volatile assets (whose price drops are
    #: what makes loans liquidatable), plus some WETH positions that turn
    #: unhealthy when the stable *debt* appreciates against ETH.
    COLLATERAL_TOKENS = ("LINK", "WBTC", "UNI", WETH)

    def make_borrow(self, state, pool: LendingPool, oracle: PriceOracle,
                    fees: FeeModel, debt_token: str = "DAI",
                    ) -> Optional[Transaction]:
        """Open a loan whose health sits just above 1 (fragile by
        construction, as crypto borrowers empirically are)."""
        account = self.rng.choice(self.accounts)
        if state.eth_balance(account) < ether(10):
            state.credit_eth(account, ether(1_000))
        # Restrict to tokens the world's oracle actually prices (custom
        # scenarios may deploy a smaller token universe).
        candidates = [t for t in self.COLLATERAL_TOKENS
                      if oracle.has_price(t)] or [WETH]
        collateral_token = self.rng.choice(candidates)
        collateral_value_target = ether(self.rng.uniform(5, 50))
        price = oracle.price(collateral_token)
        collateral = collateral_value_target * 10**18 // price
        if collateral <= 0:
            return None
        state.mint_token(collateral_token, account, collateral)
        health = self.target_health * self.rng.uniform(1.0, 1.25)
        collateral_value = oracle.value_in_eth(collateral_token,
                                               collateral)
        debt_value = int(collateral_value
                         * pool.liquidation_threshold_bps / 10_000
                         / health)
        debt_price = oracle.price(debt_token)
        debt_amount = debt_value * 10**18 // debt_price
        if debt_amount <= 0:
            return None
        return Transaction(
            sender=account, nonce=state.nonce(account), to=pool.address,
            gas_limit=300_000,
            intent=BorrowIntent(pool.address, collateral_token,
                                collateral, debt_token, debt_amount),
            meta={"role": "borrower"},
            **fees.user_fields(self.rng))


class OracleKeeper:
    """Posts price updates on a schedule, sampling the price universe.

    Each update is an ordinary public transaction — visible in the
    mempool, and therefore a proactive liquidator's backrun target.
    """

    def __init__(self, rng: random.Random, oracle: PriceOracle,
                 universe: PriceUniverse,
                 update_interval_blocks: int = 20) -> None:
        if update_interval_blocks <= 0:
            raise ValueError("interval must be positive")
        self.rng = rng
        self.oracle = oracle
        self.universe = universe
        self.update_interval_blocks = update_interval_blocks
        self.address = address_from_label("oracle-keeper")

    def make_updates(self, state, fees: FeeModel,
                     block_number: int) -> List[Transaction]:
        """Zero or more oracle-update transactions for this block."""
        if block_number % self.update_interval_blocks != 0:
            return []
        if state.eth_balance(self.address) < ether(1):
            state.credit_eth(self.address, ether(100))
        updates: List[Transaction] = []
        nonce = state.nonce(self.address)
        for token, price in self.universe.step_all().items():
            updates.append(Transaction(
                sender=self.address, nonce=nonce,
                to=self.oracle.address, gas_limit=80_000,
                intent=OracleUpdateIntent(self.oracle.address, token,
                                          price),
                meta={"role": "oracle-update"},
                **fees.user_fields(self.rng, urgency=1.2)))
            nonce += 1
        return updates
