"""Priority gas auctions: the pre-Flashbots bidding game, playable.

Daian et al. (whom the paper builds on) observed MEV competition as
*priority gas auctions* — open, iterative gas-price escalation in the
public mempool.  Flashbots replaced this with a sealed-bid, one-shot
auction.  Section 8.2 of the paper argues the switch is what moved the
surplus from searchers to miners:

* an **open ascending auction** ends near the *second-highest*
  valuation (the winner stops bidding once rivals drop out), so the
  strongest searcher keeps the gap between the top two valuations;
* a **sealed-bid auction** with no feedback pushes every searcher to
  bid close to its *own* valuation, handing nearly all surplus to the
  miner.

This module implements both mechanisms over the same bidder population
so the difference can be measured rather than asserted (see
``benchmarks/test_ablation_auction_mechanisms.py``).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.flashbots.auction import sealed_bid_tip_fraction


@dataclass(frozen=True)
class PgaBidder:
    """One searcher competing for a single MEV opportunity.

    ``valuation_wei`` is the gross profit the opportunity is worth to
    this bidder; ``margin`` is the fraction of that valuation it insists
    on keeping (its drop-out threshold).
    """

    name: str
    valuation_wei: int
    margin: float = 0.05

    def __post_init__(self) -> None:
        if self.valuation_wei <= 0:
            raise ValueError("valuation must be positive")
        if not 0.0 <= self.margin < 1.0:
            raise ValueError("margin must be within [0, 1)")

    @property
    def max_fee_wei(self) -> int:
        """The largest total fee this bidder will ever pay."""
        return int(self.valuation_wei * (1.0 - self.margin))


@dataclass
class AuctionOutcome:
    """Result of one auction over one opportunity."""

    mechanism: str
    winner: Optional[str]
    fee_paid_wei: int
    winner_profit_wei: int
    rounds: int
    bid_history: List[Tuple[str, int]] = field(default_factory=list)

    @property
    def miner_share(self) -> float:
        """Fraction of the opportunity's value captured by the miner."""
        total = self.fee_paid_wei + self.winner_profit_wei
        return self.fee_paid_wei / total if total else 0.0


def run_open_pga(bidders: Sequence[PgaBidder], gas_limit: int = 150_000,
                 start_fee_wei: int = 10**15, bump_percent: int = 12,
                 max_rounds: int = 200) -> AuctionOutcome:
    """An open ascending (English) priority gas auction.

    Bidders take turns topping the standing bid by the mempool's minimum
    replacement bump until only one can still profit.  The winner pays
    its final standing bid — roughly the runner-up's drop-out point plus
    one bump, as observed in real PGAs.
    """
    if not bidders:
        raise ValueError("an auction needs at least one bidder")
    if bump_percent <= 0:
        raise ValueError("bump must be positive")
    active = sorted(bidders, key=lambda b: -b.max_fee_wei)
    standing_fee = min(start_fee_wei, active[0].max_fee_wei)
    leader = active[0]
    history: List[Tuple[str, int]] = [(leader.name, standing_fee)]
    rounds = 1
    while rounds < max_rounds:
        next_fee = standing_fee * (100 + bump_percent) // 100 + 1
        challenger = next((b for b in active
                           if b is not leader
                           and b.max_fee_wei >= next_fee), None)
        if challenger is None:
            break
        leader, standing_fee = challenger, next_fee
        history.append((leader.name, standing_fee))
        rounds += 1
        # The displaced leader may re-raise if it still profits.
        re_raise = standing_fee * (100 + bump_percent) // 100 + 1
        rebidder = next((b for b in active
                         if b is not leader
                         and b.max_fee_wei >= re_raise), None)
        if rebidder is None:
            break
        leader, standing_fee = rebidder, re_raise
        history.append((leader.name, standing_fee))
        rounds += 1
    return AuctionOutcome(
        mechanism="open-pga", winner=leader.name,
        fee_paid_wei=standing_fee,
        winner_profit_wei=leader.valuation_wei - standing_fee,
        rounds=rounds, bid_history=history)


def run_sealed_bid(bidders: Sequence[PgaBidder], rng: random.Random,
                   ) -> AuctionOutcome:
    """The Flashbots sealed-bid auction over the same opportunity.

    Each bidder independently commits a coinbase tip — a large fraction
    of its own valuation, scaled up by perceived competition — and the
    highest tip wins.  No feedback, no price discovery: the winner pays
    its own bid.
    """
    if not bidders:
        raise ValueError("an auction needs at least one bidder")
    competition = len(bidders) - 1
    bids: List[Tuple[PgaBidder, int]] = []
    for bidder in bidders:
        fraction = sealed_bid_tip_fraction(rng, competition)
        tip = min(int(bidder.valuation_wei * fraction),
                  bidder.max_fee_wei)
        bids.append((bidder, tip))
    winner, tip = max(bids, key=lambda item: item[1])
    return AuctionOutcome(
        mechanism="sealed-bid", winner=winner.name, fee_paid_wei=tip,
        winner_profit_wei=winner.valuation_wei - tip, rounds=1,
        bid_history=[(b.name, t) for b, t in bids])


@dataclass
class MechanismComparison:
    """Averages over many opportunities, one row per mechanism."""

    opportunities: int
    pga_miner_share: float
    sealed_miner_share: float
    pga_searcher_profit_wei: int
    sealed_searcher_profit_wei: int


def compare_mechanisms(rng: random.Random, opportunities: int = 200,
                       bidders_per_opportunity: int = 4,
                       mean_valuation_eth: float = 0.3,
                       ) -> MechanismComparison:
    """Run both auctions over the same sampled opportunity stream."""
    if opportunities <= 0:
        raise ValueError("need at least one opportunity")
    pga_fees = sealed_fees = 0
    pga_profits = sealed_profits = 0
    for index in range(opportunities):
        bidders = [
            PgaBidder(
                name=f"bidder-{i}",
                valuation_wei=max(10**15, int(
                    rng.lognormvariate(0, 0.6) * mean_valuation_eth
                    * 10**18)),
                margin=rng.uniform(0.02, 0.10))
            for i in range(bidders_per_opportunity)]
        pga = run_open_pga(bidders)
        sealed = run_sealed_bid(bidders, rng)
        pga_fees += pga.fee_paid_wei
        pga_profits += pga.winner_profit_wei
        sealed_fees += sealed.fee_paid_wei
        sealed_profits += sealed.winner_profit_wei
    return MechanismComparison(
        opportunities=opportunities,
        pga_miner_share=pga_fees / (pga_fees + pga_profits),
        sealed_miner_share=sealed_fees / (sealed_fees
                                          + sealed_profits),
        pga_searcher_profit_wei=pga_profits // opportunities,
        sealed_searcher_profit_wei=sealed_profits // opportunities)
