"""repro — reproduction of "A Flash(bot) in the Pan: Measuring Maximal
Extractable Value in Private Pools" (IMC 2022).

The package is organized as:

* :mod:`repro.chain` — Ethereum-like substrate (state, blocks, mempool,
  gossip, archive node);
* :mod:`repro.dex`, :mod:`repro.lending` — the DeFi substrates MEV preys
  on (AMMs, stableswap, lending pools, flash loans);
* :mod:`repro.flashbots`, :mod:`repro.privatepools` — the private
  transaction channels under study;
* :mod:`repro.agents`, :mod:`repro.sim` — the agent-based market
  simulation and the calibrated study-window scenario;
* :mod:`repro.core` — the paper's measurement pipeline (detection
  heuristics, joins, privacy inference, pool attribution);
* :mod:`repro.analysis` — table/figure builders and the goal audits.

Quickstart::

    from repro import quick_study

    study = quick_study(blocks_per_month=60)
    print(study.table1)
"""

from dataclasses import dataclass

from repro.analysis import build_table1
from repro.core import MevDataset, MevInspector, PriceService
from repro.sim import ScenarioConfig, SimulationResult, World, \
    build_paper_scenario

__version__ = "1.0.0"


@dataclass
class Study:
    """A simulated study window plus its measured MEV dataset."""

    result: SimulationResult
    dataset: MevDataset

    @property
    def table1(self):
        return build_table1(self.dataset)


def run_inspector(result: SimulationResult) -> MevDataset:
    """Run the full measurement pipeline over a simulation result."""
    inspector = MevInspector(result.node, PriceService(result.oracle),
                             result.flashbots_api, result.observer)
    return inspector.run()


def quick_study(blocks_per_month: int = 60, seed: int = 7,
                **config_overrides) -> Study:
    """Simulate the study window and measure it, in one call."""
    config = ScenarioConfig(blocks_per_month=blocks_per_month, seed=seed,
                            **config_overrides)
    world = build_paper_scenario(config)
    result = world.run()
    return Study(result=result, dataset=run_inspector(result))


__all__ = ["ScenarioConfig", "SimulationResult", "Study", "World",
           "__version__", "build_paper_scenario", "quick_study",
           "run_inspector"]
