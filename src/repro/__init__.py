"""repro — reproduction of "A Flash(bot) in the Pan: Measuring Maximal
Extractable Value in Private Pools" (IMC 2022).

The package is organized as:

* :mod:`repro.chain` — Ethereum-like substrate (state, blocks, mempool,
  gossip, archive node);
* :mod:`repro.dex`, :mod:`repro.lending` — the DeFi substrates MEV preys
  on (AMMs, stableswap, lending pools, flash loans);
* :mod:`repro.flashbots`, :mod:`repro.privatepools` — the private
  transaction channels under study;
* :mod:`repro.agents`, :mod:`repro.sim` — the agent-based market
  simulation and the calibrated study-window scenario;
* :mod:`repro.core` — the paper's measurement pipeline (detection
  heuristics, joins, privacy inference, pool attribution);
* :mod:`repro.engine` — pluggable chunk execution (serial, parallel,
  cached) behind one :class:`~repro.engine.RunConfig`;
* :mod:`repro.analysis` — table/figure builders and the goal audits.

Quickstart::

    from repro import quick_study

    study = quick_study(blocks_per_month=60)
    print(study.table1)
"""

from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Union

from repro.analysis import build_table1
from repro.core import MevDataset, MevInspector, PriceService
from repro.engine import RunConfig, resolve_config
from repro.faults import (
    FaultPlan,
    FaultyArchiveNode,
    FaultyFlashbotsApi,
    FaultyMempoolObserver,
)
from repro.reliability import CheckpointStore, RetryPolicy, shield
from repro.sim import ScenarioConfig, SimulationResult, World, \
    build_paper_scenario

#: the single source of the package version — ``pyproject.toml``
#: derives its ``[project] version`` from this attribute (dynamic
#: metadata), and the world cache folds it into its digests, so
#: bumping it here is the whole release step.
__version__ = "1.6.0"


@dataclass
class Study:
    """A simulated study window plus its measured MEV dataset."""

    result: SimulationResult
    dataset: MevDataset

    @property
    def table1(self):
        return build_table1(self.dataset)


def _plan_from_config(config: Optional[RunConfig],
                      node: object) -> Optional[FaultPlan]:
    """The fault plan a run configuration implies, if any."""
    if config is None or config.fault_profile == "none":
        return None
    return FaultPlan.from_profile(
        config.fault_profile, config.fault_seed,
        node.earliest_block_number(), node.latest_block_number())


def run_inspector(result: SimulationResult,
                  fault_plan: Optional[FaultPlan] = None,
                  retry: Optional[RetryPolicy] = None,
                  chunk_size: Optional[int] = None,
                  checkpoint: Union[CheckpointStore, str, Path,
                                    None] = None,
                  resume: bool = False,
                  workers: int = 1,
                  cache_dir: Union[str, Path, None] = None,
                  cache_key: Optional[str] = None,
                  config: Optional[RunConfig] = None) -> MevDataset:
    """Run the full measurement pipeline over a simulation result.

    ``fault_plan`` interposes the chaos transports of :mod:`repro.faults`
    between the pipeline and the three data sources; either way every
    source is shielded by :func:`repro.reliability.shield` (retries +
    circuit breakers), and the returned dataset carries a ``quality``
    report.  ``checkpoint``/``resume`` make the run restartable after a
    crash; ``workers``/``cache_dir`` select the execution strategy (see
    :mod:`repro.engine`) without changing any output bit.  A
    :class:`RunConfig` may be passed instead of the loose keyword
    arguments; its ``fault_profile``/``fault_seed`` build the fault plan
    when ``fault_plan`` is not given explicitly.
    """
    config = resolve_config(config, warn=False, chunk_size=chunk_size,
                            checkpoint=checkpoint, resume=resume,
                            workers=workers, cache_dir=cache_dir,
                            cache_key=cache_key)
    node, observer, api = (result.node, result.observer,
                           result.flashbots_api)
    if fault_plan is None:
        fault_plan = _plan_from_config(config, node)
    if fault_plan is not None:
        node = FaultyArchiveNode(node, fault_plan)
        observer = FaultyMempoolObserver(observer, fault_plan)
        api = FaultyFlashbotsApi(api, fault_plan)
    node, observer, api = shield(node, observer, api, retry=retry)
    inspector = MevInspector(node, PriceService(result.oracle),
                             api, observer)
    return inspector.run(config=config)


def follow_inspector(result: SimulationResult,
                     fault_plan: Optional[FaultPlan] = None,
                     confirm_depth: int = 3,
                     checkpoint: Union[CheckpointStore, str, Path,
                                       None] = None,
                     resume: bool = False,
                     retry: Optional[RetryPolicy] = None,
                     config: Optional[RunConfig] = None) -> MevDataset:
    """Measure a simulation result in *follow* (streaming) mode.

    Instead of one batch pass, the chain is replayed through a block
    feed into :class:`repro.stream.StreamEngine`, which folds detection
    incrementally behind a ``confirm_depth`` watermark.  With a
    ``fault_plan`` the feed injects the plan's reorgs/delays/duplicates
    (and the label sources degrade through the usual chaos transports);
    either way the engine's output converges bit-for-bit on the batch
    pipeline over the final canonical chain.  ``checkpoint``/``resume``
    make the follower crash-restartable mid-stream.  A
    :class:`RunConfig` may be passed instead of the loose keyword
    arguments; its ``confirm_depth`` and fault profile apply here the
    same way they do in batch mode.
    """
    from repro.faults.feed import ChainFeed, FaultyFeed
    from repro.stream import StreamEngine

    config = resolve_config(
        config, warn=False, checkpoint=checkpoint, resume=resume,
        confirm_depth=None if confirm_depth == 3 else confirm_depth)
    depth = 3 if config.confirm_depth is None else config.confirm_depth
    if fault_plan is None:
        fault_plan = _plan_from_config(config, result.node)
    observer, api = result.observer, result.flashbots_api
    feed = ChainFeed(result.blockchain)
    if fault_plan is not None:
        observer = FaultyMempoolObserver(observer, fault_plan)
        api = FaultyFlashbotsApi(api, fault_plan)
        _, observer, api = shield(result.node, observer, api,
                                  retry=retry)
        feed = FaultyFeed(result.blockchain, fault_plan)
    engine = StreamEngine(
        PriceService(result.oracle),
        first_block=result.node.earliest_block_number(),
        confirm_depth=depth, flashbots_api=api,
        observer=observer, checkpoint=config.checkpoint,
        resume=config.resume)
    return engine.run(feed)


def follow_study(blocks_per_month: int = 60, seed: int = 7,
                 confirm_depth: int = 3,
                 fault_plan: Optional[FaultPlan] = None,
                 checkpoint: Union[CheckpointStore, str, Path,
                                   None] = None,
                 resume: bool = False,
                 run_config: Optional[RunConfig] = None,
                 **config_overrides) -> Study:
    """Simulate the study window and measure it in follow mode."""
    config = ScenarioConfig(blocks_per_month=blocks_per_month, seed=seed,
                            **config_overrides)
    result = build_paper_scenario(config).run()
    dataset = follow_inspector(result, fault_plan=fault_plan,
                               confirm_depth=confirm_depth,
                               checkpoint=checkpoint, resume=resume,
                               config=run_config)
    return Study(result=result, dataset=dataset)


def quick_study(blocks_per_month: int = 60, seed: int = 7,
                fault_plan: Optional[FaultPlan] = None,
                chunk_size: Optional[int] = None,
                checkpoint: Union[CheckpointStore, str, Path,
                                  None] = None,
                resume: bool = False,
                workers: int = 1,
                cache_dir: Union[str, Path, None] = None,
                cache_key: Optional[str] = None,
                run_config: Optional[RunConfig] = None,
                blocks: Optional[int] = None,
                max_resident_epochs: Optional[int] = None,
                segment_dir: Union[str, Path, None] = None,
                overlap_io: bool = True,
                **config_overrides) -> Study:
    """Simulate the study window and measure it, in one call.

    ``blocks`` caps the simulation at that many blocks instead of the
    whole study window.  ``segment_dir`` attaches a spillable
    :class:`repro.chain.SegmentStore` before the run, so completed
    epochs land on disk and only the newest ``max_resident_epochs``
    (default 2) stay in memory — peak residency is O(epoch), which is
    what makes ``repro run --blocks 100000 --epoch-blocks 5000``
    feasible on a small box.  Spilled runs write segments on a
    background thread and use the flat-GC long-run regime by default
    (``overlap_io=False`` restores fully synchronous spills; the files
    are byte-identical either way).
    """
    config = ScenarioConfig(blocks_per_month=blocks_per_month, seed=seed,
                            **config_overrides)
    world = build_paper_scenario(config)
    flat_gc = None
    if segment_dir is not None:
        from repro.chain.segments import SegmentStore
        world.attach_segment_store(
            SegmentStore.open_or_create(str(segment_dir)),
            max_resident_epochs=max_resident_epochs
            if max_resident_epochs is not None else 2,
            overlap_io=overlap_io)
        flat_gc = world.install_flat_gc()
    try:
        result = world.run(blocks=blocks)
    finally:
        if flat_gc is not None:
            flat_gc.uninstall()
    dataset = run_inspector(result, fault_plan=fault_plan,
                            chunk_size=chunk_size, checkpoint=checkpoint,
                            resume=resume, workers=workers,
                            cache_dir=cache_dir, cache_key=cache_key,
                            config=run_config)
    return Study(result=result, dataset=dataset)


def serve_study(blocks_per_month: int = 60, seed: int = 7,
                follow: bool = False,
                fault_plan: Optional[FaultPlan] = None,
                run_config: Optional[RunConfig] = None,
                **config_overrides):
    """Simulate the study window and build a query service over it.

    Returns ``(study, service)`` where ``service`` is a
    :class:`repro.serve.MevQueryService` ready to go behind
    :class:`repro.serve.MevHttpServer`.  With ``follow=True`` the
    dataset is measured in streaming mode first (converging through
    any faults ``run_config`` implies); either way the service serves
    the final joined dataset.  ``repro serve`` wires the live-follow
    variant — a store fed block-by-block during ingestion — directly
    through :func:`repro.serve.stream_service`.
    """
    from repro.serve import service_from_dataset

    if follow:
        study = follow_study(blocks_per_month=blocks_per_month,
                             seed=seed, fault_plan=fault_plan,
                             run_config=run_config, **config_overrides)
    else:
        study = quick_study(blocks_per_month=blocks_per_month,
                            seed=seed, fault_plan=fault_plan,
                            run_config=run_config, **config_overrides)
    return study, service_from_dataset(study.dataset)


__all__ = ["FaultPlan", "RunConfig", "ScenarioConfig", "SimulationResult",
           "Study", "World", "__version__", "build_paper_scenario",
           "follow_inspector", "follow_study", "quick_study",
           "run_inspector", "serve_study"]
