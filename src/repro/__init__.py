"""repro — reproduction of "A Flash(bot) in the Pan: Measuring Maximal
Extractable Value in Private Pools" (IMC 2022).

The package is organized as:

* :mod:`repro.chain` — Ethereum-like substrate (state, blocks, mempool,
  gossip, archive node);
* :mod:`repro.dex`, :mod:`repro.lending` — the DeFi substrates MEV preys
  on (AMMs, stableswap, lending pools, flash loans);
* :mod:`repro.flashbots`, :mod:`repro.privatepools` — the private
  transaction channels under study;
* :mod:`repro.agents`, :mod:`repro.sim` — the agent-based market
  simulation and the calibrated study-window scenario;
* :mod:`repro.core` — the paper's measurement pipeline (detection
  heuristics, joins, privacy inference, pool attribution);
* :mod:`repro.analysis` — table/figure builders and the goal audits.

Quickstart::

    from repro import quick_study

    study = quick_study(blocks_per_month=60)
    print(study.table1)
"""

from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Union

from repro.analysis import build_table1
from repro.core import MevDataset, MevInspector, PriceService
from repro.faults import (
    FaultPlan,
    FaultyArchiveNode,
    FaultyFlashbotsApi,
    FaultyMempoolObserver,
)
from repro.reliability import CheckpointStore, RetryPolicy, shield_sources
from repro.sim import ScenarioConfig, SimulationResult, World, \
    build_paper_scenario

__version__ = "1.0.0"


@dataclass
class Study:
    """A simulated study window plus its measured MEV dataset."""

    result: SimulationResult
    dataset: MevDataset

    @property
    def table1(self):
        return build_table1(self.dataset)


def run_inspector(result: SimulationResult,
                  fault_plan: Optional[FaultPlan] = None,
                  retry: Optional[RetryPolicy] = None,
                  chunk_size: Optional[int] = None,
                  checkpoint: Union[CheckpointStore, str, Path,
                                    None] = None,
                  resume: bool = False) -> MevDataset:
    """Run the full measurement pipeline over a simulation result.

    ``fault_plan`` interposes the chaos transports of :mod:`repro.faults`
    between the pipeline and the three data sources; either way every
    source is shielded by :func:`repro.reliability.shield_sources`
    (retries + circuit breakers), and the returned dataset carries a
    ``quality`` report.  ``checkpoint``/``resume`` make the run
    restartable after a crash.
    """
    node, observer, api = (result.node, result.observer,
                           result.flashbots_api)
    if fault_plan is not None:
        node = FaultyArchiveNode(node, fault_plan)
        observer = FaultyMempoolObserver(observer, fault_plan)
        api = FaultyFlashbotsApi(api, fault_plan)
    node, observer, api = shield_sources(node, observer, api,
                                         retry=retry)
    inspector = MevInspector(node, PriceService(result.oracle),
                             api, observer)
    return inspector.run(chunk_size=chunk_size, checkpoint=checkpoint,
                         resume=resume)


def quick_study(blocks_per_month: int = 60, seed: int = 7,
                fault_plan: Optional[FaultPlan] = None,
                chunk_size: Optional[int] = None,
                checkpoint: Union[CheckpointStore, str, Path,
                                  None] = None,
                resume: bool = False,
                **config_overrides) -> Study:
    """Simulate the study window and measure it, in one call."""
    config = ScenarioConfig(blocks_per_month=blocks_per_month, seed=seed,
                            **config_overrides)
    world = build_paper_scenario(config)
    result = world.run()
    dataset = run_inspector(result, fault_plan=fault_plan,
                            chunk_size=chunk_size, checkpoint=checkpoint,
                            resume=resume)
    return Study(result=result, dataset=dataset)


__all__ = ["FaultPlan", "ScenarioConfig", "SimulationResult", "Study",
           "World", "__version__", "build_paper_scenario", "quick_study",
           "run_inspector"]
