"""``repro.bench`` — seeded wall-clock benchmarks (``repro bench``).

The only package allowed to read the machine clock: it measures how
fast the pipeline runs, never what the pipeline computes, and it
re-verifies the engine's core invariant (parallel ≡ serial, bit for
bit) on every benchmark run.
"""

from repro.bench.harness import (
    BENCH_VERSION,
    DEFAULT_WORKERS,
    WORLD_CACHE_FORMAT,
    load_world,
    render_report,
    run_bench,
    store_world,
    world_digest,
    write_report,
)

__all__ = [
    "BENCH_VERSION",
    "DEFAULT_WORKERS",
    "WORLD_CACHE_FORMAT",
    "load_world",
    "render_report",
    "run_bench",
    "store_world",
    "world_digest",
    "write_report",
]
