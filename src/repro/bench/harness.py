"""Seeded wall-clock benchmarks for the measurement pipeline.

The harness builds one simulated study window, then times the three
layers the paper's crawl spends its time in — detection heuristics,
the labelling joins, and the end-to-end pipeline — reporting each as
blocks/second.  The end-to-end stage runs at several worker counts and
*verifies* (not just assumes) that every parallel run is bit-identical
to the serial one before reporting a speedup.

Wall-clock measurement is the one legitimate use of ambient time in
this codebase: the numbers describe the machine, never the simulated
world, so determinism rule R002 is suppressed locally instead of
weakened globally.  Everything that shapes the *workload* (world seed,
chunk plan, worker counts) is pinned in the emitted scenario block, so
two runs on the same machine benchmark the same work.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.core.pipeline import plan_chunks
from repro.core.profit import PriceService
from repro.engine import ChunkRunner, SerialExecutor
from repro.reliability import shield
from repro.sim import ScenarioConfig, build_paper_scenario

#: Schema version of BENCH_pipeline.json.
BENCH_VERSION = 1

#: Worker counts the end-to-end stage sweeps.
DEFAULT_WORKERS: Tuple[int, ...] = (1, 2, 4)


def _clock() -> float:
    """Monotonic wall-clock seconds (machine time, not simulated)."""
    return time.perf_counter()  # repro-lint: disable=R002


def _fingerprint(dataset: Any) -> Tuple[str, str]:
    """The identity of a run: its rows and its quality ledger."""
    return (json.dumps(dataset.to_rows(), sort_keys=True),
            json.dumps(dataset.quality.to_dict(), sort_keys=True))


def _timed(label: str, blocks: int, elapsed_s: float) -> Dict[str, Any]:
    return {
        "stage": label,
        "blocks": blocks,
        "elapsed_s": round(elapsed_s, 6),
        "blocks_per_s": round(blocks / elapsed_s, 3) if elapsed_s > 0
        else None,
    }


def run_bench(bpm: int = 60, seed: int = 7,
              workers: Sequence[int] = DEFAULT_WORKERS,
              chunk_size: Optional[int] = None,
              quick: bool = False) -> Dict[str, Any]:
    """Benchmark the pipeline; returns the BENCH_pipeline.json document.

    ``quick`` shrinks the scenario for CI smoke runs.  ``chunk_size``
    defaults to an eighth of the range so every worker count in the
    sweep has chunks to parallelize over.
    """
    from repro import run_inspector  # lazy: repro imports the engine

    if quick:
        bpm = min(bpm, 10)
    config = ScenarioConfig(blocks_per_month=bpm, seed=seed)
    total_blocks = config.total_blocks
    if chunk_size is None:
        chunk_size = max(1, total_blocks // 8)

    started = _clock()
    result = build_paper_scenario(config).run()
    simulate_s = _clock() - started
    first = result.node.earliest_block_number()
    last = result.node.latest_block_number()
    blocks = last - first + 1
    chunks = plan_chunks(first, last, chunk_size)

    stages: List[Dict[str, Any]] = []

    # Detection only: the heuristics over every chunk, serial,
    # chunk-isolated exactly as the pipeline runs them.
    node, _, _ = shield(result.node)
    runner = ChunkRunner.for_pipeline(node, PriceService(result.oracle))
    started = _clock()
    detection_results = list(SerialExecutor().execute(runner, chunks))
    stages.append(_timed("detection", blocks, _clock() - started))
    assert not any(r.failed for r in detection_results)

    # Joins: everything downstream of detection (merge, flash-loan /
    # Flashbots / privacy labelling, quality accounting).  Timed as a
    # serial end-to-end pass minus the detection stage above, so the
    # two stage numbers decompose one and the same run.
    started = _clock()
    serial_dataset = run_inspector(result, chunk_size=chunk_size,
                                   workers=1)
    serial_s = _clock() - started
    detection_s = stages[0]["elapsed_s"]
    stages.append(_timed("joins", blocks,
                         max(serial_s - detection_s, 0.0)))

    serial_print = _fingerprint(serial_dataset)
    end_to_end: List[Dict[str, Any]] = []
    parallel_identical = True
    for count in workers:
        if count == 1:
            elapsed, identical = serial_s, True
        else:
            started = _clock()
            dataset = run_inspector(result, chunk_size=chunk_size,
                                    workers=count)
            elapsed = _clock() - started
            identical = _fingerprint(dataset) == serial_print
            parallel_identical = parallel_identical and identical
        entry = _timed(f"end_to_end[workers={count}]", blocks, elapsed)
        entry["workers"] = count
        entry["identical_to_serial"] = identical
        entry["speedup_vs_serial"] = round(serial_s / elapsed, 3) \
            if elapsed > 0 else None
        end_to_end.append(entry)

    return {
        "version": BENCH_VERSION,
        "scenario": {
            "blocks_per_month": bpm,
            "seed": seed,
            "blocks": blocks,
            "chunk_size": chunk_size,
            "chunks": len(chunks),
            "quick": quick,
        },
        "machine": {
            "cpu_count": os.cpu_count(),
        },
        "simulate_s": round(simulate_s, 6),
        "stages": stages,
        "end_to_end": end_to_end,
        "parallel_identical": parallel_identical,
    }


def write_report(report: Dict[str, Any],
                 path: Union[str, Path]) -> None:
    """Write the benchmark document as stable, diffable JSON."""
    path = Path(path)
    with open(path, "w", encoding="utf-8") as stream:
        json.dump(report, stream, indent=2, sort_keys=True)
        stream.write("\n")


def render_report(report: Dict[str, Any]) -> str:
    """A short human summary of one benchmark document."""
    scenario = report["scenario"]
    lines = [
        f"pipeline benchmark — {scenario['blocks']} blocks "
        f"(bpm={scenario['blocks_per_month']}, seed={scenario['seed']}, "
        f"{scenario['chunks']} chunks of {scenario['chunk_size']}), "
        f"{report['machine']['cpu_count']} cpu(s)",
    ]
    for stage in report["stages"]:
        lines.append(f"  {stage['stage']:<12} "
                     f"{stage['elapsed_s']:>9.3f}s  "
                     f"{stage['blocks_per_s'] or 0:>10.1f} blocks/s")
    for entry in report["end_to_end"]:
        check = "ok" if entry["identical_to_serial"] else "DIVERGED"
        lines.append(f"  workers={entry['workers']:<4} "
                     f"{entry['elapsed_s']:>9.3f}s  "
                     f"{entry['speedup_vs_serial']:>5.2f}x  [{check}]")
    lines.append("  parallel identical to serial: "
                 + ("yes" if report["parallel_identical"] else "NO"))
    return "\n".join(lines)
