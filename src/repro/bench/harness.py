"""Seeded wall-clock benchmarks for the measurement pipeline.

The harness builds one simulated study window, then times the layers
the paper's crawl spends its time in — the world simulation itself
(the ``simulate`` stage), detection heuristics (through the pipeline's
chunk runner, and again as bare indexed vs. linear archive reads), the
labelling joins, and the end-to-end pipeline — reporting each as
blocks/second.  The end-to-end stage runs at several
worker counts and *verifies* (not just assumes) that every parallel
run is bit-identical to the serial one before reporting a speedup; the
indexed read path is likewise verified row-for-row against the linear
reference on every run.  The simulation gets the same treatment: the
world is rebuilt on the naive reference paths
(``build_paper_scenario(..., fast_paths=False)`` — full mempool
re-sorts, no scan memoization) and the complete block-hash and
transaction-hash sequence must match the optimized run before the
``simulate`` number is trusted (``sim_identical``).

Passing ``profile=True`` wraps each stage in :mod:`cProfile` and
attaches top-25 cumulative-time tables under ``report["profile"]``.
Profiling inflates wall times severalfold, so a profiled report is for
reading *where* time goes, never for comparing *how much*.

Because the simulated world dwarfs everything else (~98% of a quick
run is ``build_paper_scenario``), the harness can snapshot it: pass
``world_cache`` and the :class:`SimulationResult` is pickled under a
scenario digest, then replayed on later runs after a content
fingerprint check — a stale or corrupt snapshot silently falls back to
a fresh simulation, never into wrong numbers.

Wall-clock measurement is the one legitimate use of ambient time in
this codebase: the numbers describe the machine, never the simulated
world, so determinism rule R002 is suppressed locally instead of
weakened globally.  Everything that shapes the *workload* (world seed,
chunk plan, worker counts) is pinned in the emitted scenario block, so
two runs on the same machine benchmark the same work.
"""

from __future__ import annotations

import cProfile
import dataclasses
import hashlib
import io
import json
import os
import pickle
import platform
import pstats
import sys
import time
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, \
    Tuple, Union

from repro.chain.events import FlashLoanEvent
from repro.chain.node import ArchiveNode
from repro.chain.transaction import reset_tx_counter
from repro.core.datasets import MevDataset
from repro.core.pipeline import MevInspector, plan_chunks
from repro.core.profit import PriceService
from repro.engine import ChunkRunner, RunConfig, SerialExecutor, \
    effective_workers
from repro.faults.feed import FaultyFeed
from repro.faults.plan import FaultPlan
from repro.reliability import shield
from repro.stream import StreamEngine
from repro.sim import ScenarioConfig, SimulationResult, \
    build_paper_scenario

#: Schema version of BENCH_pipeline.json.  Version 2 added the
#: ``detection_indexed`` / ``detection_linear`` stages, per-entry
#: ``workers_effective``, and the ``world_cache`` block.  Version 3
#: added the ``simulate`` stage, the ``sim_identical`` fast-vs-
#: reference world gate (with ``sim_reference_s``), and the optional
#: ``profile`` tables.  Version 4 added ``lint_s``, the wall time of
#: a syntactic ``repro.lint`` pass over the package's own source tree.
#: Version 5 added the ``stream`` stage and its convergence gate:
#: ``stream_identical`` (streaming over a faulted feed vs. the batch
#: pipeline over the canonical chain) plus the ``stream`` block with
#: reorg/duplicate counters and p50/p99 confirmation lag.  Version 6
#: added the ``serve`` block — a seeded HTTP load replay against the
#: query service (p50/p99 latency, qps, per-kind request counts) —
#: and its identity gate ``serve_identical`` (every endpoint response
#: byte-identical between a batch-built store and one fed live by the
#: streaming engine through the faulted feed); both are ``null``
#: unless the bench runs with ``--serve``.  Version 7 added
#: ``workers_requested``/``workers_effective`` to every stage (bench
#: honesty on 1-CPU boxes), the world-cache ``format`` marker
#: (version-less ≤1.5.0 monolithic snapshots are rejected with a clear
#: message), and the epoch-shard gate: ``shard_identical`` (serial
#: world vs epochs re-simulated from seals across workers and spliced
#: — full block-hash + tx-hash sequence, with a sampled-prefix variant
#: for very large scenarios) plus the ``shard`` info block; both are
#: ``null`` unless the bench runs with ``--shard``.  Version 8 added
#: ``platform``/``python_version`` to the ``machine`` block, per-epoch
#: seal-pass telemetry under ``shard.epoch_telemetry`` (blocks/s and
#: resident-set MB per epoch), and the ``shard.scale_flat`` gate —
#: last-epoch throughput must hold at least
#: ``SCALE_FLAT_THRESHOLD`` × the first *activity-saturated* epoch's
#: (earlier epochs still ride the traffic ramp, so they are not
#: comparable baselines); ``null`` when fewer than two saturated
#: epochs exist.  With ``--profile``, the shard seal pass now emits
#: one ``shard_epoch[N]`` top-25 table per epoch.
BENCH_VERSION = 8

#: ``scale_flat`` passes when the last epoch's seal-pass throughput is
#: at least this fraction of the first saturated epoch's — the
#: "throughput does not decay with total progress" claim, with room
#: for machine noise.
SCALE_FLAT_THRESHOLD = 0.8

#: How many rows of each per-stage cProfile table to keep.
PROFILE_TOP_N = 25

#: Worker counts the end-to-end stage sweeps.
DEFAULT_WORKERS: Tuple[int, ...] = (1, 2, 4)


def _clock() -> float:
    """Monotonic wall-clock seconds (machine time, not simulated)."""
    return time.perf_counter()  # repro-lint: disable=R002


def _fingerprint(dataset: Any) -> Tuple[str, str]:
    """The identity of a run: its rows and its quality ledger."""
    return (json.dumps(dataset.to_rows(), sort_keys=True),
            json.dumps(dataset.quality.to_dict(), sort_keys=True))


class _StageProfiler:
    """Optionally wraps stage bodies in cProfile, collecting one
    top-``PROFILE_TOP_N`` cumulative-time table per stage label.

    Disabled (the default) it is a transparent pass-through, so the
    timed code paths are byte-for-byte the same with and without
    ``--profile`` — only the interpreter-level tracing differs.
    """

    def __init__(self, enabled: bool) -> None:
        self.enabled = enabled
        self.tables: Dict[str, str] = {}

    def run(self, label: str, body: Callable[[], Any]) -> Any:
        if not self.enabled:
            return body()
        profiler = cProfile.Profile()
        profiler.enable()
        try:
            return body()
        finally:
            profiler.disable()
            stream = io.StringIO()
            stats = pstats.Stats(profiler, stream=stream)
            stats.sort_stats("cumulative").print_stats(PROFILE_TOP_N)
            self.tables[label] = stream.getvalue()


def _block_sequence(result: SimulationResult,
                    ) -> List[Tuple[str, Tuple[str, ...]]]:
    """The identity of a simulated world for the fast-vs-reference
    gate: every block hash plus every included transaction hash, in
    order.  The block hash pins header fields (number, miner,
    timestamp, tx count); the tx-hash tuple pins exact inclusion and
    ordering, and each tx hash commits to the process-wide uid counter,
    so two runs can only match if they agreed on every transaction ever
    *created* — every RNG draw, every searcher decision — not merely
    the ones that landed."""
    return [(block.hash,
             tuple(tx.hash for tx in block.transactions))
            for block in result.blockchain.blocks]


def _timed(label: str, blocks: int, elapsed_s: float,
           workers_requested: int = 1) -> Dict[str, Any]:
    """One stage row.  Every stage reports both the worker count it
    *asked for* and the count the host actually granted, so a 1-CPU
    box's numbers are never mistaken for parallel ones."""
    return {
        "stage": label,
        "blocks": blocks,
        "elapsed_s": round(elapsed_s, 6),
        "blocks_per_s": round(blocks / elapsed_s, 3) if elapsed_s > 0
        else None,
        "workers_requested": workers_requested,
        "workers_effective": effective_workers(workers_requested),
    }


# -- world-snapshot cache --------------------------------------------------

#: On-disk layout version of world snapshots.  Format 2 added the
#: marker itself; snapshots without one were written by repro ≤ 1.5.0
#: (the monolithic pre-segment layout) and are rejected with a clear
#: message instead of a pickle/shape error.
WORLD_CACHE_FORMAT = 2


def world_digest(config: ScenarioConfig) -> str:
    """Cache key for one scenario: every config field plus the package
    version, so a calibration change or a release invalidates cleanly."""
    from repro import __version__  # lazy: repro imports the engine

    payload = json.dumps(dataclasses.asdict(config), sort_keys=True,
                         default=repr)
    digest = hashlib.sha256(
        f"{__version__}:{payload}".encode("utf-8"))
    return digest.hexdigest()[:16]


def _world_fingerprint(result: SimulationResult) -> str:
    """Content fingerprint of a simulated world: block numbers, header
    hashes, and transaction counts.  Cheap to recompute on load, and
    any truncated/bit-rotted snapshot that still unpickles will not
    match it."""
    digest = hashlib.sha256()
    for block in result.blockchain.blocks:
        digest.update(f"{block.number}:{block.hash}:"
                      f"{len(block.transactions)};".encode("utf-8"))
    return digest.hexdigest()


def _world_path(cache_dir: Union[str, Path],
                config: ScenarioConfig) -> Path:
    return Path(cache_dir) / f"world-{world_digest(config)}.pkl"


def store_world(cache_dir: Union[str, Path], config: ScenarioConfig,
                result: SimulationResult) -> Path:
    """Snapshot one simulated world under its scenario digest."""
    path = _world_path(cache_dir, config)
    path.parent.mkdir(parents=True, exist_ok=True)
    document = {"format": WORLD_CACHE_FORMAT,
                "fingerprint": _world_fingerprint(result),
                "result": result}
    tmp_path = path.with_name(path.name + ".tmp")
    with open(tmp_path, "wb") as stream:
        pickle.dump(document, stream, protocol=pickle.HIGHEST_PROTOCOL)
    os.replace(tmp_path, path)
    return path


def load_world(cache_dir: Union[str, Path],
               config: ScenarioConfig) -> Optional[SimulationResult]:
    """Replay a snapshotted world, or ``None`` for any kind of miss.

    A missing file, an unreadable/unpicklable snapshot, a snapshot of
    the wrong shape, and a fingerprint mismatch all count the same:
    the caller re-simulates.  The cache can only save time, never
    change what gets benchmarked.
    """
    path = _world_path(cache_dir, config)
    try:
        with open(path, "rb") as stream:
            document = pickle.load(stream)
    except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
            ImportError, IndexError):
        return None
    if not isinstance(document, dict):
        return None
    if "format" not in document:
        print(f"world cache {path} has no format marker — it was "
              f"written by an older repro (<= 1.5.0 monolithic "
              f"layout); re-simulating", file=sys.stderr)
        return None
    if document["format"] != WORLD_CACHE_FORMAT:
        print(f"world cache {path} is format {document['format']!r}; "
              f"this repro reads format {WORLD_CACHE_FORMAT} — "
              f"re-simulating", file=sys.stderr)
        return None
    result = document.get("result")
    if not isinstance(result, SimulationResult):
        return None
    if document.get("fingerprint") != _world_fingerprint(result):
        return None
    return result


# -- benchmark -------------------------------------------------------------


def _simulate(config: ScenarioConfig,
              world_cache: Union[str, Path, None],
              profiler: _StageProfiler,
              ) -> Tuple[SimulationResult, float, Optional[Dict[str, Any]]]:
    """The world to benchmark, from snapshot when possible.

    A fresh simulation resets the process-wide transaction-uid counter
    first, so the timed run produces the same world whether or not
    other scenarios were built earlier in the process — and so the
    reference replay in :func:`run_bench` compares like with like.
    """
    cache_info: Optional[Dict[str, Any]] = None
    if world_cache is not None:
        cache_info = {"dir": str(world_cache),
                      "digest": world_digest(config),
                      "hit": False}
        started = _clock()
        cached = load_world(world_cache, config)
        if cached is not None:
            cache_info["hit"] = True
            return cached, _clock() - started, cache_info
    reset_tx_counter()
    started = _clock()
    result = profiler.run(
        "simulate", lambda: build_paper_scenario(config).run())
    elapsed = _clock() - started
    if world_cache is not None:
        try:
            store_world(world_cache, config, result)
        except OSError:
            pass  # a read-only cache dir must not fail the benchmark
    return result, elapsed, cache_info


def _lint_self() -> float:
    """Wall time of a syntactic lint pass over this package's tree.

    Deliberately the cheap single-module pass (no ``--deep`` flow
    analysis): the number tracks how much a pre-commit hook or CI
    gate pays per run, and stays comparable as the rule set grows.
    """
    from repro.lint import LintConfig, lint_paths

    package_root = Path(__file__).resolve().parents[1]
    started = _clock()
    lint_paths([package_root], LintConfig())
    return _clock() - started


def _percentile(samples: Sequence[int], pct: float) -> Optional[int]:
    """Nearest-rank percentile of integer samples (None when empty)."""
    if not samples:
        return None
    ordered = sorted(samples)
    rank = max(1, -(-len(ordered) * int(pct) // 100))  # ceil
    return ordered[min(rank, len(ordered)) - 1]


def _rows_of(dataset: MevDataset, flash_txs: Any) -> str:
    """Canonical serialization of one chunk's detection output, for
    the indexed-vs-linear identity check."""
    return json.dumps({"rows": dataset.to_rows(),
                       "flash_txs": sorted(flash_txs)}, sort_keys=True)


def _rss_mb() -> Optional[float]:
    """Current resident-set size in MB (Linux; None elsewhere)."""
    try:
        with open("/proc/self/statm", "r", encoding="ascii") as handle:
            pages = int(handle.read().split()[1])
        return round(pages * os.sysconf("SC_PAGESIZE") / 1e6, 1)
    except (OSError, ValueError, IndexError):
        return None


def _seal_pass_telemetry(config: ScenarioConfig,
                         profiler: _StageProfiler,
                         ) -> Tuple[Dict[int, Any],
                                    List[Dict[str, Any]], float]:
    """The shard gate's serial seal pass, one epoch at a time.

    Equivalent draw for draw to one ``run(collect_seals=...)`` over the
    window (``run`` only advances the height; stopping at a boundary
    and resuming reseeds nothing extra), but surfacing what a single
    timed call hides: per-epoch wall time, throughput, and resident-set
    size — the curve the ``scale_flat`` gate judges.  Runs under the
    flat-GC long-run regime, like every production long run.  With
    profiling enabled, each epoch gets its own ``shard_epoch[N]``
    table, so late-epoch attribution is not averaged away.
    """
    reset_tx_counter()
    world = build_paper_scenario(config)
    flat_gc = world.install_flat_gc()
    seals: Dict[int, Any] = {}
    telemetry: List[Dict[str, Any]] = []
    epoch_blocks = config.epoch_blocks or config.blocks_per_month
    total = config.total_blocks
    pass_started = _clock()
    try:
        done = 0
        while done < total:
            span = min(epoch_blocks, total - done)
            epoch = done // epoch_blocks
            started = _clock()
            profiler.run(
                f"shard_epoch[{epoch}]",
                lambda span=span: world.run(blocks=span,
                                            collect_seals=seals))
            elapsed = _clock() - started
            telemetry.append({
                "epoch": epoch,
                "blocks": span,
                "elapsed_s": round(elapsed, 6),
                "blocks_per_s": round(span / elapsed, 3)
                if elapsed > 0 else None,
                "rss_mb": _rss_mb(),
            })
            done += span
    finally:
        flat_gc.uninstall()
    return seals, telemetry, _clock() - pass_started


def _scale_flat_gate(telemetry: Sequence[Dict[str, Any]],
                     config: ScenarioConfig) -> Optional[bool]:
    """Whether per-epoch throughput held flat over total progress.

    Baselines at the first epoch whose *first* block is past the
    activity ramp's saturation month — earlier epochs carry less
    traffic per block, so their higher blocks/s says nothing about
    scale.  ``None`` (gate not judgeable, never faked) when fewer than
    two saturated epochs ran.
    """
    from repro.sim.world import activity_saturation_month

    epoch_blocks = config.epoch_blocks or config.blocks_per_month
    saturated_block = (activity_saturation_month()
                       * config.blocks_per_month)
    steady = [row for row in telemetry
              if row["epoch"] * epoch_blocks >= saturated_block
              and row["blocks_per_s"]]
    if len(steady) < 2:
        return None
    return (steady[-1]["blocks_per_s"]
            >= SCALE_FLAT_THRESHOLD * steady[0]["blocks_per_s"])


def run_bench(bpm: int = 60, seed: int = 7,
              workers: Sequence[int] = DEFAULT_WORKERS,
              chunk_size: Optional[int] = None,
              quick: bool = False,
              world_cache: Union[str, Path, None] = None,
              profile: bool = False,
              serve: bool = False,
              serve_requests: int = 300,
              shard: bool = False,
              shard_workers: int = 2,
              shard_prefix_epochs: Optional[int] = None,
              ) -> Dict[str, Any]:
    """Benchmark the pipeline; returns the BENCH_pipeline.json document.

    ``quick`` shrinks the scenario for CI smoke runs.  ``chunk_size``
    defaults to an eighth of the range so every worker count in the
    sweep has chunks to parallelize over.  ``world_cache`` names a
    directory of world snapshots (see :func:`store_world`); when the
    scenario digest hits, simulation is replaced by an unpickle — the
    ``simulate`` number then measures the unpickle and the
    fast-vs-reference gate is skipped (``sim_identical: null``).
    ``profile`` attaches per-stage cProfile tables (and inflates every
    wall time; never compare profiled numbers against plain ones).
    ``serve`` adds the query-service stage: a store fed live by the
    stream stage's engine is checked byte-for-byte against a
    batch-built one (``serve_identical``), then ``serve_requests``
    seeded requests replay over real sockets into the ``serve`` block.
    ``shard`` adds the epoch-shard gate: a serial pass collects epoch
    seals, every epoch (or the first ``shard_prefix_epochs``) is
    re-simulated from its seal across ``shard_workers`` worker
    processes, and the spliced chain must match the benchmarked world's
    full block-hash + tx-hash sequence (``shard_identical``).
    """
    from repro import run_inspector  # lazy: repro imports the engine
    from repro.core.heuristics import (
        detect_arbitrages,
        detect_flash_loan_txs,
        detect_liquidations,
        detect_sandwiches,
    )
    from repro.core.scan import scan_range

    if quick:
        bpm = min(bpm, 10)
    config = ScenarioConfig(blocks_per_month=bpm, seed=seed)
    total_blocks = config.total_blocks
    if chunk_size is None:
        chunk_size = max(1, total_blocks // 8)

    profiler = _StageProfiler(profile)
    result, simulate_s, cache_info = _simulate(config, world_cache,
                                               profiler)
    first = result.node.earliest_block_number()
    last = result.node.latest_block_number()
    blocks = last - first + 1
    chunks = plan_chunks(first, last, chunk_size)
    prices = PriceService(result.oracle)

    stages: List[Dict[str, Any]] = []
    cache_hit = bool(cache_info and cache_info["hit"])
    simulate_stage = _timed("simulate", blocks, simulate_s)
    simulate_stage["fresh"] = not cache_hit
    stages.append(simulate_stage)

    # Fast-vs-reference world gate: rebuild the same scenario on the
    # naive paths (full mempool re-sorts, no probe memoization) and
    # demand the identical block/tx hash sequence.  The optimized
    # simulator's speed is only a result once this passes.  A cache
    # hit skips the gate — there is no fresh fast run to compare.
    sim_identical: Optional[bool] = None
    sim_reference_s: Optional[float] = None
    if not cache_hit:
        reset_tx_counter()
        started = _clock()
        reference = build_paper_scenario(
            config, fast_paths=False).run()
        sim_reference_s = round(_clock() - started, 6)
        sim_identical = (_block_sequence(reference)
                         == _block_sequence(result))

    # Detection only: the heuristics over every chunk, serial,
    # chunk-isolated exactly as the pipeline runs them (resilience
    # shield included) — the number an operator's --workers 1 run pays.
    node, _, _ = shield(result.node)
    runner = ChunkRunner.for_pipeline(node, prices)
    runner.warm_index()
    started = _clock()
    detection_results = profiler.run(
        "detection",
        lambda: list(SerialExecutor().execute(runner, chunks)))
    stages.append(_timed("detection", blocks, _clock() - started))
    assert not any(r.failed for r in detection_results)

    # The same chunks through the bare read paths, no shield: the
    # single-pass scan over the warm index vs. the four standalone
    # detectors re-walking the chain linearly.  The gap between these
    # two stages is what the index buys.
    indexed_node = ArchiveNode(result.blockchain)
    indexed_node.warm_index()
    indexed_rows: List[str] = []

    def _indexed_pass() -> None:
        for lo, hi in chunks:
            partial, flash_txs = scan_range(indexed_node, prices,
                                            lo, hi)
            indexed_rows.append(_rows_of(partial, flash_txs))

    started = _clock()
    profiler.run("detection_indexed", _indexed_pass)
    stages.append(_timed("detection_indexed", blocks,
                         _clock() - started))

    linear_node = ArchiveNode(result.blockchain, indexed=False)
    linear_rows: List[str] = []

    def _linear_pass() -> None:
        for lo, hi in chunks:
            partial = MevDataset(
                sandwiches=detect_sandwiches(linear_node, prices,
                                             lo, hi),
                arbitrages=detect_arbitrages(linear_node, prices,
                                             lo, hi),
                liquidations=detect_liquidations(linear_node, prices,
                                                 lo, hi),
            )
            flash_txs = detect_flash_loan_txs(linear_node, lo, hi)
            linear_rows.append(_rows_of(partial, flash_txs))

    started = _clock()
    profiler.run("detection_linear", _linear_pass)
    stages.append(_timed("detection_linear", blocks,
                         _clock() - started))
    indexed_matches_linear = indexed_rows == linear_rows

    # Joins: everything downstream of detection (merge, flash-loan /
    # Flashbots / privacy labelling, quality accounting).  Timed as a
    # serial end-to-end pass minus the detection stage above, so the
    # two stage numbers decompose one and the same run.
    started = _clock()
    serial_dataset = profiler.run(
        "joins",
        lambda: run_inspector(result, chunk_size=chunk_size,
                              workers=1))
    serial_s = _clock() - started
    detection_s = next(s["elapsed_s"] for s in stages
                       if s["stage"] == "detection")
    stages.append(_timed("joins", blocks,
                         max(serial_s - detection_s, 0.0)))

    serial_print = _fingerprint(serial_dataset)
    end_to_end: List[Dict[str, Any]] = []
    parallel_identical = True
    for count in workers:
        if count == 1:
            elapsed, identical = serial_s, True
        else:
            started = _clock()
            dataset = run_inspector(result, chunk_size=chunk_size,
                                    workers=count)
            elapsed = _clock() - started
            identical = _fingerprint(dataset) == serial_print
            parallel_identical = parallel_identical and identical
        entry = _timed(f"end_to_end[workers={count}]", blocks, elapsed,
                       workers_requested=count)
        entry["workers"] = count
        entry["identical_to_serial"] = identical
        entry["speedup_vs_serial"] = round(serial_s / elapsed, 3) \
            if elapsed > 0 else None
        end_to_end.append(entry)

    # Streaming convergence gate: replay the finished canonical chain
    # through a deliberately hostile feed (seeded reorgs, delays,
    # duplicates, one outage window) and demand that the incremental
    # engine's dataset — rows and quality ledger — is bit-identical to
    # the batch pipeline over per-block chunks.  The stream stage's
    # blocks/s is only a result once this passes.
    plan = FaultPlan.from_profile("reorg", seed, first, last)
    engine = StreamEngine(prices, first_block=first,
                          confirm_depth=plan.feed.max_reorg_depth,
                          flashbots_api=result.flashbots_api,
                          observer=result.observer)
    stream_store = None
    if serve:
        # The serving stage rides the same engine: its store is built
        # live, block by block, through every injected reorg.
        from repro.serve import ColumnStore, StoreFeeder

        stream_store = ColumnStore()
        engine.subscribe(StoreFeeder(stream_store))
    feed = FaultyFeed(result.blockchain, plan)
    started = _clock()
    stream_dataset = profiler.run("stream", lambda: engine.run(feed))
    stream_s = _clock() - started
    stages.append(_timed("stream", blocks, stream_s))
    batch_dataset = MevInspector(
        ArchiveNode(result.blockchain), prices,
        result.flashbots_api, result.observer).run(
            config=RunConfig(chunk_size=1))
    stream_identical = \
        _fingerprint(stream_dataset) == _fingerprint(batch_dataset)
    lags = engine.report.confirmation_lags
    stream_info: Dict[str, Any] = {
        "confirm_depth": engine.confirm_depth,
        "events": engine.report.events,
        "reorgs": engine.report.reorgs,
        "max_reorg_depth": engine.report.max_reorg_depth,
        "duplicates": engine.report.duplicates,
        "out_of_order": engine.report.out_of_order,
        "retracted_blocks": engine.report.retracted_blocks,
        "retracted_rows": engine.report.retracted_rows,
        "lag_p50_blocks": _percentile(lags, 50),
        "lag_p99_blocks": _percentile(lags, 99),
    }

    # Serving stage: the identity gate first (batch-built store vs the
    # live-fed one above, byte-for-byte per endpoint), then a seeded
    # load replay over real sockets.  The latency numbers are only a
    # result once the identity gate passes — fast wrong answers are
    # not a serving layer.
    serve_identical: Optional[bool] = None
    serve_info: Optional[Dict[str, Any]] = None
    if serve:
        import asyncio

        from repro.serve import (build_mix, responses_identical,
                                 serve_and_replay, service_from_dataset)
        from repro.serve.service import MevQueryService

        batch_query = service_from_dataset(batch_dataset)
        assert stream_store is not None
        stream_query = MevQueryService(stream_store)
        serve_identical = responses_identical(batch_query, stream_query)
        mix = build_mix(first, last, requests=serve_requests, seed=seed)
        started = _clock()
        load = profiler.run(
            "serve", lambda: asyncio.run(
                serve_and_replay(batch_query, mix, seed=seed)))
        stages.append(_timed("serve", blocks, _clock() - started))
        serve_info = load.to_dict()

    # Epoch-shard gate: a serial pass over the same scenario collects
    # one seal per epoch boundary, every epoch is re-simulated from its
    # seal on worker processes, and the spliced chain must reproduce
    # the benchmarked world bit for bit — the splice-vs-reference
    # discipline, applied to world generation itself.  Runs last: it
    # resets the transaction-uid counter and re-simulates, which must
    # not perturb the stages above.
    shard_identical: Optional[bool] = None
    shard_info: Optional[Dict[str, Any]] = None
    if shard:
        from repro.sim.shard import plan_epochs, resimulate_epochs, \
            splice_epochs

        started = _clock()
        seals, epoch_telemetry, seal_pass_s = \
            _seal_pass_telemetry(config, profiler)

        def _shard_resim() -> Tuple[Any, str, int]:
            plan = plan_epochs(config)
            scope = "full"
            if shard_prefix_epochs is not None:
                plan = plan[:max(1, shard_prefix_epochs)]
                scope = f"prefix[{len(plan)}]"
            epoch_results = resimulate_epochs(
                config, seals, chunks=plan, workers=shard_workers)
            return (splice_epochs(config, epoch_results), scope,
                    len(plan))

        spliced, scope, resimulated = \
            profiler.run("shard", _shard_resim)
        shard_s = _clock() - started
        sharded_seq = _block_sequence(spliced)
        reference_seq = _block_sequence(result)
        if scope != "full":
            reference_seq = reference_seq[:len(sharded_seq)]
        shard_identical = bool(sharded_seq) \
            and sharded_seq == reference_seq
        stages.append(_timed("shard", len(sharded_seq), shard_s,
                             workers_requested=shard_workers))
        shard_info = {
            "epochs": len(plan_epochs(config)),
            "epoch_blocks": config.epoch_blocks
            or config.blocks_per_month,
            "resimulated_epochs": resimulated,
            "scope": scope,
            "seal_pass_s": round(seal_pass_s, 6),
            "epoch_telemetry": epoch_telemetry,
            "scale_flat": _scale_flat_gate(epoch_telemetry, config),
            "workers_requested": shard_workers,
            "workers_effective": effective_workers(shard_workers),
        }

    report: Dict[str, Any] = {
        "version": BENCH_VERSION,
        "scenario": {
            "blocks_per_month": bpm,
            "seed": seed,
            "blocks": blocks,
            "chunk_size": chunk_size,
            "chunks": len(chunks),
            "quick": quick,
        },
        "machine": {
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
            "python_version": platform.python_version(),
        },
        "simulate_s": round(simulate_s, 6),
        "lint_s": round(_lint_self(), 6),
        "sim_reference_s": sim_reference_s,
        "sim_identical": sim_identical,
        "world_cache": cache_info,
        "stages": stages,
        "end_to_end": end_to_end,
        "parallel_identical": parallel_identical,
        "indexed_matches_linear": indexed_matches_linear,
        "stream_identical": stream_identical,
        "stream": stream_info,
        "serve_identical": serve_identical,
        "serve": serve_info,
        "shard_identical": shard_identical,
        "shard": shard_info,
    }
    if profile:
        report["profile"] = dict(profiler.tables)
    return report


def write_report(report: Dict[str, Any],
                 path: Union[str, Path]) -> None:
    """Write the benchmark document as stable, diffable JSON."""
    path = Path(path)
    with open(path, "w", encoding="utf-8") as stream:
        json.dump(report, stream, indent=2, sort_keys=True)
        stream.write("\n")


def render_report(report: Dict[str, Any]) -> str:
    """A short human summary of one benchmark document."""
    scenario = report["scenario"]
    lines = [
        f"pipeline benchmark — {scenario['blocks']} blocks "
        f"(bpm={scenario['blocks_per_month']}, seed={scenario['seed']}, "
        f"{scenario['chunks']} chunks of {scenario['chunk_size']}), "
        f"{report['machine']['cpu_count']} cpu(s)",
    ]
    cache_info = report.get("world_cache")
    if cache_info is not None:
        state = "hit" if cache_info["hit"] else "miss"
        lines.append(f"  world cache: {state} "
                     f"(digest {cache_info['digest']})")
    for stage in report["stages"]:
        lines.append(f"  {stage['stage']:<18} "
                     f"{stage['elapsed_s']:>9.3f}s  "
                     f"{stage['blocks_per_s'] or 0:>10.1f} blocks/s")
    for entry in report["end_to_end"]:
        check = "ok" if entry["identical_to_serial"] else "DIVERGED"
        lines.append(f"  workers={entry['workers']:<4} "
                     f"{entry['elapsed_s']:>9.3f}s  "
                     f"{entry['speedup_vs_serial']:>5.2f}x  [{check}]")
    sim_identical = report.get("sim_identical")
    if sim_identical is None:
        lines.append("  fast sim identical to reference: skipped "
                     "(world cache hit)")
    else:
        verdict = "yes" if sim_identical else "NO"
        reference_s = report.get("sim_reference_s")
        if reference_s:
            verdict += (f" (reference {reference_s:.3f}s vs "
                        f"{report['simulate_s']:.3f}s, "
                        f"{reference_s / report['simulate_s']:.2f}x)"
                        if report["simulate_s"] > 0 else "")
        lines.append("  fast sim identical to reference: " + verdict)
    lines.append("  parallel identical to serial: "
                 + ("yes" if report["parallel_identical"] else "NO"))
    lines.append("  indexed reads identical to linear: "
                 + ("yes" if report["indexed_matches_linear"] else "NO"))
    stream_identical = report.get("stream_identical")
    if stream_identical is not None:
        verdict = "yes" if stream_identical else "NO"
        stream_info = report.get("stream") or {}
        verdict += (f" ({stream_info.get('reorgs', 0)} reorgs, "
                    f"max depth {stream_info.get('max_reorg_depth', 0)}, "
                    f"{stream_info.get('retracted_rows', 0)} rows "
                    f"retracted, lag p50/p99 "
                    f"{stream_info.get('lag_p50_blocks')}/"
                    f"{stream_info.get('lag_p99_blocks')} blocks)")
        lines.append("  streamed identical to batch: " + verdict)
    serve_identical = report.get("serve_identical")
    if serve_identical is not None:
        serve_info = report.get("serve") or {}
        lines.append(
            f"  serve replay: {serve_info.get('requests', 0)} requests "
            f"over {serve_info.get('connections', 0)} conns, "
            f"{serve_info.get('qps', 0.0):.0f} qps, p50/p99 "
            f"{serve_info.get('p50_ms', 0.0):.3f}/"
            f"{serve_info.get('p99_ms', 0.0):.3f} ms, "
            f"{serve_info.get('not_modified', 0)} not-modified, "
            f"{serve_info.get('errors', 0)} errors")
        lines.append("  serve responses identical batch vs stream: "
                     + ("yes" if serve_identical else "NO"))
    shard_identical = report.get("shard_identical")
    if shard_identical is not None:
        shard_info = report.get("shard") or {}
        lines.append(
            f"  epoch shard: {shard_info.get('resimulated_epochs', 0)}"
            f"/{shard_info.get('epochs', 0)} epochs "
            f"({shard_info.get('scope', 'full')}, "
            f"epoch_blocks={shard_info.get('epoch_blocks')}, workers "
            f"{shard_info.get('workers_requested')}→"
            f"{shard_info.get('workers_effective')} effective)")
        lines.append("  sharded splice identical to serial: "
                     + ("yes" if shard_identical else "NO"))
        scale_flat = shard_info.get("scale_flat")
        telemetry = shard_info.get("epoch_telemetry") or []
        if scale_flat is None:
            lines.append("  seal-pass throughput scale-flat: skipped "
                         "(fewer than two saturated epochs)")
        else:
            first = telemetry[0] if telemetry else {}
            last = telemetry[-1] if telemetry else {}
            lines.append(
                "  seal-pass throughput scale-flat: "
                + ("yes" if scale_flat else "NO")
                + f" (epoch {first.get('epoch')}: "
                f"{first.get('blocks_per_s')} blocks/s → "
                f"epoch {last.get('epoch')}: "
                f"{last.get('blocks_per_s')} blocks/s, "
                f"rss {last.get('rss_mb')} MB)")
    lint_s = report.get("lint_s")
    if lint_s is not None:
        lines.append(f"  syntactic lint of own tree: {lint_s:.3f}s")
    return "\n".join(lines)
