"""Profit accounting: ETH valuation and cost models (paper Section 3.1).

The paper computes, for every MEV extraction::

    profit = gain − costs
    costs  = transaction fees + coinbase tips (Flashbots only)

with all token amounts converted to ETH via CoinGecko.  Here the
conversion goes through :class:`PriceService`, which reads the simulated
oracle's *historical* price at the block being analyzed — the same
at-the-time valuation the paper performs.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.chain.receipt import Receipt
from repro.dex.token import WETH
from repro.lending.oracle import PriceOracle


class PriceService:
    """Token → ETH conversion at historical block heights."""

    def __init__(self, oracle: PriceOracle) -> None:
        self._oracle = oracle

    def value_in_eth(self, token: str, amount: int,
                     block_number: int) -> Optional[int]:
        """Wei value of ``amount`` of ``token`` at ``block_number``.

        Returns None for tokens the price source does not cover — such
        records are dropped, as the paper drops tokens CoinGecko lacks.
        """
        if token == WETH:
            return amount
        value = self._oracle.value_in_eth_at(token, amount, block_number)
        if value is not None:
            return value
        if self._oracle.has_price(token):
            return self._oracle.value_in_eth(token, amount)
        return None


def transaction_cost(receipts: Iterable[Receipt]) -> int:
    """Total extraction cost: gas fees plus any coinbase tips."""
    total = 0
    for receipt in receipts:
        total += receipt.total_fee + receipt.coinbase_transfer
    return total
