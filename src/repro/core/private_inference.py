"""Private-transaction inference — paper Section 6.1.

The chain does not say whether a transaction was public or private.  The
paper infers it by set difference: a mined transaction that the
measurement node *never saw pending* is private.  The sandwich-specific
rule follows directly: the two attacker legs must be absent from the
pending trace while the victim's transaction must be present (frontrunning
other private-pool transactions is impossible, and frontrunning Flashbots
transactions is disallowed).

Classification is only meaningful inside the observation window — outside
it, absence from the trace means "not collected", not "private".
"""

from __future__ import annotations

from typing import Optional, Union

from repro.chain.p2p import MempoolObserver
from repro.chain.types import Hash32
from repro.core.datasets import (
    ArbitrageRecord,
    LiquidationRecord,
    MevDataset,
    PRIVACY_FLASHBOTS,
    PRIVACY_PRIVATE,
    PRIVACY_PUBLIC,
    SandwichRecord,
)


def classify_tx(tx_hash: Hash32, observer: MempoolObserver) -> str:
    """'public' if the pending trace saw the transaction, else 'private'."""
    return PRIVACY_PUBLIC if observer.was_observed(tx_hash) \
        else PRIVACY_PRIVATE


def in_window(observer: MempoolObserver, block_number: int) -> bool:
    return observer.in_window(block_number)


def sandwich_privacy(record: SandwichRecord,
                     observer: MempoolObserver) -> Optional[str]:
    """Privacy label for a sandwich (paper's three-way split).

    Flashbots-labelled sandwiches are 'flashbots'; otherwise the attack is
    'private' when both legs are absent from the pending trace *and* the
    victim was publicly observed; 'public' when both legs were observed.
    Mixed observations (one leg seen) default to 'public' — the attack
    plainly traversed the public mempool.
    """
    if not observer.in_window(record.block_number):
        return None
    if record.via_flashbots:
        return PRIVACY_FLASHBOTS
    front_private = not observer.was_observed(record.front_tx)
    back_private = not observer.was_observed(record.back_tx)
    victim_public = observer.was_observed(record.victim_tx)
    if front_private and back_private and victim_public:
        return PRIVACY_PRIVATE
    return PRIVACY_PUBLIC


def single_tx_privacy(record: Union[ArbitrageRecord, LiquidationRecord],
                      observer: MempoolObserver) -> Optional[str]:
    """Privacy label for single-transaction MEV (arbitrage/liquidation)."""
    if not observer.in_window(record.block_number):
        return None
    if record.via_flashbots:
        return PRIVACY_FLASHBOTS
    return classify_tx(record.tx_hash, observer)


def annotate_privacy(dataset: MevDataset,
                     observer: MempoolObserver) -> MevDataset:
    """Set ``privacy`` on every record, in place; returns the dataset.

    Records outside the observation window keep ``privacy=None`` (the
    paper restricts Section 6's analysis to its collection window).
    """
    for record in dataset.sandwiches:
        record.privacy = sandwich_privacy(record, observer)
    for record in dataset.arbitrages:
        record.privacy = single_tx_privacy(record, observer)
    for record in dataset.liquidations:
        record.privacy = single_tx_privacy(record, observer)
    return dataset
