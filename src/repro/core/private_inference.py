"""Private-transaction inference — paper Section 6.1.

The chain does not say whether a transaction was public or private.  The
paper infers it by set difference: a mined transaction that the
measurement node *never saw pending* is private.  The sandwich-specific
rule follows directly: the two attacker legs must be absent from the
pending trace while the victim's transaction must be present (frontrunning
other private-pool transactions is impossible, and frontrunning Flashbots
transactions is disallowed).

Classification is only meaningful inside the observation window — outside
it, absence from the trace means "not collected", not "private".  The same
honesty applies to collector *downtime*: when the observer was down while
a transaction would have been pending, its absence from the trace proves
nothing, so absence-based labels become ``'unobserved'`` instead of a
silent ``'private'`` (or a silently wrong ``'public'``).  Positive
observations are still trusted — a transaction the trace *did* capture
was public no matter what happened around it.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.chain.p2p import MempoolObserver
from repro.chain.types import Hash32
from repro.core.datasets import (
    ArbitrageRecord,
    LiquidationRecord,
    MevDataset,
    PRIVACY_FLASHBOTS,
    PRIVACY_PRIVATE,
    PRIVACY_PUBLIC,
    PRIVACY_UNOBSERVED,
    SandwichRecord,
)


def classify_tx(tx_hash: Hash32, observer: MempoolObserver) -> str:
    """'public' if the pending trace saw the transaction, else 'private'."""
    return PRIVACY_PUBLIC if observer.was_observed(tx_hash) \
        else PRIVACY_PRIVATE


def in_window(observer: MempoolObserver, block_number: int) -> bool:
    return observer.in_window(block_number)


def absence_unprovable(observer: MempoolObserver,
                       block_number: int) -> bool:
    """Whether collector downtime voids absence-based inference here.

    A transaction mined in ``block_number`` was pending in the blocks
    just before it; if the collector was down anywhere in that pending
    window, "never seen" cannot be distinguished from "not collected".
    """
    was_down = getattr(observer, "was_down", None)
    if was_down is None:
        return False
    return was_down(block_number) or was_down(block_number - 1)


def sandwich_privacy(record: SandwichRecord,
                     observer: MempoolObserver) -> Optional[str]:
    """Privacy label for a sandwich (paper's three-way split).

    Flashbots-labelled sandwiches are 'flashbots'; otherwise the attack is
    'private' when both legs are absent from the pending trace *and* the
    victim was publicly observed; 'public' when both legs were observed.
    Mixed observations (one leg seen) default to 'public' — the attack
    plainly traversed the public mempool.  When the collector was down
    around the block and either attacker leg is absent from the trace,
    the split is unprovable and the label is 'unobserved'.
    """
    if not observer.in_window(record.block_number):
        return None
    if record.via_flashbots:
        return PRIVACY_FLASHBOTS
    front_seen = observer.was_observed(record.front_tx)
    back_seen = observer.was_observed(record.back_tx)
    victim_seen = observer.was_observed(record.victim_tx)
    if not (front_seen and back_seen) and \
            absence_unprovable(observer, record.block_number):
        return PRIVACY_UNOBSERVED
    if not front_seen and not back_seen and victim_seen:
        return PRIVACY_PRIVATE
    return PRIVACY_PUBLIC


def single_tx_privacy(record: Union[ArbitrageRecord, LiquidationRecord],
                      observer: MempoolObserver) -> Optional[str]:
    """Privacy label for single-transaction MEV (arbitrage/liquidation)."""
    if not observer.in_window(record.block_number):
        return None
    if record.via_flashbots:
        return PRIVACY_FLASHBOTS
    if observer.was_observed(record.tx_hash):
        return PRIVACY_PUBLIC
    if absence_unprovable(observer, record.block_number):
        return PRIVACY_UNOBSERVED
    return PRIVACY_PRIVATE


def annotate_privacy(dataset: MevDataset,
                     observer: MempoolObserver) -> MevDataset:
    """Set ``privacy`` on every record, in place; returns the dataset.

    Records outside the observation window keep ``privacy=None`` (the
    paper restricts Section 6's analysis to its collection window).
    """
    for record in dataset.sandwiches:
        record.privacy = sandwich_privacy(record, observer)
    for record in dataset.arbitrages:
        record.privacy = single_tx_privacy(record, observer)
    for record in dataset.liquidations:
        record.privacy = single_tx_privacy(record, observer)
    return dataset
