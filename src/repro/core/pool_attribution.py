"""Private-pool attribution — paper Section 6.3.

Given the private non-Flashbots sandwiches, the paper asks *who mined
them*: it builds the bipartite map of extractor accounts to the miners
that included their attacks.  An account whose private sandwiches were
only ever mined by a single miner is evidence of that miner extracting
MEV itself (it would be very unlikely for a multi-miner pool to route one
account's every attack to the same member).  Miners that additionally
mined private sandwiches of *other*, multi-miner accounts are flagged as
participating in broader private pools too.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from repro.chain.types import Address
from repro.core.datasets import MevDataset, PRIVACY_PRIVATE


@dataclass
class AttributionReport:
    """Section 6.3's findings over the observed private sandwiches."""

    #: distinct miner addresses that mined private non-FB sandwiches
    miner_addresses: Set[Address] = field(default_factory=set)
    #: distinct accounts that performed private non-FB sandwiches
    extractor_accounts: Set[Address] = field(default_factory=set)
    #: account → set of miners that mined its private sandwiches
    account_to_miners: Dict[Address, Set[Address]] = \
        field(default_factory=dict)
    #: (account, miner, count): accounts served by exactly one miner —
    #: the self-extraction signal
    single_miner_extractors: List[Tuple[Address, Address, int]] = \
        field(default_factory=list)
    #: miners that both self-extract and serve multi-miner accounts
    multi_pool_miners: Set[Address] = field(default_factory=set)

    @property
    def n_miners(self) -> int:
        return len(self.miner_addresses)

    @property
    def n_accounts(self) -> int:
        return len(self.extractor_accounts)


def attribute_private_pools(dataset: MevDataset) -> AttributionReport:
    """Run the Section 6.3 analysis over a privacy-annotated dataset."""
    report = AttributionReport()
    pair_counts: Dict[Tuple[Address, Address], int] = defaultdict(int)
    miner_accounts: Dict[Address, Set[Address]] = defaultdict(set)

    for record in dataset.sandwiches:
        if record.privacy != PRIVACY_PRIVATE:
            continue
        account, miner = record.extractor, record.miner
        report.miner_addresses.add(miner)
        report.extractor_accounts.add(account)
        report.account_to_miners.setdefault(account, set()).add(miner)
        pair_counts[(account, miner)] += 1
        miner_accounts[miner].add(account)

    for account, miners in sorted(report.account_to_miners.items()):
        if len(miners) == 1:
            miner = next(iter(miners))
            count = pair_counts[(account, miner)]
            report.single_miner_extractors.append((account, miner,
                                                   count))

    # A self-extracting miner that also mined private sandwiches from
    # accounts engaging with other miners participates in broader pools.
    exclusive_accounts = {account for account, _, _ in
                          report.single_miner_extractors}
    for _, miner, _ in report.single_miner_extractors:
        others = miner_accounts[miner] - exclusive_accounts
        if others:
            report.multi_pool_miners.add(miner)
    return report
