"""Core measurement pipeline: the paper's primary contribution."""

from repro.core.datasets import (
    ArbitrageRecord,
    FLASHBOTS_UNKNOWN,
    LiquidationRecord,
    MevDataset,
    PRIVACY_FLASHBOTS,
    PRIVACY_PRIVATE,
    PRIVACY_PUBLIC,
    PRIVACY_UNOBSERVED,
    SandwichRecord,
)
from repro.core.flashbots_join import annotate_flashbots
from repro.core.heuristics import (
    detect_arbitrages,
    detect_flash_loan_txs,
    detect_liquidations,
    detect_sandwiches,
)
from repro.core.pipeline import MevInspector, plan_chunks
from repro.core.pool_attribution import (
    AttributionReport,
    attribute_private_pools,
)
from repro.core.private_inference import (
    absence_unprovable,
    annotate_privacy,
    classify_tx,
    sandwich_privacy,
    single_tx_privacy,
)
from repro.core.profit import PriceService, transaction_cost
from repro.core.scan import BlockScan, BlockView, BlockVisitor, scan_range

__all__ = [
    "ArbitrageRecord", "AttributionReport", "BlockScan", "BlockView",
    "BlockVisitor", "FLASHBOTS_UNKNOWN",
    "LiquidationRecord", "MevDataset", "MevInspector",
    "PRIVACY_FLASHBOTS", "PRIVACY_PRIVATE", "PRIVACY_PUBLIC",
    "PRIVACY_UNOBSERVED", "PriceService", "SandwichRecord",
    "absence_unprovable", "annotate_flashbots", "annotate_privacy",
    "attribute_private_pools", "classify_tx", "detect_arbitrages",
    "detect_flash_loan_txs", "detect_liquidations", "detect_sandwiches",
    "plan_chunks", "sandwich_privacy", "scan_range", "single_tx_privacy",
    "transaction_cost",
]
