"""Single-pass detection: one walk of a block range feeds every heuristic.

Historically each heuristic (sandwich, arbitrage, liquidation, flash
loan) made its own full pass over the range, so a chunk cost four scans.
:class:`BlockScan` walks the blocks exactly once: every block is
bucketed into a :class:`BlockView` (swaps per successful receipt,
liquidation events, flash-loan events) and each registered visitor
consumes that view.  The per-heuristic visitors live next to their
standalone entry points in :mod:`repro.core.heuristics`; the standalone
``detect_*`` functions are now thin wrappers over them.

**Scan contract.**  Visitors see blocks in ascending order, exactly
once each, and must not fetch from the archive during ``visit`` — any
follow-up archive reads (e.g. the attacker receipts a sandwich record
needs) belong in ``finalize``, in discovery order, so the scan itself
stays one pure pass and the resulting archive-fetch sequence is
deterministic.

Bucketing mirrors the heuristics' historical filters bit for bit:
swap and liquidation events are taken from *successful* receipts only,
while flash-loan events are status-blind (``get_logs`` never filtered
on receipt status).  Venue/platform filtering stays inside each
visitor — the buckets are shared, the coverage policies are not.
"""

from __future__ import annotations

from typing import (Dict, Iterable, List, Optional, Protocol, Sequence, Set,
                    Tuple)

from repro.chain.block import Block
from repro.chain.events import (EventLog, FlashLoanEvent, LiquidationEvent,
                                SwapEvent)
from repro.chain.index import ChainIndex
from repro.chain.node import ArchiveNode
from repro.chain.receipt import Receipt
from repro.chain.types import Hash32
from repro.core.datasets import MevDataset
from repro.core.profit import PriceService

__all__ = ["BlockScan", "BlockView", "BlockVisitor", "scan_range",
           "views_from_index"]

# Log classification, memoized per concrete event class: the bucketing
# below is the scan's innermost loop, and one dict probe beats a chain
# of isinstance checks.  Classification still *is* isinstance (so
# subclasses bucket exactly as before) — it just runs once per class.
_KIND_OTHER = 0
_KIND_SWAP = 1
_KIND_LIQUIDATION = 2
_KIND_FLASH_LOAN = 3

_LOG_KINDS: dict = {}


def _classify(log_class: type) -> int:
    if issubclass(log_class, SwapEvent):
        kind = _KIND_SWAP
    elif issubclass(log_class, LiquidationEvent):
        kind = _KIND_LIQUIDATION
    elif issubclass(log_class, FlashLoanEvent):
        kind = _KIND_FLASH_LOAN
    else:
        kind = _KIND_OTHER
    _LOG_KINDS[log_class] = kind
    return kind


class BlockView:
    """One block's receipts and logs, pre-bucketed for the visitors."""

    __slots__ = ("block", "swap_receipts", "liquidations", "flash_loans")

    def __init__(self, block: Block,
                 swap_receipts: List[Tuple[Receipt, List[SwapEvent]]],
                 liquidations: List[LiquidationEvent],
                 flash_loans: List[FlashLoanEvent]) -> None:
        self.block = block
        #: ``(receipt, its swap events)`` for successful receipts that
        #: emitted at least one swap, in block order
        self.swap_receipts = swap_receipts
        #: liquidation events from successful receipts, in block order
        self.liquidations = liquidations
        #: flash-loan events from *all* receipts (status-blind, matching
        #: the ``get_logs`` crawl), in block order
        self.flash_loans = flash_loans

    @classmethod
    def of(cls, block: Block) -> "BlockView":
        """Bucket one block's logs in a single receipts walk."""
        swap_receipts: List[Tuple[Receipt, List[SwapEvent]]] = []
        liquidations: List[LiquidationEvent] = []
        flash_loans: List[FlashLoanEvent] = []
        kinds = _LOG_KINDS
        for receipt in block.receipts:
            if receipt.status:
                swaps: List[SwapEvent] = []
                for log in receipt.logs:
                    kind = kinds.get(type(log))
                    if kind is None:
                        kind = _classify(type(log))
                    if kind == _KIND_SWAP:
                        swaps.append(log)
                    elif kind == _KIND_LIQUIDATION:
                        liquidations.append(log)
                    elif kind == _KIND_FLASH_LOAN:
                        flash_loans.append(log)
                if swaps:
                    swap_receipts.append((receipt, swaps))
            else:
                for log in receipt.logs:
                    if isinstance(log, FlashLoanEvent):
                        flash_loans.append(log)
        return cls(block, swap_receipts, liquidations, flash_loans)


def _by_block(logs: List[EventLog]) -> Dict[int, List[EventLog]]:
    """Group an ordered ``logs_in_range`` result by block number,
    preserving traversal order inside each block."""
    grouped: Dict[int, List[EventLog]] = {}
    for log in logs:
        bucket = grouped.get(log.block_number)
        if bucket is None:
            bucket = grouped[log.block_number] = []
        bucket.append(log)
    return grouped


def _view_from_buckets(block: Block,
                       swaps: Optional[List[EventLog]],
                       liquidations: Optional[List[EventLog]],
                       flash_loans: Optional[List[EventLog]],
                       ) -> BlockView:
    receipts = block.receipts
    swap_receipts: List[Tuple[Receipt, List[SwapEvent]]] = []
    if swaps:
        # Within a block the postings run in receipt order, so one
        # receipt's swaps are consecutive: group on tx_index change.
        current_index: Optional[int] = None
        current: Optional[List[SwapEvent]] = None
        for log in swaps:
            tx_index = log.tx_index
            if tx_index != current_index:
                current_index = tx_index
                receipt = receipts[tx_index]
                current = [] if receipt.status else None
                if current is not None:
                    swap_receipts.append((receipt, current))
            if current is not None:
                current.append(log)
    kept_liquidations: List[LiquidationEvent] = []
    if liquidations:
        kept_liquidations = [log for log in liquidations
                             if receipts[log.tx_index].status]
    return BlockView(block, swap_receipts, kept_liquidations,
                     flash_loans or [])


def views_from_index(index: ChainIndex,
                     blocks: Sequence[Block]) -> List[BlockView]:
    """Pre-bucketed views for already-fetched blocks, read from the
    chain index's postings instead of walking every receipt log.

    Equivalent to ``[BlockView.of(b) for b in blocks]`` — same log
    objects, same order, same status filtering — but O(matching
    events): the postings already separate the swap, liquidation and
    flash-loan logs, so the far more numerous transfer/sync events are
    never touched.  Sealed logs carry positional coordinates
    (``log.tx_index`` indexes ``block.receipts``); any block whose
    logs lack them falls back to the plain receipts walk.
    """
    if not blocks:
        return []
    lo, hi = blocks[0].number, blocks[-1].number
    swaps_by = _by_block(index.logs_in_range(SwapEvent, lo, hi))
    liquidations_by = _by_block(
        index.logs_in_range(LiquidationEvent, lo, hi))
    flash_by = _by_block(index.logs_in_range(FlashLoanEvent, lo, hi))
    if None in swaps_by or None in liquidations_by or None in flash_by:
        # Unstamped block coordinates cannot be placed — walk receipts.
        return [BlockView.of(block) for block in blocks]
    views: List[BlockView] = []
    for block in blocks:
        number = block.number
        try:
            views.append(_view_from_buckets(
                block, swaps_by.get(number), liquidations_by.get(number),
                flash_by.get(number)))
        except (IndexError, TypeError):
            views.append(BlockView.of(block))
    return views


class BlockVisitor(Protocol):
    """A per-block heuristic consumer fed by :class:`BlockScan`."""

    def visit(self, view: BlockView) -> None: ...


class BlockScan:
    """Walk blocks once, feeding every visitor from shared buckets."""

    def __init__(self, visitors: Sequence[BlockVisitor]) -> None:
        self.visitors = list(visitors)

    def scan(self, blocks: Iterable[Block]) -> None:
        """One pass: each block is bucketed once and offered to every
        visitor in registration order."""
        self.scan_views(BlockView.of(block) for block in blocks)

    def scan_views(self, views: Iterable[BlockView]) -> None:
        """Feed pre-built views (e.g. from :func:`views_from_index`) to
        every visitor, in order, each exactly once."""
        visitors = self.visitors
        for view in views:
            for visitor in visitors:
                visitor.visit(view)


def scan_range(node: ArchiveNode, prices: PriceService,
               from_block: Optional[int] = None,
               to_block: Optional[int] = None,
               ) -> Tuple[MevDataset, Set[Hash32]]:
    """All four heuristics over a block range in one pass.

    Returns the partial dataset (sandwiches, arbitrages, liquidations —
    no joins applied) and the flash-loan transaction hashes.  The only
    archive traffic is one ranged block read plus the per-record receipt
    lookups the sandwich/liquidation records require.
    """
    # Imported here, not at module top: the heuristics import this
    # module for BlockView/BlockScan, so the one-stop helper reaches
    # back lazily to keep the import DAG acyclic.
    from repro.core.heuristics.arbitrage import ArbitrageVisitor
    from repro.core.heuristics.flashloan import FlashLoanVisitor
    from repro.core.heuristics.liquidation import LiquidationVisitor
    from repro.core.heuristics.sandwich import SandwichVisitor

    sandwich = SandwichVisitor(prices)
    arbitrage = ArbitrageVisitor(prices)
    liquidation = LiquidationVisitor(prices)
    flash = FlashLoanVisitor()
    scan = BlockScan([sandwich, arbitrage, liquidation, flash])
    chain = getattr(node, "chain", None)
    if chain is not None and getattr(node, "indexed", False):
        # Indexed surface: bucket from the shared postings lists so the
        # pass never touches a non-MEV log.
        scan.scan_views(views_from_index(
            chain.index, list(node.iter_blocks(from_block, to_block))))
    else:
        scan.scan(node.iter_blocks(from_block, to_block))
    dataset = MevDataset(
        sandwiches=sandwich.finalize(node),
        arbitrages=arbitrage.finalize(),
        liquidations=liquidation.finalize(node),
    )
    return dataset, flash.finalize()
