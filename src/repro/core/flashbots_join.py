"""Join MEV records against the public Flashbots blocks dataset.

The paper downloads every Flashbots block from the public API and labels
an extraction as "via Flashbots" when its MEV transactions appear in that
dataset (Section 3.3).  For sandwiches, *both* attacker legs must be
Flashbots transactions; single-transaction strategies need only their one
transaction labelled.
"""

from __future__ import annotations

from repro.core.datasets import MevDataset
from repro.flashbots.api import FlashbotsBlocksApi


def annotate_flashbots(dataset: MevDataset,
                       api: FlashbotsBlocksApi) -> MevDataset:
    """Set ``via_flashbots`` on every record, in place; returns dataset."""
    for record in dataset.sandwiches:
        record.via_flashbots = (api.is_flashbots_tx(record.front_tx)
                                and api.is_flashbots_tx(record.back_tx))
    for record in dataset.arbitrages:
        record.via_flashbots = api.is_flashbots_tx(record.tx_hash)
    for record in dataset.liquidations:
        record.via_flashbots = api.is_flashbots_tx(record.tx_hash)
    return dataset
